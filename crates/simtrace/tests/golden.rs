//! Pins the JSONL wire format to a hand-written golden trace: byte-for-byte
//! sink output, `event_time` parsing, and `diff_jsonl` behaviour on the
//! golden corpus. Any format change must consciously edit the fixture.

use simevent::SimTime;
use simtrace::{diff_jsonl, event_time, EventKind, JsonlSink, TraceEvent, TraceHandle};

include!("fixtures/golden_trace.rs");

/// Shared byte buffer the boxed sink writes into.
#[derive(Debug, Clone, Default)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_sink_reproduces_the_golden_trace() {
    let buf = SharedBuf::default();
    let trace = TraceHandle::new(Box::new(JsonlSink::new(buf.clone())));
    assert_eq!(trace.register_queue("sw0/p0: Red(min=5,max=15)"), 0);
    for ev in golden_events() {
        trace.emit(ev);
    }
    trace.flush().expect("in-memory sink cannot fail");
    let got = String::from_utf8(buf.0.lock().unwrap_or_else(|e| e.into_inner()).clone())
        .expect("traces are UTF-8");
    assert_eq!(got, GOLDEN, "JSONL wire format drifted from the fixture");
}

#[test]
fn event_time_parses_golden_lines() {
    assert_eq!(golden_event_time(GOLDEN, 0), SimTime::from_nanos(1000));
    assert_eq!(golden_event_time(GOLDEN, 4), SimTime::from_nanos(3000));
    assert_eq!(event_time("{\"meta\":\"queue\",\"q\":0}"), None);
}

#[test]
fn golden_trace_diffs_cleanly_against_itself_and_not_a_mutant() {
    assert!(diff_jsonl(GOLDEN, GOLDEN).is_none());
    let mutant = GOLDEN.replace("\"pkt\":42", "\"pkt\":99");
    let d = diff_jsonl(GOLDEN, &mutant).expect("mutated trace must diverge");
    assert_eq!(d.line, 3, "divergence is on the mutated line (1-based)");
    assert!(d.left.expect("left line").contains("\"pkt\":42"));
    assert!(d.right.expect("right line").contains("\"pkt\":99"));
}
