//! Random Early Detection with ECN and the paper's protection modes.

use crate::config::RedConfig;
use crate::fifo::Fifo;
use netpacket::{
    packet_event, ConservationCheck, EnqueueOutcome, Packet, PacketKind, QueueDiscipline,
    QueueStats,
};
use simevent::{SimDuration, SimRng, SimTime};
use simtrace::{EventKind, TraceHandle, NO_QUEUE};

/// RED (Floyd & Jacobson 1993) as implemented by switch vendors, extended with
/// the paper's configurable handling of non-ECT packets.
///
/// Decision pipeline per arriving packet:
///
/// 1. Tail-drop if the physical buffer is full.
/// 2. Update the average queue estimate (EWMA, or instantaneous when
///    `ewma_weight == 1`), with the standard idle-period decay.
/// 3. Below `min_th`: accept. Between `min_th` and `max_th`: notify with the
///    classic count-corrected probability. At or above `max_th`: notify
///    (probabilistically when `gentle`, always otherwise). With
///    `min_th == max_th` (the DCTCP-mimicking config the paper studies) the
///    decision is a deterministic threshold test.
/// 4. "Notify" resolves to:
///    * CE-mark and accept, if the queue is ECN-enabled and the packet is ECT;
///    * accept unmarked, if the packet is exempted by the configured
///      [`crate::ProtectionMode`] — **this is the paper's modification**;
///    * early-drop otherwise (stock behaviour that kills Hadoop's ACKs).
#[derive(Debug)]
pub struct Red {
    cfg: RedConfig,
    fifo: Fifo,
    stats: QueueStats,
    conserve: ConservationCheck,
    rng: SimRng,
    /// EWMA of the queue length, in packets (or bytes in byte mode).
    avg: f64,
    /// Packets since the last notification while in the [min_th, max_th) band
    /// (classic RED's uniformisation counter).
    count: i64,
    /// When the queue last went idle, for the EWMA idle decay.
    idle_since: Option<SimTime>,
    /// Assumed transmission time of a mean-size packet, used only to scale the
    /// idle decay of the EWMA (classic RED's `s` parameter).
    idle_packet_time: SimDuration,
    trace: TraceHandle,
    trace_q: u32,
}

impl Red {
    /// Build a RED queue. `seed` feeds the probabilistic early decision; two
    /// queues with identical configs, seeds and call sequences behave
    /// identically.
    pub fn new(cfg: RedConfig, seed: u64) -> Self {
        cfg.validate();
        Red {
            cfg,
            fifo: Fifo::new(),
            stats: QueueStats::default(),
            conserve: ConservationCheck::default(),
            rng: SimRng::new(seed),
            avg: 0.0,
            count: -1,
            idle_since: Some(SimTime::ZERO),
            idle_packet_time: SimDuration::from_micros(12),
            trace: TraceHandle::null(),
            trace_q: NO_QUEUE,
        }
    }

    /// Override the idle-decay packet time (defaults to 12 µs ≈ 1500 B at
    /// 1 Gbps). Only affects EWMA configurations (`ewma_weight < 1`).
    pub fn set_idle_packet_time(&mut self, t: SimDuration) {
        assert!(t > SimDuration::ZERO);
        self.idle_packet_time = t;
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> &RedConfig {
        &self.cfg
    }

    /// Current average-queue estimate (packets, or bytes in byte mode).
    pub fn average_queue(&self) -> f64 {
        self.avg
    }

    /// Iterate resident packets head-to-tail (queue snapshots, Fig. 1).
    pub fn resident(&self) -> impl Iterator<Item = &Packet> {
        self.fifo.iter()
    }

    /// Occupancy in the unit thresholds are expressed in.
    fn measured_len(&self) -> f64 {
        if self.cfg.byte_mode {
            self.fifo.bytes() as f64
        } else {
            self.fifo.len() as f64
        }
    }

    /// Is the physical buffer too full to admit `packet`? In byte mode the
    /// buffer budget is `capacity_packets` mean-size packets worth of bytes
    /// (the same scaling [`Red::thresholds`] applies), so capacity and
    /// thresholds are expressed in the same unit; in packet mode it is a
    /// packet count.
    fn buffer_full(&self, packet: &Packet) -> bool {
        if self.cfg.byte_mode {
            let budget = self
                .cfg
                .capacity_packets
                .saturating_mul(self.cfg.mean_packet_bytes as u64);
            self.fifo.bytes() + packet.wire_bytes() as u64 > budget
        } else {
            self.fifo.len() >= self.cfg.capacity_packets
        }
    }

    /// Thresholds in measurement units (byte mode scales by mean packet size
    /// so configs stay comparable across modes).
    fn thresholds(&self) -> (f64, f64) {
        if self.cfg.byte_mode {
            let m = self.cfg.mean_packet_bytes as f64;
            (self.cfg.min_th as f64 * m, self.cfg.max_th as f64 * m)
        } else {
            (self.cfg.min_th as f64, self.cfg.max_th as f64)
        }
    }

    fn update_avg(&mut self, now: SimTime) {
        let q = self.measured_len();
        let w = self.cfg.ewma_weight;
        if let Some(idle_since) = self.idle_since.take() {
            // Queue was idle: decay the average as if `m` empty samples passed.
            let idle = now.since(idle_since);
            let m = idle.as_nanos() as f64 / self.idle_packet_time.as_nanos().max(1) as f64;
            self.avg *= (1.0 - w).powf(m);
        }
        self.avg = (1.0 - w) * self.avg + w * q;
    }

    /// The classic RED early-notification decision. Returns true when the
    /// packet should be notified (marked or dropped).
    fn should_notify(&mut self) -> bool {
        let (min_th, max_th) = self.thresholds();
        if self.avg < min_th {
            self.count = -1;
            return false;
        }
        if self.avg >= max_th {
            if self.cfg.gentle {
                // Ramp from max_p at max_th to 1 at 2*max_th. Gentle RED is
                // the [min_th, max_th) band extended, so it uses the same
                // count-corrected uniformisation: `count` keeps growing while
                // notifies fail and only resets on a notify.
                let span = max_th.max(1.0);
                let frac = ((self.avg - max_th) / span).min(1.0);
                let p_b = self.cfg.max_p + (1.0 - self.cfg.max_p) * frac;
                self.count += 1;
                return self.notify_with_count(p_b);
            }
            self.count = 0;
            return true;
        }
        // min_th <= avg < max_th: probabilistic with count correction.
        self.count += 1;
        let p_b = self.cfg.max_p * (self.avg - min_th) / (max_th - min_th).max(f64::MIN_POSITIVE);
        self.notify_with_count(p_b)
    }

    /// Classic RED uniformisation: notify with `p_a = p_b / (1 - count*p_b)`,
    /// resetting `count` only when the notify actually happens. This bounds
    /// the inter-notification gap at `ceil(1/p_b)` arrivals.
    fn notify_with_count(&mut self, p_b: f64) -> bool {
        let denom = 1.0 - self.count as f64 * p_b;
        let p_a = if denom <= 0.0 {
            1.0
        } else {
            (p_b / denom).min(1.0)
        };
        if self.rng.chance(p_a) {
            self.count = 0;
            true
        } else {
            false
        }
    }

    fn accept(&mut self, mut packet: Packet, mark: bool, now: SimTime) -> EnqueueOutcome {
        let kind = PacketKind::of(&packet);
        if mark {
            packet.ecn = packet.ecn.marked();
        }
        if self.trace.is_enabled() {
            if mark {
                self.trace
                    .emit(packet_event(EventKind::Marked, now, self.trace_q, &packet));
            }
            self.trace.emit(packet_event(
                EventKind::Enqueued,
                now,
                self.trace_q,
                &packet,
            ));
        }
        let bytes = packet.wire_bytes();
        self.fifo.push(packet);
        self.conserve.on_admit(bytes);
        self.stats
            .on_enqueue(kind, bytes, mark, self.fifo.len(), self.fifo.bytes());
        self.debug_verify_conservation();
        if mark {
            EnqueueOutcome::EnqueuedMarked
        } else {
            EnqueueOutcome::Enqueued
        }
    }
}

impl QueueDiscipline for Red {
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome {
        let kind = PacketKind::of(&packet);
        // Classic RED (Floyd & Jacobson) updates the average on *every*
        // arrival, including ones about to be tail-dropped — otherwise the
        // EWMA freezes while the buffer is full and under-reports congestion
        // right after overload.
        self.update_avg(now);
        if self.buffer_full(&packet) {
            self.stats.dropped_full.bump(kind);
            if self.fifo.is_empty() {
                // Byte mode can tail-drop an oversized arrival while the
                // queue is empty; keep the idle clock running so the EWMA
                // decay is not lost across the drop.
                self.idle_since = Some(now);
            }
            if self.trace.is_enabled() {
                self.trace.emit(packet_event(
                    EventKind::DroppedFull,
                    now,
                    self.trace_q,
                    &packet,
                ));
            }
            return EnqueueOutcome::DroppedFull;
        }
        if !self.should_notify() {
            return self.accept(packet, false, now);
        }
        // Congestion must be signalled for this packet.
        if self.cfg.ecn && packet.is_ect() {
            return self.accept(packet, true, now);
        }
        if self.cfg.ecn && self.cfg.protection.protects(&packet) {
            // The paper's modification: protected non-ECT packets are admitted
            // unmarked instead of early-dropped.
            return self.accept(packet, false, now);
        }
        self.stats.dropped_early.bump(kind);
        if self.trace.is_enabled() {
            self.trace.emit(packet_event(
                EventKind::DroppedEarly,
                now,
                self.trace_q,
                &packet,
            ));
        }
        EnqueueOutcome::DroppedEarly
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let p = self.fifo.pop()?;
        self.conserve.on_deliver(p.wire_bytes());
        self.stats.on_dequeue(PacketKind::of(&p), p.wire_bytes());
        if self.fifo.is_empty() {
            self.idle_since = Some(now);
        }
        if self.trace.is_enabled() {
            self.trace
                .emit(packet_event(EventKind::Dequeued, now, self.trace_q, &p));
        }
        self.debug_verify_conservation();
        Some(p)
    }

    fn len_packets(&self) -> u64 {
        self.fifo.len()
    }

    fn len_bytes(&self) -> u64 {
        self.fifo.bytes()
    }

    fn capacity_packets(&self) -> u64 {
        self.cfg.capacity_packets
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn snapshot_kinds(&self) -> [u64; 6] {
        let mut kinds = [0u64; 6];
        for p in self.fifo.iter() {
            kinds[netpacket::PacketKind::of(p).index()] += 1;
        }
        kinds
    }

    fn name(&self) -> String {
        format!(
            "RED[{}](min={},max={},cap={},ecn={})",
            self.cfg.protection.label(),
            self.cfg.min_th,
            self.cfg.max_th,
            self.cfg.capacity_packets,
            self.cfg.ecn
        )
    }

    fn debug_verify_conservation(&self) {
        self.conserve
            .verify("RED", &self.stats, self.fifo.len(), self.fifo.bytes());
    }

    fn set_trace(&mut self, trace: TraceHandle, queue: u32) {
        self.trace = trace;
        self.trace_q = queue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionMode;
    use netpacket::{EcnCodepoint, FlowId, NodeId, PacketId, TcpFlags};

    fn data(id: u64, ecn: EcnCodepoint) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload: 1460,
            flags: TcpFlags::ACK,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    fn ack(id: u64, flags: TcpFlags) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload: 0,
            flags,
            ecn: EcnCodepoint::NotEct,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    fn single_threshold(k: u64, cap: u64, protection: ProtectionMode) -> RedConfig {
        RedConfig {
            capacity_packets: cap,
            min_th: k,
            max_th: k,
            max_p: 1.0,
            ewma_weight: 1.0,
            byte_mode: false,
            mean_packet_bytes: 1500,
            ecn: true,
            protection,
            gentle: false,
        }
    }

    /// Fill the queue with `n` ECT data packets.
    fn fill(q: &mut Red, n: u64) {
        for i in 0..n {
            let out = q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::ZERO);
            assert!(out.accepted());
        }
    }

    #[test]
    fn below_threshold_no_marking() {
        let mut q = Red::new(single_threshold(10, 100, ProtectionMode::Default), 1);
        for i in 0..10 {
            assert_eq!(
                q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::ZERO),
                EnqueueOutcome::Enqueued
            );
        }
        assert_eq!(q.stats().marked.total(), 0);
    }

    #[test]
    fn at_threshold_ect_is_marked_not_dropped() {
        let mut q = Red::new(single_threshold(5, 100, ProtectionMode::Default), 1);
        fill(&mut q, 5);
        let out = q.enqueue(data(99, EcnCodepoint::Ect0), SimTime::ZERO);
        assert_eq!(out, EnqueueOutcome::EnqueuedMarked);
        assert_eq!(q.stats().dropped_early.total(), 0);
        // The resident packet must actually carry CE now.
        let marked = q.resident().filter(|p| p.ecn == EcnCodepoint::Ce).count();
        assert_eq!(marked, 1);
    }

    #[test]
    fn at_threshold_non_ect_is_early_dropped_in_default_mode() {
        // The paper's identified pathology: ACKs die at the marking threshold.
        let mut q = Red::new(single_threshold(5, 100, ProtectionMode::Default), 1);
        fill(&mut q, 5);
        let out = q.enqueue(ack(99, TcpFlags::ACK), SimTime::ZERO);
        assert_eq!(out, EnqueueOutcome::DroppedEarly);
        assert_eq!(q.stats().dropped_early.get(PacketKind::PureAck), 1);
    }

    #[test]
    fn ece_bit_mode_protects_ece_ack() {
        let mut q = Red::new(single_threshold(5, 100, ProtectionMode::EceBit), 1);
        fill(&mut q, 5);
        // ECE-carrying ACK survives...
        let out = q.enqueue(ack(99, TcpFlags::ACK | TcpFlags::ECE), SimTime::ZERO);
        assert_eq!(out, EnqueueOutcome::Enqueued);
        // ...and is NOT CE-marked (it is Non-ECT).
        assert_eq!(q.stats().marked.total(), 0);
        // Plain ACK still dies: EceBit is the partial protection.
        let out = q.enqueue(ack(100, TcpFlags::ACK), SimTime::ZERO);
        assert_eq!(out, EnqueueOutcome::DroppedEarly);
    }

    #[test]
    fn ece_bit_mode_protects_handshake() {
        let mut q = Red::new(single_threshold(5, 100, ProtectionMode::EceBit), 1);
        fill(&mut q, 5);
        assert!(q
            .enqueue(ack(1, TcpFlags::ecn_setup_syn()), SimTime::ZERO)
            .accepted());
        assert!(q
            .enqueue(ack(2, TcpFlags::ecn_setup_syn_ack()), SimTime::ZERO)
            .accepted());
    }

    #[test]
    fn ack_syn_mode_protects_all_acks() {
        let mut q = Red::new(single_threshold(5, 100, ProtectionMode::AckSyn), 1);
        fill(&mut q, 5);
        assert!(q.enqueue(ack(1, TcpFlags::ACK), SimTime::ZERO).accepted());
        assert!(q
            .enqueue(ack(2, TcpFlags::ACK | TcpFlags::ECE), SimTime::ZERO)
            .accepted());
        assert!(q.enqueue(ack(3, TcpFlags::SYN), SimTime::ZERO).accepted());
        assert!(q
            .enqueue(ack(4, TcpFlags::SYN | TcpFlags::ACK), SimTime::ZERO)
            .accepted());
        assert_eq!(q.stats().dropped_early.total(), 0);
    }

    #[test]
    fn protection_does_not_bypass_full_buffer() {
        let mut q = Red::new(single_threshold(5, 8, ProtectionMode::AckSyn), 1);
        fill(&mut q, 8); // buffer physically full (marks after threshold)
        let out = q.enqueue(ack(99, TcpFlags::ACK), SimTime::ZERO);
        assert_eq!(
            out,
            EnqueueOutcome::DroppedFull,
            "protection is from EARLY drop only"
        );
    }

    #[test]
    fn ecn_disabled_red_drops_everything_selected() {
        let mut cfg = single_threshold(5, 100, ProtectionMode::AckSyn);
        cfg.ecn = false;
        let mut q = Red::new(cfg, 1);
        fill(&mut q, 5);
        // Without ECN, even ECT packets are dropped (classic RED), and
        // protection modes are ECN-mode features so they don't apply.
        assert_eq!(
            q.enqueue(data(99, EcnCodepoint::Ect0), SimTime::ZERO),
            EnqueueOutcome::DroppedEarly
        );
        assert_eq!(
            q.enqueue(ack(100, TcpFlags::ACK), SimTime::ZERO),
            EnqueueOutcome::DroppedEarly
        );
    }

    #[test]
    fn marking_is_threshold_sharp_with_single_threshold() {
        let mut q = Red::new(single_threshold(10, 100, ProtectionMode::Default), 1);
        fill(&mut q, 10);
        // Every further ECT arrival while occupancy >= 10 is marked.
        for i in 0..5 {
            assert_eq!(
                q.enqueue(data(100 + i, EcnCodepoint::Ect0), SimTime::ZERO),
                EnqueueOutcome::EnqueuedMarked
            );
        }
        // Drain below threshold: marking stops.
        for _ in 0..10 {
            q.dequeue(SimTime::ZERO);
        }
        assert_eq!(q.len_packets(), 5);
        assert_eq!(
            q.enqueue(data(200, EcnCodepoint::Ect0), SimTime::ZERO),
            EnqueueOutcome::Enqueued
        );
    }

    #[test]
    fn ce_marked_arrivals_stay_ce() {
        let mut q = Red::new(single_threshold(5, 100, ProtectionMode::Default), 1);
        fill(&mut q, 5);
        let out = q.enqueue(data(99, EcnCodepoint::Ce), SimTime::ZERO);
        assert_eq!(out, EnqueueOutcome::EnqueuedMarked);
    }

    #[test]
    fn ewma_smooths_bursts() {
        // With a small weight, a sudden burst does not immediately raise avg
        // past the threshold, so early arrivals of the burst are admitted.
        let mut cfg = single_threshold(5, 100, ProtectionMode::Default);
        cfg.ewma_weight = 0.01;
        cfg.min_th = 5;
        cfg.max_th = 15;
        cfg.max_p = 1.0;
        let mut q = Red::new(cfg, 1);
        let mut dropped = 0;
        for i in 0..30 {
            if !q
                .enqueue(ack(i, TcpFlags::ACK), SimTime::from_nanos(i))
                .accepted()
            {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 0, "EWMA should lag far behind a 30-packet burst");
        assert!(q.average_queue() < 5.0);
    }

    #[test]
    fn ewma_idle_decay() {
        let mut cfg = single_threshold(5, 100, ProtectionMode::Default);
        cfg.ewma_weight = 0.5;
        let mut q = Red::new(cfg, 1);
        // Build up an average.
        for i in 0..10 {
            q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::from_nanos(i));
        }
        let avg_before = q.average_queue();
        assert!(avg_before > 1.0);
        // Drain fully, wait a long idle period, then enqueue again.
        while q.dequeue(SimTime::from_micros(1)).is_some() {}
        let out = q.enqueue(data(99, EcnCodepoint::Ect0), SimTime::from_millis(100));
        assert!(out.accepted());
        assert!(
            q.average_queue() < avg_before / 2.0,
            "idle period must decay the average: {} vs {}",
            q.average_queue(),
            avg_before
        );
    }

    #[test]
    fn classic_band_probability_increases_with_occupancy() {
        // Statistical test: notification frequency at avg just above min_th
        // must be lower than close to max_th.
        let mk = |occupancy: u64, seed: u64| {
            let cfg = RedConfig {
                capacity_packets: 1000,
                min_th: 10,
                max_th: 100,
                max_p: 0.2,
                ewma_weight: 1.0,
                byte_mode: false,
                mean_packet_bytes: 1500,
                ecn: false,
                protection: ProtectionMode::Default,
                gentle: false,
            };
            let mut q = Red::new(cfg, seed);
            fill_no_assert(&mut q, occupancy);
            // Probe: 200 further non-ECT arrivals; count early drops, refilling
            // to keep occupancy constant.
            let mut drops = 0;
            for i in 0..200 {
                match q.enqueue(ack(5000 + i, TcpFlags::ACK), SimTime::ZERO) {
                    EnqueueOutcome::DroppedEarly => drops += 1,
                    _ => {
                        q.dequeue(SimTime::ZERO);
                    }
                }
            }
            drops
        };
        fn fill_no_assert(q: &mut Red, n: u64) {
            for i in 0..n {
                let _ = q.enqueue(data(i, EcnCodepoint::NotEct), SimTime::ZERO);
            }
        }
        let low = mk(15, 42);
        let high = mk(90, 42);
        assert!(
            high > low,
            "drop frequency must grow with occupancy: {low} vs {high}"
        );
    }

    #[test]
    fn byte_mode_lets_small_acks_slip_under_threshold() {
        // The ablation the paper implies: with per-byte thresholds, 150-byte
        // ACKs barely move the measured queue, so far more of them fit before
        // the threshold trips.
        let mut pkt_mode = Red::new(single_threshold(10, 1000, ProtectionMode::Default), 1);
        let mut cfg = single_threshold(10, 1000, ProtectionMode::Default);
        cfg.byte_mode = true;
        let mut byte_mode = Red::new(cfg, 1);
        let mut first_drop_pkt = None;
        let mut first_drop_byte = None;
        for i in 0..2000 {
            if first_drop_pkt.is_none()
                && pkt_mode.enqueue(ack(i, TcpFlags::ACK), SimTime::ZERO)
                    == EnqueueOutcome::DroppedEarly
            {
                first_drop_pkt = Some(i);
            }
            if first_drop_byte.is_none()
                && byte_mode.enqueue(ack(i, TcpFlags::ACK), SimTime::ZERO)
                    == EnqueueOutcome::DroppedEarly
            {
                first_drop_byte = Some(i);
            }
        }
        let p = first_drop_pkt.expect("packet mode must eventually drop");
        let b = first_drop_byte.expect("byte mode must eventually drop");
        assert!(
            b > p * 5,
            "byte mode should admit many more ACKs: pkt={p} byte={b}"
        );
    }

    #[test]
    fn conservation_property() {
        let mut q = Red::new(single_threshold(5, 20, ProtectionMode::Default), 7);
        let mut offered = 0u64;
        for i in 0..200 {
            offered += 1;
            let _ = q.enqueue(
                data(
                    i,
                    if i % 3 == 0 {
                        EcnCodepoint::NotEct
                    } else {
                        EcnCodepoint::Ect0
                    },
                ),
                SimTime::from_nanos(i),
            );
            if i % 2 == 0 {
                q.dequeue(SimTime::from_nanos(i));
            }
        }
        while q.dequeue(SimTime::ZERO).is_some() {}
        let s = q.stats();
        assert_eq!(s.enqueued.total() + s.dropped_total(), offered);
        assert_eq!(s.enqueued.total(), s.dequeued.total());
        assert_eq!(s.bytes_enqueued, s.bytes_dequeued);
    }

    #[test]
    fn gentle_mode_ramps_above_max_th() {
        let cfg = RedConfig {
            capacity_packets: 1000,
            min_th: 5,
            max_th: 10,
            max_p: 0.1,
            ewma_weight: 1.0,
            byte_mode: false,
            mean_packet_bytes: 1500,
            ecn: false,
            protection: ProtectionMode::Default,
            gentle: true,
        };
        let mut q = Red::new(cfg, 11);
        // Occupancy 12 (between max and 2*max): drops should be probabilistic,
        // i.e. both accepts and drops observed over many trials.
        for i in 0..12 {
            let _ = q.enqueue(data(i, EcnCodepoint::NotEct), SimTime::ZERO);
        }
        let mut accepts = 0;
        let mut drops = 0;
        for i in 0..300 {
            match q.enqueue(ack(1000 + i, TcpFlags::ACK), SimTime::ZERO) {
                EnqueueOutcome::DroppedEarly => drops += 1,
                o if o.accepted() => {
                    accepts += 1;
                    q.dequeue(SimTime::ZERO);
                }
                _ => {}
            }
        }
        assert!(
            accepts > 0 && drops > 0,
            "gentle band must be probabilistic: {accepts}/{drops}"
        );
    }

    #[test]
    fn byte_mode_capacity_is_a_byte_budget() {
        // Regression: tail drop used to check `fifo.len() >= capacity_packets`
        // even in byte mode, so a byte-mode queue enforced capacity in
        // packets. The budget is `capacity_packets` mean-size packets of
        // bytes, the same scaling `thresholds()` applies.
        let mut cfg = single_threshold(1000, 10, ProtectionMode::Default);
        cfg.byte_mode = true; // budget: 10 * 1500 = 15_000 bytes
        let mut q = Red::new(cfg, 1);
        // 150-byte ACKs: a packet-denominated cap would tail-drop the 11th;
        // the byte budget holds exactly 100 of them.
        let mut admitted = 0;
        for i in 0..200 {
            if q.enqueue(ack(i, TcpFlags::ACK), SimTime::ZERO).accepted() {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 100, "15_000 B budget / 150 B ACKs");
        assert_eq!(q.stats().dropped_full.total(), 100);
        assert_eq!(q.stats().dropped_early.total(), 0);
    }

    #[test]
    fn byte_mode_data_fills_budget_before_packet_cap() {
        let mut cfg = single_threshold(1000, 10, ProtectionMode::Default);
        cfg.byte_mode = true; // budget: 15_000 bytes; data wire size is 1514
        let mut q = Red::new(cfg, 1);
        let mut admitted = 0;
        for i in 0..20 {
            if q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::ZERO)
                .accepted()
            {
                admitted += 1;
            }
        }
        // 9 * 1514 = 13_626 fits; the 10th (15_140) exceeds the budget, so
        // byte mode admits fewer full-size packets than the packet cap would.
        assert_eq!(admitted, 9);
    }

    #[test]
    fn ewma_keeps_updating_while_buffer_full() {
        // Regression: the tail-drop path returned before `update_avg`, so the
        // EWMA froze while the buffer was full and under-reported congestion
        // right after overload.
        let mut cfg = single_threshold(50, 4, ProtectionMode::Default); // thresholds above cap
        cfg.ewma_weight = 0.5;
        let mut q = Red::new(cfg, 1);
        for i in 0..4 {
            assert!(q
                .enqueue(data(i, EcnCodepoint::Ect0), SimTime::from_nanos(i + 1))
                .accepted());
        }
        let frozen = q.average_queue();
        assert!(frozen < 3.0, "EWMA lags the fill: {frozen}");
        for i in 0..20 {
            assert_eq!(
                q.enqueue(
                    data(100 + i, EcnCodepoint::Ect0),
                    SimTime::from_nanos(100 + i)
                ),
                EnqueueOutcome::DroppedFull
            );
        }
        assert!(
            q.average_queue() > 3.9,
            "avg must keep converging to the full occupancy while dropping: \
             {} (was {frozen})",
            q.average_queue()
        );
    }

    #[test]
    fn empty_queue_tail_drop_keeps_idle_decay_running() {
        // Byte mode can tail-drop an oversized packet while the queue is
        // empty; the drop must not eat the idle clock, or the EWMA decay for
        // the ongoing idle period is lost.
        let mut cfg = single_threshold(1000, 1, ProtectionMode::Default);
        cfg.byte_mode = true; // budget: 1500 bytes — a 1514-byte data packet never fits
        cfg.ewma_weight = 0.5;
        let mut q = Red::new(cfg, 1);
        for i in 0..5 {
            assert!(q
                .enqueue(ack(i, TcpFlags::ACK), SimTime::from_nanos(i + 1))
                .accepted());
        }
        while q.dequeue(SimTime::from_micros(1)).is_some() {}
        let built = q.average_queue();
        assert!(built > 100.0, "bytes-denominated avg built up: {built}");
        // Oversized arrival 1 µs into the idle period: tail-dropped empty.
        assert_eq!(
            q.enqueue(data(99, EcnCodepoint::Ect0), SimTime::from_micros(2)),
            EnqueueOutcome::DroppedFull
        );
        // 10 ms later the average must have decayed to ~0: the idle period
        // continued across the drop.
        assert!(q
            .enqueue(ack(100, TcpFlags::ACK), SimTime::from_millis(10))
            .accepted());
        assert!(
            q.average_queue() < 1.0,
            "idle decay must survive an empty-queue tail drop: {}",
            q.average_queue()
        );
    }

    #[test]
    fn notification_gaps_are_count_corrected_in_both_bands() {
        // Regression: gentle mode reset `count` even when the probabilistic
        // notify failed, so its inter-notification gaps were geometric
        // (unbounded) instead of count-corrected (bounded by ceil(1/p_b)).
        // Hold occupancy fixed and measure gaps between early drops.
        let gaps_at = |occupancy: u64| -> Vec<u64> {
            let cfg = RedConfig {
                capacity_packets: 1000,
                min_th: 10,
                max_th: 20,
                max_p: 0.25,
                ewma_weight: 1.0,
                byte_mode: false,
                mean_packet_bytes: 1500,
                ecn: false,
                protection: ProtectionMode::Default,
                gentle: true,
            };
            let mut q = Red::new(cfg, 4242);
            for i in 0..occupancy {
                let _ = q.enqueue(data(i, EcnCodepoint::NotEct), SimTime::ZERO);
            }
            let mut gaps = Vec::new();
            let mut since_last = 0u64;
            for i in 0..2000 {
                since_last += 1;
                match q.enqueue(ack(10_000 + i, TcpFlags::ACK), SimTime::ZERO) {
                    EnqueueOutcome::DroppedEarly => {
                        gaps.push(since_last);
                        since_last = 0;
                    }
                    out => {
                        assert!(out.accepted());
                        q.dequeue(SimTime::ZERO); // keep occupancy constant
                    }
                }
            }
            gaps
        };
        // Classic band: occupancy 15 -> p_b = 0.25 * 5/10 = 0.125, bound 8.
        let classic = gaps_at(15);
        // Gentle band: occupancy 25 -> p_b = 0.25 + 0.75 * 5/20 ~= 0.4375, bound 3.
        let gentle = gaps_at(25);
        assert!(classic.len() > 100 && gentle.len() > 400, "enough samples");
        let max_classic = classic.iter().max().copied().unwrap_or(0);
        let max_gentle = gentle.iter().max().copied().unwrap_or(0);
        assert!(
            max_classic <= 8,
            "classic-band gap must be bounded by ceil(1/p_b): {max_classic}"
        );
        assert!(
            max_gentle <= 3,
            "gentle-band gap must be bounded by ceil(1/p_b): {max_gentle}"
        );
        // And the mean gaps must still reflect the underlying probabilities
        // (the correction uniformises, it does not drop every packet).
        let mean = |g: &[u64]| g.iter().sum::<u64>() as f64 / g.len() as f64;
        assert!(mean(&classic) > mean(&gentle), "lower p_b -> longer gaps");
        assert!(
            mean(&gentle) > 1.2,
            "gentle band must not degenerate to p=1"
        );
    }

    #[test]
    fn determinism_same_seed_same_decisions() {
        let run = |seed: u64| -> Vec<EnqueueOutcome> {
            let cfg = RedConfig {
                capacity_packets: 50,
                min_th: 5,
                max_th: 20,
                max_p: 0.3,
                ewma_weight: 0.2,
                byte_mode: false,
                mean_packet_bytes: 1500,
                ecn: true,
                protection: ProtectionMode::Default,
                gentle: false,
            };
            let mut q = Red::new(cfg, seed);
            let mut outs = Vec::new();
            for i in 0..300 {
                let p = if i % 4 == 0 {
                    ack(i, TcpFlags::ACK)
                } else {
                    data(i, EcnCodepoint::Ect0)
                };
                outs.push(q.enqueue(p, SimTime::from_nanos(i * 100)));
                if i % 3 == 0 {
                    q.dequeue(SimTime::from_nanos(i * 100 + 50));
                }
            }
            outs
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds should differ somewhere");
    }
}
