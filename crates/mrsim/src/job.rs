//! Job specification and result types.

use serde::{Deserialize, Serialize};
use simevent::{SimDuration, SimTime};
use tcpstack::TcpConfig;

/// A Terasort-style MapReduce job description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Input bytes stored on each node (Terasort output ≈ input).
    pub input_bytes_per_node: u64,
    /// Number of map waves each node's input is processed in.
    pub map_waves: u32,
    /// Map-phase processing rate per node, in **bytes/second** (CPU+disk model).
    pub map_rate_bps: u64,
    /// Reduce-phase processing rate per node, in bytes/second.
    pub reduce_rate_bps: u64,
    /// Transport configuration for every shuffle flow.
    pub tcp: TcpConfig,
    /// Maximum concurrent inbound fetch flows per reducer node, like
    /// Hadoop's `mapreduce.reduce.shuffle.parallelcopies` (default 5).
    /// Remaining fetches queue and start as active ones finish.
    pub parallel_copies: u32,
    /// Maximum deterministic jitter added to each shuffle flow start, to
    /// avoid artificial lock-step synchronisation of the whole cluster.
    pub shuffle_jitter: SimDuration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl JobSpec {
    /// A small job suitable for tests: `input` bytes per node, single wave.
    pub fn small(input: u64, tcp: TcpConfig) -> JobSpec {
        JobSpec {
            input_bytes_per_node: input,
            map_waves: 1,
            map_rate_bps: 100_000_000,    // 100 MB/s per node
            reduce_rate_bps: 200_000_000, // 200 MB/s per node
            tcp,
            parallel_copies: 5,
            shuffle_jitter: SimDuration::from_micros(200),
            seed: 42,
        }
    }

    /// Bytes of map output each wave produces per node.
    pub fn wave_output_bytes(&self) -> u64 {
        self.input_bytes_per_node / self.map_waves as u64
    }

    /// Duration of one map wave's compute on a node.
    pub fn wave_duration(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.wave_output_bytes() as f64 / self.map_rate_bps as f64)
    }

    /// Shuffle bytes a node sends to EACH remote node per wave (its own
    /// partition stays local). `n` is the cluster size.
    pub fn shuffle_bytes_per_peer(&self, n: u32) -> u64 {
        assert!(n >= 1);
        self.wave_output_bytes() / n as u64
    }

    /// Reduce compute time for a node, given the cluster size: each reducer
    /// handles `total_input / n` bytes.
    pub fn reduce_duration(&self, n: u32) -> SimDuration {
        let per_reducer = self.input_bytes_per_node; // n nodes * input / n reducers
        let _ = n;
        SimDuration::from_secs_f64(per_reducer as f64 / self.reduce_rate_bps as f64)
    }

    /// Validate.
    pub fn validate(&self) {
        assert!(self.input_bytes_per_node > 0, "job needs input");
        assert!(self.map_waves >= 1, "at least one map wave");
        assert!(self.map_rate_bps > 0 && self.reduce_rate_bps > 0);
        assert!(self.parallel_copies >= 1, "need at least one parallel copy");
        self.tcp.validate();
    }
}

/// What a finished job reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobResult {
    /// Completion time of the last reducer — the paper's "runtime".
    pub runtime: SimTime,
    /// When the first shuffle flow started.
    pub first_flow_at: SimTime,
    /// When the last shuffle byte was acknowledged.
    pub shuffle_done: SimTime,
    /// Shuffle flows that ran.
    pub flows: u64,
    /// Total bytes moved across the network.
    pub shuffle_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let j = JobSpec {
            input_bytes_per_node: 100_000_000,
            map_waves: 4,
            map_rate_bps: 50_000_000,
            reduce_rate_bps: 100_000_000,
            tcp: TcpConfig::default(),
            parallel_copies: 5,
            shuffle_jitter: SimDuration::ZERO,
            seed: 1,
        };
        j.validate();
        assert_eq!(j.wave_output_bytes(), 25_000_000);
        // 25 MB at 50 MB/s = 0.5 s per wave.
        assert_eq!(j.wave_duration(), SimDuration::from_millis(500));
        // 25 MB / 5 nodes = 5 MB per peer per wave.
        assert_eq!(j.shuffle_bytes_per_peer(5), 5_000_000);
        // Reducer handles 100 MB at 100 MB/s = 1 s.
        assert_eq!(j.reduce_duration(5), SimDuration::from_secs(1));
    }

    #[test]
    fn small_helper_validates() {
        JobSpec::small(1_000_000, TcpConfig::default()).validate();
    }

    #[test]
    #[should_panic(expected = "input")]
    fn zero_input_rejected() {
        JobSpec::small(0, TcpConfig::default()).validate();
    }
}
