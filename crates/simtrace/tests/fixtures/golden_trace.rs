// Golden-trace fixture, `include!`d by `tests/golden.rs` (so: line comments
// only — inner doc comments cannot be spliced mid-file).
//
// Lives under a `fixtures/` directory of a non-simlint crate: simlint scans
// it (unlike its own fixture corpus) and the test-path exemption keeps the
// deliberate `unwrap` below out of SL004's reach.

/// The exact JSONL a [`JsonlSink`] must produce for [`golden_events`]: one
/// queue-registration preamble line, then one fixed-shape line per event.
/// Hand-written, so any change to the wire format is a conscious edit here.
const GOLDEN: &str = "\
{\"meta\":\"queue\",\"q\":0,\"name\":\"sw0/p0: Red(min=5,max=15)\"}\n\
{\"t\":1000,\"ev\":\"enqueued\",\"q\":0,\"flow\":3,\"pkt\":41,\"kind\":\"data\",\"a\":0,\"b\":0,\"c\":0}\n\
{\"t\":1500,\"ev\":\"marked\",\"q\":0,\"flow\":3,\"pkt\":42,\"kind\":\"data\",\"a\":0,\"b\":0,\"c\":0}\n\
{\"t\":2000,\"ev\":\"dropped_early\",\"q\":0,\"flow\":4,\"pkt\":43,\"kind\":\"ack\",\"a\":0,\"b\":0,\"c\":0}\n\
{\"t\":2500,\"ev\":\"queue_depth\",\"q\":0,\"flow\":null,\"pkt\":null,\"kind\":null,\"a\":7,\"b\":10598,\"c\":0}\n\
{\"t\":3000,\"ev\":\"cwnd_change\",\"q\":null,\"flow\":3,\"pkt\":null,\"kind\":null,\"a\":2920,\"b\":65535,\"c\":2}\n";

/// The event sequence matching [`GOLDEN`] (minus the preamble line).
fn golden_events() -> Vec<TraceEvent> {
    let pkt = |kind, t, flow, id, pk| {
        let mut ev = TraceEvent::new(kind, SimTime::from_nanos(t));
        ev.queue = 0;
        ev.flow = flow;
        ev.packet = id;
        ev.pkind = pk;
        ev
    };
    let mut depth = TraceEvent::new(EventKind::QueueDepth, SimTime::from_nanos(2500));
    depth.queue = 0;
    depth.a = 7;
    depth.b = 10598;
    let mut cwnd = TraceEvent::new(EventKind::CwndChange, SimTime::from_nanos(3000));
    cwnd.flow = 3;
    cwnd.a = 2920;
    cwnd.b = 65535;
    cwnd.c = 2; // controller/reason tag: Reno (id 0), reason ece (2)
    vec![
        pkt(EventKind::Enqueued, 1000, 3, 41, 0),
        pkt(EventKind::Marked, 1500, 3, 42, 0),
        pkt(EventKind::DroppedEarly, 2000, 4, 43, 1),
        depth,
        cwnd,
    ]
}

/// Parse the timestamp of the `n`-th *event* line of a golden trace
/// (skipping meta lines). Fixture code unwraps freely — a malformed golden
/// trace should explode the test, loudly.
fn golden_event_time(trace: &str, n: usize) -> SimTime {
    let line = trace
        .lines()
        .filter(|l| !l.contains("\"meta\""))
        .nth(n)
        .unwrap();
    event_time(line).unwrap()
}
