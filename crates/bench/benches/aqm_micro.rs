//! Microbenchmarks of the paper's queue disciplines: per-packet
//! enqueue/dequeue cost of DropTail, RED (each protection mode) and the
//! simple marking scheme. The paper's argument that a "true simple marking
//! scheme ... simplifies the configuration" has a systems-cost face too:
//! the marking scheme does strictly less work per packet than RED.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ecn_core::{DropTail, ProtectionMode, Red, RedConfig, SimpleMarking, SimpleMarkingConfig};
use netpacket::{EcnCodepoint, FlowId, NodeId, Packet, PacketId, QueueDiscipline, TcpFlags};
use simevent::{SimDuration, SimTime};

fn pkt(i: u64) -> Packet {
    // 4/5 ECT data, 1/5 non-ECT ACK, like a shuffle hot spot.
    let ack = i % 5 == 0;
    Packet {
        id: PacketId(i),
        flow: FlowId(i % 16),
        src: NodeId(0),
        dst: NodeId(1),
        seq: i * 1460,
        ack: 1,
        payload: if ack { 0 } else { 1460 },
        flags: TcpFlags::ACK,
        ecn: if ack {
            EcnCodepoint::NotEct
        } else {
            EcnCodepoint::Ect0
        },
        sack: netpacket::SackBlocks::EMPTY,
        sent_at: SimTime::ZERO,
    }
}

fn drive(q: &mut dyn QueueDiscipline, n: u64) {
    for i in 0..n {
        let _ = q.enqueue(pkt(i), SimTime::from_nanos(i * 100));
        if i % 2 == 0 {
            let _ = q.dequeue(SimTime::from_nanos(i * 100 + 50));
        }
    }
    while q.dequeue(SimTime::ZERO).is_some() {}
}

fn bench_aqms(c: &mut Criterion) {
    const N: u64 = 10_000;
    let mut g = c.benchmark_group("aqm_micro");
    g.throughput(Throughput::Elements(N));

    g.bench_function("droptail", |b| {
        b.iter(|| {
            let mut q = DropTail::new(100);
            drive(black_box(&mut q), N);
        })
    });
    for mode in ProtectionMode::ALL {
        g.bench_function(format!("red_{}", mode.label()), |b| {
            b.iter(|| {
                let mut q = Red::new(
                    RedConfig::from_target_delay(
                        SimDuration::from_micros(500),
                        1_000_000_000,
                        1526,
                        100,
                        mode,
                    ),
                    7,
                );
                drive(black_box(&mut q), N);
            })
        });
    }
    g.bench_function("simple_marking", |b| {
        b.iter(|| {
            let mut q = SimpleMarking::new(SimpleMarkingConfig {
                capacity_packets: 100,
                threshold_packets: 41,
            });
            drive(black_box(&mut q), N);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_aqms);
criterion_main!(benches);
