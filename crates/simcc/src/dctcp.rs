//! DCTCP (RFC 8257): per-window CE-fraction EWMA (`alpha`) driving a
//! proportional multiplicative decrease. Growth and loss handling are the
//! NewReno mechanics. This reproduces the pre-refactor hardwired DCTCP path
//! expression for expression.

use crate::{CcAlg, CcParams, CongestionController, Window};

/// DCTCP per-flow state: the window pair plus the alpha observation window.
#[derive(Debug, Clone, Copy)]
pub struct Dctcp {
    w: Window,
    /// Fraction-of-marked-bytes EWMA (conservative 1.0 init).
    alpha: f64,
    /// Bytes acked with CE feedback in the current observation window.
    ce_acked: u64,
    /// Total bytes acked in the current observation window.
    window_acked: u64,
    /// Sequence number closing the current observation window.
    alpha_end: u64,
}

impl Dctcp {
    /// Fresh state; `alpha_end = 1` matches the pre-refactor init (the first
    /// data byte closes the first observation window).
    pub fn new(p: &CcParams) -> Dctcp {
        Dctcp {
            w: Window::new(p),
            alpha: 1.0,
            ce_acked: 0,
            window_acked: 0,
            alpha_end: 1,
        }
    }
}

impl CongestionController for Dctcp {
    fn alg(&self) -> CcAlg {
        CcAlg::Dctcp
    }
    fn cwnd(&self) -> f64 {
        self.w.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.w.ssthresh
    }
    fn alpha(&self) -> f64 {
        self.alpha
    }
    fn on_ack(&mut self, p: &CcParams, newly: u64, _now_ns: u64) {
        self.w.reno_ack(p, newly);
    }
    fn on_ce_feedback(&mut self, p: &CcParams, newly: u64, ce: bool, ack: u64, snd_nxt: u64) {
        self.window_acked += newly;
        if ce {
            self.ce_acked += newly;
        }
        if ack >= self.alpha_end {
            if self.window_acked > 0 {
                let f = self.ce_acked as f64 / self.window_acked as f64;
                let g = p.dctcp_g;
                self.alpha = (1.0 - g) * self.alpha + g * f;
            }
            self.ce_acked = 0;
            self.window_acked = 0;
            self.alpha_end = snd_nxt;
        }
    }
    fn on_ece(&mut self, p: &CcParams) -> bool {
        self.w.cwnd = (self.w.cwnd * (1.0 - self.alpha / 2.0)).max(p.mss);
        self.w.ssthresh = self.w.cwnd;
        true
    }
    fn on_loss(&mut self, p: &CcParams, flight: u64) {
        self.w.reno_loss(p, flight);
    }
    fn on_partial_ack(&mut self, p: &CcParams, newly: u64) {
        self.w.partial_ack(p, newly);
    }
    fn on_recovery_dupack(&mut self, p: &CcParams) {
        self.w.cwnd += p.mss;
    }
    fn undo_recovery_dupack(&mut self, p: &CcParams) {
        self.w.cwnd -= p.mss;
    }
    fn on_recovery_exit(&mut self, _p: &CcParams) {
        self.w.cwnd = self.w.ssthresh;
    }
    fn on_rto(&mut self, p: &CcParams, flight: u64) {
        self.w.rto(p, flight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_params;

    #[test]
    fn alpha_decays_on_clean_window() {
        let p = test_params();
        let mut d = Dctcp::new(&p);
        assert_eq!(d.alpha(), 1.0, "conservative init");
        d.on_ce_feedback(&p, 2920, false, 2921, 5841);
        let g = 1.0 / 16.0;
        assert!((d.alpha() - (1.0 - g)).abs() < 1e-12, "alpha {}", d.alpha());
        assert_eq!(d.alpha_end, 5841, "next window closes at snd_nxt");
    }

    #[test]
    fn alpha_tracks_ce_fraction() {
        let p = test_params();
        let mut d = Dctcp::new(&p);
        // Half the window's bytes CE-marked, observed over two ACKs.
        d.on_ce_feedback(&p, 1460, true, 1461, 2921);
        d.on_ce_feedback(&p, 1460, false, 2921, 2921);
        let g = 1.0 / 16.0;
        let expect = (1.0 - g) * ((1.0 - g) * 1.0 + g * 1.0) + g * 0.0;
        // First ACK closes the initial 1-byte window with f = 1, the second
        // closes the next with f = 0 (counters were reset between).
        assert!((d.alpha() - expect).abs() < 1e-12, "alpha {}", d.alpha());
    }

    #[test]
    fn ece_scales_by_alpha_with_mss_floor() {
        let p = test_params();
        let mut d = Dctcp::new(&p);
        d.alpha = 0.5;
        let before = d.cwnd();
        assert!(d.on_ece(&p));
        assert_eq!(d.cwnd().to_bits(), (before * 0.75f64).to_bits());
        assert_eq!(d.ssthresh(), d.cwnd());
    }
}
