//! End-to-end Terasort runs over the simulated cluster.

use ecn_core::{ProtectionMode, QdiscSpec, RedConfig, SimpleMarkingConfig};
use mrsim::{JobSpec, TerasortJob};
use netsim::{ClusterSpec, LinkSpec, Network, Simulation};
use simevent::{SimDuration, SimTime};
use tcpstack::{EcnMode, TcpConfig};

fn cluster(qdisc: QdiscSpec, seed: u64) -> ClusterSpec {
    ClusterSpec {
        racks: 2,
        hosts_per_rack: 4,
        host_link: LinkSpec::gbps(1, 5),
        uplink: LinkSpec::gbps(10, 5),
        switch_qdisc: qdisc,
        host_buffer_packets: 2000,
        seed,
    }
}

fn run(qdisc: QdiscSpec, job: JobSpec) -> (netsim::RunReport, Simulation<TerasortJob>) {
    let spec = cluster(qdisc, 1234);
    let n = spec.total_hosts();
    let net = Network::new(spec);
    let app = TerasortJob::new(job, n);
    let mut sim = Simulation::new(net, app);
    sim.time_limit = SimTime::from_secs(600);
    let report = sim.run();
    (report, sim)
}

#[test]
fn terasort_completes_on_droptail() {
    let job = JobSpec::small(2_000_000, TcpConfig::default());
    let (report, sim) = run(
        QdiscSpec::DropTail {
            capacity_packets: 100,
        },
        job,
    );
    assert!(report.app_done, "job must finish: {report:?}");
    let res = sim.app.result();
    // 8 nodes, each sends 2MB * 7/8 across the network.
    assert_eq!(res.flows, 8 * 7);
    assert_eq!(res.shuffle_bytes, 8 * 7 * (2_000_000 / 8));
    assert!(res.runtime > res.shuffle_done);
    assert!(res.runtime > SimTime::ZERO);
    // All shuffle bytes really crossed the network.
    assert_eq!(sim.net.total_bytes_received(), res.shuffle_bytes);
}

#[test]
fn map_phase_lower_bounds_runtime() {
    let job = JobSpec::small(2_000_000, TcpConfig::default());
    let wave = job.wave_duration();
    let reduce = job.reduce_duration(8);
    let (report, sim) = run(
        QdiscSpec::DropTail {
            capacity_packets: 100,
        },
        job,
    );
    assert!(report.app_done);
    let res = sim.app.result();
    // Runtime >= map wave + reduce compute (network adds more).
    assert!(
        res.runtime >= SimTime::ZERO + wave + reduce,
        "runtime {} too small",
        res.runtime
    );
}

#[test]
fn multi_wave_shuffle_overlaps_map() {
    let mut job = JobSpec::small(4_000_000, TcpConfig::default());
    job.map_waves = 4;
    let (report, sim) = run(
        QdiscSpec::DropTail {
            capacity_packets: 100,
        },
        job,
    );
    assert!(report.app_done);
    let res = sim.app.result();
    assert_eq!(res.flows, 4 * 8 * 7, "one flow per wave per ordered pair");
    assert_eq!(sim.net.total_bytes_received(), res.shuffle_bytes);
}

#[test]
fn terasort_is_deterministic() {
    let go = || {
        let job = JobSpec::small(1_000_000, TcpConfig::with_ecn(EcnMode::Dctcp));
        let (report, sim) = run(
            QdiscSpec::Red(RedConfig::from_target_delay(
                SimDuration::from_micros(500),
                1_000_000_000,
                1526,
                100,
                ProtectionMode::AckSyn,
            )),
            job,
        );
        assert!(report.app_done);
        let r = sim.app.result();
        (
            r.runtime,
            r.shuffle_done,
            r.flows,
            sim.net.latency().mean().as_nanos(),
        )
    };
    assert_eq!(go(), go());
}

#[test]
fn simple_marking_beats_default_red_on_runtime() {
    // The paper's headline: stock RED+ECN (Default protection, tight
    // threshold) hurts Hadoop runtime; the true simple marking scheme does
    // not. Compare the two on identical jobs.
    let tight = SimDuration::from_micros(100);
    let job = || JobSpec::small(4_000_000, TcpConfig::with_ecn(EcnMode::Ecn));

    let (rep_red, sim_red) = run(
        QdiscSpec::Red(RedConfig::from_target_delay(
            tight,
            1_000_000_000,
            1526,
            100,
            ProtectionMode::Default,
        )),
        job(),
    );
    let (rep_sm, sim_sm) = run(
        QdiscSpec::SimpleMarking(SimpleMarkingConfig::from_target_delay(
            tight,
            1_000_000_000,
            1526,
            100,
        )),
        job(),
    );
    assert!(rep_red.app_done && rep_sm.app_done);
    let t_red = sim_red.app.result().runtime;
    let t_sm = sim_sm.app.result().runtime;
    assert!(
        t_sm < t_red,
        "simple marking ({t_sm}) must beat default RED ({t_red}) at tight thresholds"
    );
    // And the mechanism: default RED early-dropped ACKs, simple marking none.
    let red_stats = sim_red.net.port_stats().total;
    let sm_stats = sim_sm.net.port_stats().total;
    assert!(red_stats.dropped_early.get(netpacket::PacketKind::PureAck) > 0);
    assert_eq!(sm_stats.dropped_early.total(), 0);
}

#[test]
fn shuffle_latency_reduced_by_marking_vs_droptail_deep() {
    // Deep buffers + DropTail = bufferbloat; deep buffers + marking = low
    // latency at full throughput (paper Fig. 4b).
    let job = || JobSpec::small(4_000_000, TcpConfig::with_ecn(EcnMode::Dctcp));
    let (rep_dt, sim_dt) = run(
        QdiscSpec::DropTail {
            capacity_packets: 1000,
        },
        job(),
    );
    let (rep_sm, sim_sm) = run(
        QdiscSpec::SimpleMarking(SimpleMarkingConfig {
            capacity_packets: 1000,
            threshold_packets: 42, // ~500us at 1Gbps
        }),
        job(),
    );
    assert!(rep_dt.app_done && rep_sm.app_done);
    let lat_dt = sim_dt.net.latency().mean();
    let lat_sm = sim_sm.net.latency().mean();
    assert!(
        lat_sm.as_nanos() * 2 < lat_dt.as_nanos(),
        "marking must cut latency at least 2x: droptail {lat_dt} vs marking {lat_sm}"
    );
    // Throughput (runtime) must not collapse: within 25% of DropTail.
    let t_dt = sim_dt.app.result().runtime.as_secs_f64();
    let t_sm = sim_sm.app.result().runtime.as_secs_f64();
    assert!(t_sm < t_dt * 1.25, "runtime {t_sm} vs droptail {t_dt}");
}
