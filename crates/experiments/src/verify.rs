//! `simverify`: the schedule-permutation determinism checker.
//!
//! The determinism contract (DESIGN.md §14) says a run is a pure function of
//! `(scenario, seed)` — in particular, no simulation result may depend on
//! the *arbitrary* part of same-instant event ordering: the interleaving of
//! events handled by different entities (hosts, switches, the application).
//! That cross-entity freedom is exactly the scheduling freedom a sharded
//! engine has, so a checker for it doubles as the conformance oracle for
//! ROADMAP item 2.
//!
//! The check: re-run a pinned scenario grid (DCTCP and TCP Prague, each
//! through deployed-RED-mimic and true simple marking, on the tiny incast
//! shuffle) under [`simevent::TieBreak::Permuted`] with N different seeds.
//! Each seed picks a different cross-entity interleaving of every
//! same-instant tie while keeping each destination's inbox in canonical
//! per-source order (the deterministic merge — see `simevent::tiebreak`).
//! All N runs must produce **byte-identical metrics JSON** and
//! **canonically-identical packet traces** ([`simtrace::diff_jsonl_canonical`]
//! — within-instant emission order is the serialisation's business, the event
//! *set* per instant is not). Any divergence is CI-fatal.
//!
//! A second, cheaper assertion rides along: the production FIFO serialisation
//! must be run-to-run reproducible (two identical invocations, byte-identical
//! everything). FIFO itself is a *different* pinned serialisation of
//! same-instant ties than the permutation family's canonical merge, so its
//! results are compared against its own re-run, not against the permuted
//! runs; quantum-level differences between the two serialisations (e.g. which
//! of two packets arriving at the same instant crosses a RED threshold) are
//! physical ambiguity, not nondeterminism.

use crate::scenario::{
    run_scenario_once_full, BufferDepth, Engine, QueueKind, RunMetrics, ScenarioConfig, Transport,
};
use ecn_core::ProtectionMode;
use simevent::SimDuration;
use simtrace::{diff_jsonl_canonical, Divergence, JsonlSink, TraceHandle};
use std::path::{Path, PathBuf};
use tcpstack::CcAlg;

/// One cell of the pinned verification grid.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Stable label, used in file names and the report.
    pub label: &'static str,
    /// Transport (ECN feedback mode).
    pub transport: Transport,
    /// Congestion-controller override (`None` = transport's native pairing).
    pub cc: Option<CcAlg>,
    /// Switch queue discipline.
    pub queue: QueueKind,
}

/// The pinned grid: both paper-relevant marking schemes under the two
/// ECN-reacting controllers the repo models. Pinned — not configurable — so
/// CI always certifies the same surface.
pub fn pinned_grid() -> Vec<CellSpec> {
    vec![
        CellSpec {
            label: "dctcp-redmimic",
            transport: Transport::Dctcp,
            cc: None,
            queue: QueueKind::RedMimic(ProtectionMode::AckSyn),
        },
        CellSpec {
            label: "dctcp-simplemark",
            transport: Transport::Dctcp,
            cc: None,
            queue: QueueKind::SimpleMarking,
        },
        CellSpec {
            label: "prague-redmimic",
            transport: Transport::Dctcp,
            cc: Some(CcAlg::Prague),
            queue: QueueKind::RedMimic(ProtectionMode::AckSyn),
        },
        CellSpec {
            label: "prague-simplemark",
            transport: Transport::Dctcp,
            cc: Some(CcAlg::Prague),
            queue: QueueKind::SimpleMarking,
        },
        CellSpec {
            label: "prague-dualq",
            transport: Transport::Dctcp,
            cc: Some(CcAlg::Prague),
            queue: QueueKind::DualQ(ProtectionMode::AckSyn),
        },
    ]
}

/// The pinned scenario every cell runs: the tiny incast shuffle (one rack,
/// four hosts, one map wave — every reducer pulls from every mapper, so the
/// ToR port sees synchronized bursts), single repetition, fixed base seed.
pub fn pinned_scenario() -> ScenarioConfig {
    ScenarioConfig {
        seed_count: 1,
        ..ScenarioConfig::tiny()
    }
}

/// Knobs for one verification run.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Number of tie-break permutation seeds (must be >= 2 to compare).
    pub permutations: u32,
    /// First permutation seed; seeds are `base_seed..base_seed+permutations`.
    pub base_seed: u64,
    /// Where divergence artifacts land (trace + metrics files are kept for
    /// diverging cells, removed for clean ones).
    pub out_dir: PathBuf,
    /// Record and compare full packet-lifecycle traces (the strong check).
    /// Off = metrics-JSON comparison only (fast; used by unit tests).
    pub trace: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            permutations: 4,
            base_seed: 1,
            out_dir: PathBuf::from("results").join("simverify"),
            trace: true,
        }
    }
}

/// What one cell's check concluded.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell's label.
    pub label: String,
    /// Whether every comparison in the cell passed.
    pub ok: bool,
    /// Human-readable findings, one line per comparison.
    pub detail: Vec<String>,
}

/// The whole run's conclusion.
#[derive(Debug)]
pub struct VerifyReport {
    /// Per-cell outcomes, in grid order.
    pub cells: Vec<CellOutcome>,
}

impl VerifyReport {
    /// True when every cell passed.
    pub fn ok(&self) -> bool {
        self.cells.iter().all(|c| c.ok)
    }
}

/// One run's comparable artifacts.
struct RunArtifacts {
    metrics_json: String,
    trace_jsonl: Option<String>,
}

fn run_once(
    cfg: &ScenarioConfig,
    cell: &CellSpec,
    trace_path: Option<&Path>,
) -> std::io::Result<RunArtifacts> {
    let trace = match trace_path {
        Some(p) => TraceHandle::new(Box::new(JsonlSink::create(p)?)),
        None => TraceHandle::null(),
    };
    let (metrics, _report, _pool) = run_scenario_once_full(
        cfg,
        cell.transport,
        cell.queue,
        BufferDepth::Shallow,
        SimDuration::from_micros(500),
        Engine::Fast,
        trace.clone(),
    );
    trace.flush()?;
    let metrics_json = metrics_json(&metrics);
    let trace_jsonl = match trace_path {
        Some(p) => Some(std::fs::read_to_string(p)?),
        None => None,
    };
    Ok(RunArtifacts {
        metrics_json,
        trace_jsonl,
    })
}

/// The canonical metrics serialisation the byte-diff runs over.
pub fn metrics_json(m: &RunMetrics) -> String {
    serde_json::to_string_pretty(m).expect("RunMetrics serializes")
}

fn describe_divergence(kind: &str, a: &str, b: &str, d: &Divergence) -> String {
    format!(
        "{kind} diverged at line {}: {a} {:?} vs {b} {:?}",
        d.line,
        d.left.as_deref().unwrap_or("<end of trace>"),
        d.right.as_deref().unwrap_or("<end of trace>"),
    )
}

/// Check one cell: FIFO run-to-run reproducibility plus N-way permutation
/// invariance. Artifacts are written under `opts.out_dir/<label>/`; the
/// directory is removed again when the cell passes.
pub fn verify_cell(cell: &CellSpec, opts: &VerifyOptions) -> std::io::Result<CellOutcome> {
    assert!(opts.permutations >= 2, "need >= 2 permutations to compare");
    let dir = opts.out_dir.join(cell.label);
    std::fs::create_dir_all(&dir)?;
    let mut detail = Vec::new();
    let mut ok = true;
    let mut base_cfg = pinned_scenario();
    base_cfg.cc = cell.cc;

    let tpath = |name: &str| -> Option<PathBuf> {
        opts.trace.then(|| dir.join(format!("{name}.trace.jsonl")))
    };
    let compare = |label_a: &str,
                   a: &RunArtifacts,
                   label_b: &str,
                   b: &RunArtifacts,
                   detail: &mut Vec<String>,
                   ok: &mut bool| {
        if a.metrics_json != b.metrics_json {
            *ok = false;
            detail.push(format!(
                "metrics JSON differs between {label_a} and {label_b}:\n--- {label_a}\n{}\n--- {label_b}\n{}",
                a.metrics_json, b.metrics_json
            ));
        }
        if let (Some(ta), Some(tb)) = (&a.trace_jsonl, &b.trace_jsonl) {
            if let Some(d) = diff_jsonl_canonical(ta, tb) {
                *ok = false;
                detail.push(describe_divergence("trace", label_a, label_b, &d));
            }
        }
    };

    // FIFO reproducibility: the production serialisation, run twice.
    let fifo_a = run_once(&base_cfg, cell, tpath("fifo-a").as_deref())?;
    let fifo_b = run_once(&base_cfg, cell, tpath("fifo-b").as_deref())?;
    if let Some(t) = &fifo_a.trace_jsonl {
        // A near-empty trace would make every comparison pass vacuously;
        // the tiny incast shuffle produces tens of thousands of lifecycle
        // events, so a tiny line count means the checker is not actually
        // exercising the simulation.
        let lines = t.lines().count();
        if lines < 1000 {
            ok = false;
            detail.push(format!(
                "trace is suspiciously small ({lines} lines): checker would pass vacuously"
            ));
        }
    }
    if fifo_a.metrics_json != fifo_b.metrics_json || fifo_a.trace_jsonl != fifo_b.trace_jsonl {
        ok = false;
        detail.push(
            "FIFO run is not run-to-run reproducible (byte diff between identical invocations)"
                .into(),
        );
    } else {
        detail.push("fifo: run-to-run byte-identical".into());
    }

    // Permutation invariance: N seeds, all compared against the first.
    let mut runs: Vec<(String, RunArtifacts)> = Vec::new();
    for i in 0..opts.permutations {
        let seed = opts.base_seed + u64::from(i);
        let mut cfg = base_cfg.clone();
        cfg.tie_seed = Some(seed);
        let name = format!("perm-{seed}");
        let art = run_once(&cfg, cell, tpath(&name).as_deref())?;
        std::fs::write(dir.join(format!("{name}.metrics.json")), &art.metrics_json)?;
        runs.push((name, art));
    }
    let (first_name, first) = &runs[0];
    let mut perm_ok = true;
    for (name, art) in &runs[1..] {
        let before = detail.len();
        compare(first_name, first, name, art, &mut detail, &mut ok);
        perm_ok &= detail.len() == before;
    }
    if perm_ok {
        detail.push(format!(
            "permutations: {} seeded tie-break orders byte-identical",
            opts.permutations
        ));
    }

    if ok {
        let _ = std::fs::remove_dir_all(&dir);
    } else {
        std::fs::write(dir.join("DIVERGENCE.txt"), detail.join("\n\n"))?;
    }
    Ok(CellOutcome {
        label: cell.label.to_string(),
        ok,
        detail,
    })
}

/// Run the whole pinned grid.
pub fn verify_grid(cells: &[CellSpec], opts: &VerifyOptions) -> std::io::Result<VerifyReport> {
    let mut out = Vec::new();
    for cell in cells {
        eprintln!("[simverify] checking {} ...", cell.label);
        let outcome = verify_cell(cell, opts)?;
        for line in &outcome.detail {
            let first = line.lines().next().unwrap_or("");
            eprintln!(
                "[simverify]   {} {}",
                if outcome.ok { "ok:" } else { "FAIL:" },
                first
            );
        }
        out.push(outcome);
    }
    Ok(VerifyReport { cells: out })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("simverify-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn grid_is_pinned() {
        let g = pinned_grid();
        assert_eq!(g.len(), 5);
        assert!(g.iter().any(|c| c.cc == Some(CcAlg::Prague)));
        assert!(g
            .iter()
            .any(|c| matches!(c.queue, QueueKind::SimpleMarking)));
        assert!(g
            .iter()
            .any(|c| matches!(c.queue, QueueKind::RedMimic(ProtectionMode::AckSyn))));
        // The headline L4S pairing is certified deterministic too.
        assert!(g.iter().any(|c| c.cc == Some(CcAlg::Prague)
            && matches!(c.queue, QueueKind::DualQ(ProtectionMode::AckSyn))));
        // Labels are unique (they name artifact directories).
        let mut labels: Vec<_> = g.iter().map(|c| c.label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn one_cell_passes_metrics_only() {
        // The fastest cell, metrics-only, two permutations: exercises the
        // full compare/report path without the trace IO cost.
        let opts = VerifyOptions {
            permutations: 2,
            base_seed: 11,
            out_dir: test_dir("cell"),
            trace: false,
        };
        let cell = CellSpec {
            label: "dctcp-simplemark",
            transport: Transport::Dctcp,
            cc: None,
            queue: QueueKind::SimpleMarking,
        };
        let outcome = verify_cell(&cell, &opts).expect("io");
        assert!(outcome.ok, "divergence: {:?}", outcome.detail);
        assert!(
            !opts.out_dir.join(cell.label).exists(),
            "clean cells leave no artifacts behind"
        );
        let _ = std::fs::remove_dir_all(&opts.out_dir);
    }

    #[test]
    fn metrics_json_is_stable() {
        let m = RunMetrics {
            runtime_s: 1.5,
            throughput_per_node_bps: 2.0,
            mean_latency_s: 0.1,
            p99_latency_s: 0.2,
            acks_early_dropped: 1,
            handshake_early_dropped: 2,
            data_marked: 3,
            full_drops: 4,
            timeouts: 5,
            fast_retransmits: 6,
            syn_retransmits: 7,
            cc_fallbacks: 8,
            completed: true,
        };
        assert_eq!(metrics_json(&m), metrics_json(&m.clone()));
        assert!(metrics_json(&m).contains("\"data_marked\": 3"));
    }
}
