//! SL012 fixture: `unsafe` outside `netpacket::pool`.
//!
//! Scanned as `crates/tcpstack/src/fast.rs` (one violation, line 8 — and
//! unlike most rules, a `tests/` path does NOT exempt it) and as
//! `crates/netpacket/src/pool.rs`, the one audited home, where it is clean.

fn peek_u32(buf: &[u8]) -> u32 {
    unsafe { read_unaligned(buf.as_ptr().cast()) }
}

// No clean section: any other `unsafe` token would itself be a finding —
// the rule has no carve-outs besides the pool file and waivers.
