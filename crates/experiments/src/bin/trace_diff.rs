//! Compare two same-seed JSONL packet traces and report the first
//! diverging event.
//!
//! Usage: `trace_diff LEFT.jsonl RIGHT.jsonl`
//!
//! Exit status: 0 when the traces are identical, 1 on divergence, 2 on a
//! usage or IO error. CI runs the same traced scenario twice and requires
//! exit 0 — any nondeterminism in the simulation shows up here as the first
//! event where the two runs disagree, with its simulated timestamp.

use simtrace::{diff_jsonl, event_time};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [left_path, right_path] = args.as_slice() else {
        eprintln!("usage: trace_diff LEFT.jsonl RIGHT.jsonl");
        std::process::exit(2);
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("trace_diff: {p}: {e}");
            std::process::exit(2);
        })
    };
    let (left, right) = (read(left_path), read(right_path));
    match diff_jsonl(&left, &right) {
        None => {
            println!(
                "traces identical ({} lines)",
                left.lines().filter(|l| !l.is_empty()).count()
            );
        }
        Some(d) => {
            println!("traces diverge at line {}", d.line);
            let side = |name: &str, path: &str, line: &Option<String>| match line {
                Some(l) => {
                    let at = event_time(l)
                        .map(|t| format!(" (t={t:?})"))
                        .unwrap_or_default();
                    println!("  {name} {path}{at}: {l}");
                }
                None => println!("  {name} {path}: <end of trace>"),
            };
            side("left ", left_path, &d.left);
            side("right", right_path, &d.right);
            std::process::exit(1);
        }
    }
}
