//! Simulation-kernel microbenchmarks: scheduler backend throughput (the
//! binary-heap reference vs the calendar-queue fast path) and one Fig. 2
//! scenario point per engine. `perf_report` measures the same workloads with
//! its own timing loop to produce `BENCH_1.json`; this bench keeps them under
//! criterion for regression tracking.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use experiments::scenario::{
    run_scenario_once_traced, run_scenario_once_with, BufferDepth, Engine, QueueKind,
    ScenarioConfig, Transport,
};
use simevent::{CalendarQueue, EventQueue, QueueBackend, SimDuration, SimTime};
use simtrace::{NullSink, TraceHandle};

/// Deterministic 64-bit LCG (MMIX constants) for workload jitter.
struct Lcg(u64);

impl Lcg {
    fn next_below(&mut self, bound: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

/// Hold-and-churn: keep `pending` events in flight, pop and reschedule with
/// up to 1 ms of jitter (see `perf_report` for the BENCH_1.json version).
fn churn<Q: QueueBackend<u64>>(mut q: Q, pending: usize, events: u64) {
    let mut rng = Lcg(0x9E37_79B9_7F4A_7C15);
    for i in 0..pending {
        q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i as u64);
    }
    for _ in 0..events {
        let (at, v) = q.pop().expect("queue held non-empty");
        q.schedule(
            at + SimDuration::from_nanos(rng.next_below(1_000_000) + 1),
            v,
        );
    }
}

fn bench_backends(c: &mut Criterion) {
    const PENDING: usize = 65_536;
    const EVENTS: u64 = 100_000;
    let mut g = c.benchmark_group("kernel");
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("heap_churn", |b| {
        b.iter(|| churn(black_box(EventQueue::new()), PENDING, EVENTS))
    });
    g.bench_function("calendar_churn", |b| {
        // Geometry matched to the load per Brown's sizing rule: ~2 events per
        // bucket, window spanning the 1 ms jitter horizon.
        b.iter(|| {
            churn(
                black_box(CalendarQueue::with_geometry(7, 32_768)),
                PENDING,
                EVENTS,
            )
        })
    });
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    let cfg = ScenarioConfig::tiny();
    let point = |engine| {
        run_scenario_once_with(
            &cfg,
            Transport::Dctcp,
            QueueKind::SimpleMarking,
            BufferDepth::Shallow,
            SimDuration::from_micros(500),
            engine,
        )
    };
    let mut g = c.benchmark_group("fig2_point_engines");
    g.sample_size(10);
    g.bench_function("reference", |b| {
        b.iter(|| black_box(point(Engine::Reference)))
    });
    g.bench_function("fast", |b| b.iter(|| black_box(point(Engine::Fast))));
    g.finish();
}

/// Trace-overhead tiers on the same Fig. 2 point. A [`NullSink`] handle now
/// collapses to the disabled tier at construction, so both arms must be
/// indistinguishable: one predictable branch per emission site, no
/// per-packet `TraceEvent` construction, no lock, no virtual call. The
/// assertion group below pins the structural half of that claim.
fn bench_trace_overhead(c: &mut Criterion) {
    let cfg = ScenarioConfig::tiny();
    let point = |trace: TraceHandle| {
        run_scenario_once_traced(
            &cfg,
            Transport::Dctcp,
            QueueKind::SimpleMarking,
            BufferDepth::Shallow,
            SimDuration::from_micros(500),
            Engine::Fast,
            trace,
        )
    };
    let mut g = c.benchmark_group("fig2_point_trace");
    g.sample_size(10);
    g.bench_function("untraced", |b| {
        b.iter(|| black_box(point(TraceHandle::null())))
    });
    g.bench_function("null_sink", |b| {
        b.iter(|| black_box(point(TraceHandle::new(Box::new(NullSink)))))
    });
    g.finish();
}

/// Assertion group for the zero-cost claim: a `NullSink` handle IS the
/// disabled tier. If this regresses (someone re-enables the recorder path
/// for discard sinks), every per-packet emission site in the batched
/// dequeue path silently starts building `TraceEvent`s again — a perf bug
/// no timing bench reliably catches, so it is pinned structurally here.
fn assert_null_sink_is_free(c: &mut Criterion) {
    let h = TraceHandle::new(Box::new(NullSink));
    assert!(
        !h.is_enabled(),
        "NullSink handle must collapse to the disabled tier"
    );
    let mut g = c.benchmark_group("trace_null_zero_cost");
    g.sample_size(10);
    g.bench_function("emission_site_guard", |b| {
        // The whole per-packet cost of the NullSink tier: one branch.
        b.iter(|| black_box(black_box(&h).is_enabled()))
    });
    g.finish();
}

criterion_group!(
    kernel,
    bench_backends,
    bench_engines,
    bench_trace_overhead,
    assert_null_sink_is_free
);
criterion_main!(kernel);
