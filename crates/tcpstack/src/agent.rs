//! The reactive-endpoint interface the network layer drives.

use netpacket::{FlowId, Packet};
use simevent::SimTime;

/// A TCP endpoint as seen by the network layer.
///
/// The contract: the network layer calls [`TcpAgent::on_segment`] for every
/// delivered packet addressed to this endpoint, calls [`TcpAgent::on_timer`]
/// at (or after) the instant reported by [`TcpAgent::next_deadline`], and
/// drains [`TcpAgent::take_outbox`] after every call. Endpoints never block
/// and never touch the event queue directly.
pub trait TcpAgent: std::fmt::Debug + Send {
    /// The connection this endpoint belongs to.
    fn flow(&self) -> FlowId;

    /// Deliver a segment addressed to this endpoint.
    fn on_segment(&mut self, pkt: &Packet, now: SimTime);

    /// Fire timers. Robust to spurious calls: the endpoint re-checks its own
    /// deadlines and does nothing if none has expired.
    fn on_timer(&mut self, now: SimTime);

    /// Earliest instant at which `on_timer` must be called, if any.
    fn next_deadline(&self) -> Option<SimTime>;

    /// Drain packets the endpoint wants transmitted.
    fn take_outbox(&mut self) -> Vec<Packet>;

    /// Drain pending packets into `out` without surrendering the outbox's
    /// allocation. The default falls back to [`TcpAgent::take_outbox`];
    /// concrete endpoints override it so the per-packet hot path never
    /// allocates.
    fn drain_outbox_into(&mut self, out: &mut Vec<Packet>) {
        out.append(&mut self.take_outbox());
    }

    /// True when this endpoint's job is done (sender: all data acked).
    fn is_complete(&self) -> bool;
}
