//! Calibration probe: absolute (un-normalised) metrics for a handful of
//! configurations. Used while sizing the default scenario so the paper's
//! steady-state shapes emerge (job runtime must dwarf individual RTO
//! stalls); kept as a diagnostic.
//!
//! Usage: `cargo run --release -p experiments --example calibrate -- [MB_per_node] [shallow_pkts] [waves]`

use ecn_core::ProtectionMode;
use experiments::scenario::*;
use simevent::SimDuration;

fn main() {
    let mut cfg = ScenarioConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(mb) = args.first() {
        cfg.input_bytes_per_node = mb.parse::<u64>().unwrap() * 1_000_000;
    }
    if let Some(sh) = args.get(1) {
        cfg.shallow_packets = sh.parse().unwrap();
    }
    if let Some(w) = args.get(2) {
        cfg.map_waves = w.parse().unwrap();
    }
    println!(
        "cluster: {} hosts, input {} MB/node, waves {}, shallow {} deep {}",
        cfg.hosts(),
        cfg.input_bytes_per_node / 1_000_000,
        cfg.map_waves,
        cfg.shallow_packets,
        cfg.deep_packets
    );
    let points = [
        (
            "droptail  shallow tcp    ",
            Transport::Tcp,
            QueueKind::DropTail,
            BufferDepth::Shallow,
            500,
        ),
        (
            "droptail  deep    tcp    ",
            Transport::Tcp,
            QueueKind::DropTail,
            BufferDepth::Deep,
            500,
        ),
        (
            "red-def   shallow tcp-ecn",
            Transport::TcpEcn,
            QueueKind::Red(ProtectionMode::Default),
            BufferDepth::Shallow,
            100,
        ),
        (
            "red-def   shallow tcp-ecn",
            Transport::TcpEcn,
            QueueKind::Red(ProtectionMode::Default),
            BufferDepth::Shallow,
            500,
        ),
        (
            "red-ece   shallow tcp-ecn",
            Transport::TcpEcn,
            QueueKind::Red(ProtectionMode::EceBit),
            BufferDepth::Shallow,
            500,
        ),
        (
            "red-as    shallow tcp-ecn",
            Transport::TcpEcn,
            QueueKind::Red(ProtectionMode::AckSyn),
            BufferDepth::Shallow,
            500,
        ),
        (
            "red-as    shallow dctcp  ",
            Transport::Dctcp,
            QueueKind::Red(ProtectionMode::AckSyn),
            BufferDepth::Shallow,
            500,
        ),
        (
            "marking   shallow tcp-ecn",
            Transport::TcpEcn,
            QueueKind::SimpleMarking,
            BufferDepth::Shallow,
            500,
        ),
        (
            "marking   shallow dctcp  ",
            Transport::Dctcp,
            QueueKind::SimpleMarking,
            BufferDepth::Shallow,
            500,
        ),
        (
            "marking   shallow dctcp 2m",
            Transport::Dctcp,
            QueueKind::SimpleMarking,
            BufferDepth::Shallow,
            2000,
        ),
        (
            "marking   shallow ecn  2m",
            Transport::TcpEcn,
            QueueKind::SimpleMarking,
            BufferDepth::Shallow,
            2000,
        ),
        (
            "red-as    shallow ecn  2m",
            Transport::TcpEcn,
            QueueKind::Red(ProtectionMode::AckSyn),
            BufferDepth::Shallow,
            2000,
        ),
        (
            "marking   deep    dctcp  ",
            Transport::Dctcp,
            QueueKind::SimpleMarking,
            BufferDepth::Deep,
            500,
        ),
    ];
    println!(
        "{:<28} {:>6} {:>9} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "config",
        "dly",
        "runtime",
        "tput/nd",
        "lat_mean",
        "ackdrop",
        "timeout",
        "synrtx",
        "fulldrop"
    );
    for (label, t, q, d, dly) in points {
        let m = run_scenario(&cfg, t, q, d, SimDuration::from_micros(dly));
        println!(
            "{:<28} {:>4}us {:>8.3}s {:>9.1}M {:>9.1}us {:>8} {:>8} {:>8} {:>8}{}",
            label,
            dly,
            m.runtime_s,
            m.throughput_per_node_bps / 1e6,
            m.mean_latency_s * 1e6,
            m.acks_early_dropped,
            m.timeouts,
            m.syn_retransmits,
            m.full_drops,
            if m.completed { "" } else { "  [INCOMPLETE]" },
        );
    }
}
