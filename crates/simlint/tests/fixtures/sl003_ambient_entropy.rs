// Fixture: SL003 — ambient entropy (workspace-wide, even in experiments).

pub fn bad_seed() -> u64 {
    let mut rng = rand::thread_rng(); // SL003
    rng.gen()
}

pub fn bad_init() {
    let _rng = SmallRng::from_entropy(); // SL003
}

pub fn fine(seed: u64) {
    let _rng = SimRng::seed_from_u64(seed); // explicit seed: allowed
}
