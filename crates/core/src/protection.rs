//! The paper's non-ECT protection modes (§II-B / §III).

use netpacket::{Packet, PacketKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which non-ECT packets an ECN-enabled AQM exempts from early drop.
///
/// The paper evaluates exactly three behaviours (§III, bullet list):
///
/// * **Default** — "protects only ECT-capable packets": every non-ECT packet
///   that the AQM selects for congestion notification is early-dropped. This
///   is what stock RED/ECN implementations do and what breaks Hadoop.
/// * **EceBit** — additionally "protects ... packets which have ECE-bit set on
///   their TCP header (SYN, SYN-ACK and a proportion of ACKs)" — proposal 1.
/// * **AckSyn** — additionally protects "ECT-capable, SYN, SYN-ACKs, and
///   finally all ACK packets, irrespective of whether or not they have the
///   ECE-bit set".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ProtectionMode {
    /// Stock AQM behaviour: only ECT packets escape early drop (by being
    /// marked instead).
    #[default]
    Default,
    /// Paper proposal 1: never early-drop packets carrying the TCP ECE flag.
    EceBit,
    /// Strongest mode: never early-drop pure ACKs, SYNs or SYN-ACKs.
    AckSyn,
}

impl ProtectionMode {
    /// Does this mode exempt `packet` from an early drop?
    ///
    /// Only consulted for packets the AQM has already decided to "notify";
    /// ECT packets never reach this predicate (they are marked instead).
    pub fn protects(self, packet: &Packet) -> bool {
        match self {
            ProtectionMode::Default => false,
            // SYN and SYN-ACK carry ECE whenever ECN is negotiated, so the
            // ECE predicate covers them plus congestion-echo ACKs.
            ProtectionMode::EceBit => packet.has_ece(),
            ProtectionMode::AckSyn => matches!(
                PacketKind::of(packet),
                PacketKind::PureAck | PacketKind::Syn | PacketKind::SynAck
            ),
        }
    }

    /// All modes, in the order the paper lists them.
    pub const ALL: [ProtectionMode; 3] = [
        ProtectionMode::Default,
        ProtectionMode::EceBit,
        ProtectionMode::AckSyn,
    ];

    /// Short label used in figure legends.
    pub fn label(self) -> &'static str {
        match self {
            ProtectionMode::Default => "default",
            ProtectionMode::EceBit => "ece-bit",
            ProtectionMode::AckSyn => "ack+syn",
        }
    }
}

impl fmt::Display for ProtectionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpacket::{EcnCodepoint, FlowId, NodeId, PacketId, TcpFlags};
    use simevent::SimTime;

    fn pkt(flags: TcpFlags, payload: u32) -> Packet {
        Packet {
            id: PacketId(0),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload,
            flags,
            ecn: EcnCodepoint::NotEct,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn default_protects_nothing() {
        let m = ProtectionMode::Default;
        assert!(!m.protects(&pkt(TcpFlags::ACK, 0)));
        assert!(!m.protects(&pkt(TcpFlags::ACK | TcpFlags::ECE, 0)));
        assert!(!m.protects(&pkt(TcpFlags::ecn_setup_syn(), 0)));
    }

    #[test]
    fn ece_bit_protects_ece_carriers_only() {
        let m = ProtectionMode::EceBit;
        // ECN-negotiating SYN and SYN-ACK carry ECE -> protected.
        assert!(m.protects(&pkt(TcpFlags::ecn_setup_syn(), 0)));
        assert!(m.protects(&pkt(TcpFlags::ecn_setup_syn_ack(), 0)));
        // ACK echoing congestion -> protected.
        assert!(m.protects(&pkt(TcpFlags::ACK | TcpFlags::ECE, 0)));
        // Plain ACK without ECE -> NOT protected (the residual problem the
        // paper measures between its two proposals).
        assert!(!m.protects(&pkt(TcpFlags::ACK, 0)));
        // Non-ECN SYN (no ECE) -> not protected.
        assert!(!m.protects(&pkt(TcpFlags::SYN, 0)));
    }

    #[test]
    fn ack_syn_protects_all_control() {
        let m = ProtectionMode::AckSyn;
        assert!(
            m.protects(&pkt(TcpFlags::ACK, 0)),
            "all pure ACKs protected"
        );
        assert!(m.protects(&pkt(TcpFlags::ACK | TcpFlags::ECE, 0)));
        assert!(m.protects(&pkt(TcpFlags::SYN, 0)));
        assert!(m.protects(&pkt(TcpFlags::ecn_setup_syn(), 0)));
        assert!(m.protects(&pkt(TcpFlags::SYN | TcpFlags::ACK, 0)));
        // Data and FIN are not in the protected set.
        assert!(!m.protects(&pkt(TcpFlags::ACK, 1460)));
        assert!(!m.protects(&pkt(TcpFlags::FIN | TcpFlags::ACK, 0)));
    }

    /// AckSyn's protected set is a superset of EceBit's (restricted to the
    /// pure-ACK/SYN classes the paper discusses).
    #[test]
    fn ack_syn_superset_of_ece_bit_on_control_packets() {
        for flags in [
            TcpFlags::ACK,
            TcpFlags::ACK | TcpFlags::ECE,
            TcpFlags::SYN,
            TcpFlags::ecn_setup_syn(),
            TcpFlags::ecn_setup_syn_ack(),
        ] {
            let p = pkt(flags, 0);
            if ProtectionMode::EceBit.protects(&p) {
                assert!(ProtectionMode::AckSyn.protects(&p), "{flags}");
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(ProtectionMode::Default.to_string(), "default");
        assert_eq!(ProtectionMode::EceBit.to_string(), "ece-bit");
        assert_eq!(ProtectionMode::AckSyn.to_string(), "ack+syn");
    }
}
