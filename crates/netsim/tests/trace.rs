//! Integration tests of packet-lifecycle tracing wired through the full
//! network substrate: queue registration, event emission from switch ports
//! and host NICs, sender-side events, QueueDepth samples, and the invariant
//! that attaching a trace never changes simulation behaviour.

use ecn_core::{ProtectionMode, QdiscSpec, RedConfig};
use netpacket::NodeId;
use netsim::{ClusterSpec, LinkSpec, Network, Simulation, StaticFlows};
use simevent::{SimDuration, SimTime};
use simtrace::{EventKind, RingSink, TraceEvent, TraceHandle};
use tcpstack::{EcnMode, TcpConfig};

fn red_cluster(seed: u64) -> ClusterSpec {
    ClusterSpec {
        racks: 1,
        hosts_per_rack: 4,
        host_link: LinkSpec::gbps(1, 5),
        uplink: LinkSpec::gbps(10, 5),
        switch_qdisc: QdiscSpec::Red(RedConfig {
            capacity_packets: 30,
            min_th: 5,
            max_th: 15,
            max_p: 0.1,
            ewma_weight: 1.0,
            byte_mode: false,
            mean_packet_bytes: 1500,
            ecn: true,
            protection: ProtectionMode::Default,
            gentle: false,
        }),
        host_buffer_packets: 2000,
        seed,
    }
}

fn traced_run(seed: u64) -> (Network, Vec<TraceEvent>) {
    let mut net = Network::new(red_cluster(seed));
    let trace = TraceHandle::new(Box::new(RingSink::new(1 << 20)));
    net.set_trace(trace.clone());
    net.enable_queue_trace(0, 0, SimDuration::from_micros(100), 10_000);
    let pairs: Vec<_> = (1..4).map(|i| (NodeId(i), NodeId(0), 300_000)).collect();
    let app = StaticFlows::all_at_zero(pairs, TcpConfig::with_ecn(EcnMode::Dctcp));
    let mut sim = Simulation::new(net, app);
    sim.time_limit = SimTime::from_secs(60);
    let report = sim.run();
    assert!(report.app_done, "traced run must complete: {report:?}");
    let events = trace.drain_events();
    (sim.net, events)
}

#[test]
fn traced_run_emits_full_lifecycle() {
    let (net, events) = traced_run(11);
    assert!(!events.is_empty());

    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count() as u64;
    // Every event stream a completed incast must contain.
    assert!(count(EventKind::Enqueued) > 0);
    assert!(count(EventKind::Dequeued) > 0);
    assert!(count(EventKind::Marked) > 0, "DCTCP through RED must mark");
    assert!(count(EventKind::QueueDepth) > 0, "sampler must emit depths");
    // Three flows, each SynSent -> Established -> Complete.
    assert_eq!(count(EventKind::StateTransition), 6);

    // Per-queue conservation as seen purely through the trace: everything
    // enqueued on a queue was dequeued (the run drained to completion).
    let qids: std::collections::BTreeSet<u32> = events
        .iter()
        .filter(|e| e.kind == EventKind::Enqueued)
        .map(|e| e.queue)
        .collect();
    assert!(qids.len() >= 4, "host NICs and switch ports must all trace");
    for q in qids {
        let enq = events
            .iter()
            .filter(|e| e.kind == EventKind::Enqueued && e.queue == q)
            .count();
        let deq = events
            .iter()
            .filter(|e| e.kind == EventKind::Dequeued && e.queue == q)
            .count();
        assert_eq!(enq, deq, "queue {q} did not drain in the trace");
    }

    // The trace agrees with the aggregate counters the switch ports kept.
    let stats = net.port_stats().total;
    let switch_enq: u64 = events
        .iter()
        // Host NICs registered first: ids 0..4 are NICs, 4.. are switch ports.
        .filter(|e| e.kind == EventKind::Enqueued && e.queue >= 4)
        .count() as u64;
    assert_eq!(switch_enq, stats.enqueued.total());
    assert_eq!(count(EventKind::Marked), stats.marked.total());

    // Events are emitted in nondecreasing simulated-time order.
    assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
}

#[test]
fn same_seed_traced_runs_are_identical() {
    let (_, a) = traced_run(21);
    let (_, b) = traced_run(21);
    assert_eq!(a, b, "same-seed traces must match event-for-event");
}

#[test]
fn attaching_a_trace_never_changes_the_simulation() {
    let (traced_net, _) = traced_run(31);

    // Identical scenario with no trace attached at all.
    let mut net = Network::new(red_cluster(31));
    net.enable_queue_trace(0, 0, SimDuration::from_micros(100), 10_000);
    let pairs: Vec<_> = (1..4).map(|i| (NodeId(i), NodeId(0), 300_000)).collect();
    let app = StaticFlows::all_at_zero(pairs, TcpConfig::with_ecn(EcnMode::Dctcp));
    let mut sim = Simulation::new(net, app);
    sim.time_limit = SimTime::from_secs(60);
    let report = sim.run();
    assert!(report.app_done);

    assert_eq!(
        traced_net.last_completion(),
        sim.net.last_completion(),
        "tracing perturbed the schedule"
    );
    let (a, b) = (traced_net.port_stats().total, sim.net.port_stats().total);
    assert_eq!(a.enqueued.total(), b.enqueued.total());
    assert_eq!(a.marked.total(), b.marked.total());
    assert_eq!(a.dropped_early.total(), b.dropped_early.total());
    assert_eq!(a.dropped_full.total(), b.dropped_full.total());
    let (sa, sb) = (
        traced_net.sender_stats_total(),
        sim.net.sender_stats_total(),
    );
    assert_eq!(sa.retransmits, sb.retransmits);
    assert_eq!(sa.ecn_reductions, sb.ecn_reductions);
}
