//! Property tests tying every [`EnqueueOutcome`] a discipline returns to the
//! trace events it emits: for arbitrary packet streams, each enqueue decision
//! must produce a matching `simtrace` event carrying the identical packet id
//! and classified kind — the tracing layer records decisions, it never
//! invents or loses them.

use ecn_core::{
    build_qdisc, CoDelConfig, CurvyRedConfig, DualQConfig, PieConfig, ProtectionMode, QdiscSpec,
    RedConfig, SimpleMarkingConfig,
};
use netpacket::{EcnCodepoint, FlowId, NodeId, Packet, PacketId, PacketKind, SackBlocks, TcpFlags};
use proptest::prelude::*;
use simevent::{SimDuration, SimTime};
use simtrace::{EventKind, RingSink, TraceEvent, TraceHandle};

fn packet(id: u64, bits: u8, payload: u32, ecn: EcnCodepoint) -> Packet {
    Packet {
        id: PacketId(id),
        flow: FlowId(3),
        src: NodeId(0),
        dst: NodeId(1),
        seq: 0,
        ack: 0,
        payload,
        flags: TcpFlags::from_bits(bits),
        ecn,
        sack: SackBlocks::EMPTY,
        sent_at: SimTime::ZERO,
    }
}

fn codepoint(i: u8) -> EcnCodepoint {
    match i % 4 {
        0 => EcnCodepoint::NotEct,
        1 => EcnCodepoint::Ect0,
        2 => EcnCodepoint::Ect1,
        _ => EcnCodepoint::Ce,
    }
}

/// The seven disciplines under small configs that exercise marking, early
/// drops and tail drops within a short stream.
fn specs() -> Vec<QdiscSpec> {
    vec![
        QdiscSpec::DropTail {
            capacity_packets: 8,
        },
        QdiscSpec::Red(RedConfig {
            capacity_packets: 8,
            min_th: 2,
            max_th: 4,
            max_p: 1.0,
            ewma_weight: 1.0,
            byte_mode: false,
            mean_packet_bytes: 1500,
            ecn: true,
            protection: ProtectionMode::Default,
            gentle: true,
        }),
        QdiscSpec::SimpleMarking(SimpleMarkingConfig {
            capacity_packets: 8,
            threshold_packets: 2,
        }),
        QdiscSpec::CoDel(CoDelConfig {
            capacity_packets: 8,
            target: SimDuration::from_nanos(50),
            interval: SimDuration::from_nanos(200),
            ecn: true,
            protection: ProtectionMode::Default,
        }),
        QdiscSpec::CurvyRed(CurvyRedConfig {
            capacity_packets: 8,
            range_packets: 4,
            mark_exponent: 2,
            ecn: true,
            protection: ProtectionMode::Default,
        }),
        QdiscSpec::Pie(PieConfig {
            capacity_packets: 8,
            target: SimDuration::from_nanos(50),
            t_update: SimDuration::from_nanos(100),
            alpha: 1e8,
            beta: 2e8,
            max_burst: SimDuration::from_nanos(100),
            mark_ecnth: 0.5,
            dq_threshold_bytes: 3000,
            ecn: true,
            protection: ProtectionMode::Default,
        }),
        QdiscSpec::DualQ(DualQConfig {
            capacity_packets: 8,
            target: SimDuration::from_nanos(100),
            t_update: SimDuration::from_nanos(100),
            alpha: 1e8,
            beta: 2e8,
            coupling: 2.0,
            step_threshold: SimDuration::from_nanos(50),
            t_shift: SimDuration::from_nanos(200),
            protection: ProtectionMode::Default,
        }),
    ]
}

/// Does `events` (the events emitted by one enqueue call) match `outcome`
/// for packet `id` of kind `kind`?
fn outcome_matches(
    events: &[TraceEvent],
    outcome: netpacket::EnqueueOutcome,
    id: u64,
    kind: PacketKind,
) -> Result<(), String> {
    use netpacket::EnqueueOutcome::*;
    let has = |k: EventKind| {
        events
            .iter()
            .any(|e| e.kind == k && e.packet == id && e.pkind == kind.index() as u8)
    };
    let expect = |cond: bool, what: &str| {
        if cond {
            Ok(())
        } else {
            Err(format!(
                "outcome {outcome:?} for pkt {id} ({kind}) lacks/mismatches {what}: {events:?}"
            ))
        }
    };
    match outcome {
        Enqueued => {
            expect(has(EventKind::Enqueued), "Enqueued event")?;
            expect(!has(EventKind::Marked), "no Marked event")
        }
        EnqueuedMarked => {
            expect(has(EventKind::Enqueued), "Enqueued event")?;
            expect(has(EventKind::Marked), "Marked event")
        }
        DroppedEarly => {
            expect(has(EventKind::DroppedEarly), "DroppedEarly event")?;
            expect(!has(EventKind::Enqueued), "no Enqueued event")
        }
        DroppedFull => {
            expect(has(EventKind::DroppedFull), "DroppedFull event")?;
            expect(!has(EventKind::Enqueued), "no Enqueued event")
        }
    }
}

proptest! {
    /// Every enqueue outcome from every discipline is mirrored by a trace
    /// event with the same packet id and kind (and accepted/marked/dropped
    /// shape), under arbitrary flag/payload/codepoint streams with
    /// interleaved dequeues.
    #[test]
    fn every_outcome_has_a_matching_trace_event(seed in 0u64..=1000) {
        for spec in specs() {
            let mut q = build_qdisc(&spec, 42);
            let trace = TraceHandle::new(Box::new(RingSink::new(4096)));
            q.set_trace(trace.clone(), 7);
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for i in 0..300u64 {
                let r = next();
                let bits = (r & 0xFF) as u8;
                let payload = if r & 0x100 != 0 { 1460 } else { 0 };
                let ecn = codepoint(((r >> 9) & 3) as u8);
                let now = SimTime::from_nanos(i * 40);
                // Interleaved dequeues (their events are drained and ignored
                // here; CoDel's dequeue-time drops are covered by its own
                // unit tests).
                if r & 0x600 == 0x600 {
                    let _ = q.dequeue(now);
                }
                let _ = trace.drain_events();
                let p = packet(i, bits, payload, ecn);
                let kind = PacketKind::of(&p);
                let outcome = q.enqueue(p, now);
                let events = trace.drain_events();
                if let Err(msg) = outcome_matches(&events, outcome, i, kind) {
                    prop_assert!(false, "{} [{}]", msg, q.name());
                }
            }
        }
    }

    /// With the null handle attached (the disabled tier), disciplines emit
    /// nothing and make identical decisions to an untraced twin.
    #[test]
    fn null_handle_changes_nothing(seed in 0u64..=200) {
        for spec in specs() {
            let mut traced = build_qdisc(&spec, 9);
            let mut plain = build_qdisc(&spec, 9);
            traced.set_trace(TraceHandle::null(), 1);
            let mut x = seed.wrapping_add(7);
            for i in 0..200u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let bits = (x >> 33) as u8;
                let payload = if x & 1 == 0 { 1460 } else { 0 };
                let ecn = codepoint((x >> 41) as u8);
                let now = SimTime::from_nanos(i * 40);
                let a = traced.enqueue(packet(i, bits, payload, ecn), now);
                let b = plain.enqueue(packet(i, bits, payload, ecn), now);
                prop_assert_eq!(a, b, "decision diverged under null trace [{}]", traced.name());
                if x & 6 == 6 {
                    let da = traced.dequeue(now);
                    let db = plain.dequeue(now);
                    prop_assert_eq!(da.map(|p| p.id), db.map(|p| p.id));
                }
            }
        }
    }
}
