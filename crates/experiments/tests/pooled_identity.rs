//! Property: `Network::set_reference_mode` changes the *cost model*, never
//! the simulation. The reference path (seed Box-per-packet allocation,
//! full-scan flush/timer bookkeeping, binary-heap scheduler via
//! `run_reference`) and the pooled fast path (arena handles, SoA flow
//! columns, deadline heap, hybrid scheduler) must produce byte-identical
//! metrics JSON and a byte-identical packet-lifecycle trace on every
//! fig2-shallow point — across transports, queue disciplines, congestion
//! controllers, target delays and seeds.

use ecn_core::ProtectionMode;
use experiments::scenario::{
    run_scenario_once_traced, BufferDepth, Engine, QueueKind, ScenarioConfig, Transport,
};
use proptest::prelude::*;
use simevent::SimDuration;
use simtrace::{RingSink, TraceHandle};
use tcpstack::CcAlg;

/// One traced tiny-scenario run: returns the metrics serialized exactly as
/// report JSON would embed them, plus the trace as JSONL.
fn run_point(
    engine: Engine,
    seed: u64,
    transport: Transport,
    queue: QueueKind,
    cc: Option<CcAlg>,
    delay_us: u64,
) -> (String, String) {
    let mut cfg = ScenarioConfig::tiny();
    cfg.seed = seed;
    cfg.cc = cc;
    let trace = TraceHandle::new(Box::new(RingSink::new(1 << 16)));
    let (m, _report) = run_scenario_once_traced(
        &cfg,
        transport,
        queue,
        BufferDepth::Shallow,
        SimDuration::from_micros(delay_us),
        engine,
        trace.clone(),
    );
    let json = serde_json::to_string(&m).expect("metrics serialize");
    let jsonl = trace
        .drain_events()
        .iter()
        .map(|e| e.to_jsonl())
        .collect::<Vec<_>>()
        .join("\n");
    (json, jsonl)
}

proptest! {
    // Each case runs two full (tiny) cluster simulations; a handful of
    // cases keeps the suite fast while still sampling every transport and
    // queue discipline over time.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn pooled_and_reference_paths_are_byte_identical(
        seed in 1u64..=1_000_000,
        pick in 0usize..27,
        cc_pick in 0usize..6,
        delay_us in 200u64..=900,
    ) {
        let transports = [Transport::Tcp, Transport::TcpEcn, Transport::Dctcp];
        let queues = [
            QueueKind::DropTail,
            QueueKind::Red(ProtectionMode::Default),
            QueueKind::Red(ProtectionMode::AckSyn),
            QueueKind::RedMimic(ProtectionMode::AckSyn),
            QueueKind::SimpleMarking,
            QueueKind::CoDel(ProtectionMode::AckSyn),
            QueueKind::CurvyRed(ProtectionMode::AckSyn),
            QueueKind::Pie(ProtectionMode::AckSyn),
            QueueKind::DualQ(ProtectionMode::AckSyn),
        ];
        let transport = transports[pick / 9];
        let queue = queues[pick % 9];
        // 0 keeps the transport's native controller pairing; 1..=5 override
        // with each simcc controller, exactly what `--cc` does.
        let cc = (cc_pick > 0).then(|| CcAlg::ALL[cc_pick - 1]);
        let (fast_json, fast_trace) = run_point(Engine::Fast, seed, transport, queue, cc, delay_us);
        let (ref_json, ref_trace) = run_point(Engine::Reference, seed, transport, queue, cc, delay_us);
        prop_assert_eq!(fast_json, ref_json);
        prop_assert_eq!(fast_trace, ref_trace);
    }
}
