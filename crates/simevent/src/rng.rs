//! Seedable RNG plumbing for reproducible stochastic components.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random number generator for simulation components.
///
/// Wraps `SmallRng` (xoshiro-family) seeded explicitly; two `SimRng`s built
/// from the same seed produce identical streams on every platform we target.
/// Components that need independent streams derive children with
/// [`SimRng::fork`], which mixes a label into the parent seed so streams stay
/// decoupled even if the parent is used in a different order between runs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// The child's seed depends only on the parent seed and the label, not on
    /// how much the parent stream has been consumed.
    pub fn fork(&self, label: u64) -> SimRng {
        // SplitMix64 finaliser: good avalanche, cheap, stable across versions.
        let mut z = self.seed ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Exponentially distributed value with the given mean. Used for e.g.
    /// probe inter-arrival times. Mean of zero yields zero.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean >= 0.0 && mean.is_finite(),
            "mean must be finite and non-negative"
        );
        if mean == 0.0 {
            return 0.0;
        }
        // Inverse-CDF; guard the log away from 0 to stay finite.
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(12345);
        let mut b = SimRng::new(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_f64().to_bits(), b.next_f64().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_f64() == b.next_f64()).count();
        assert!(same < 5, "streams should be effectively independent");
    }

    #[test]
    fn fork_is_order_independent() {
        let parent = SimRng::new(777);
        let mut c1 = parent.fork(10);
        // Consume the parent-equivalent in a different order; fork must not care.
        let mut p2 = SimRng::new(777);
        let _ = p2.next_f64();
        let mut c2 = p2.fork(10);
        for _ in 0..100 {
            assert_eq!(c1.next_f64().to_bits(), c2.next_f64().to_bits());
        }
    }

    #[test]
    fn fork_labels_are_independent() {
        let parent = SimRng::new(9);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..100).filter(|_| a.next_f64() == b.next_f64()).count();
        assert!(same < 5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(4);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(6);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean = {mean}");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements should not stay sorted"
        );
    }
}
