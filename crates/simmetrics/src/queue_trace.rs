//! Queue-occupancy time series with packet-kind composition (paper Fig. 1).

use netpacket::PacketKind;
use serde::{Deserialize, Serialize};
use simevent::SimTime;

/// One snapshot of a queue: when, how full, and what it is full *of*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueSample {
    /// Sample instant.
    pub at: SimTime,
    /// Resident packets, total.
    pub len_packets: u64,
    /// Resident bytes.
    pub len_bytes: u64,
    /// Resident packets by kind (indexed by `PacketKind::index()`).
    pub by_kind: [u64; 6],
}

impl QueueSample {
    /// Count of resident packets of one kind.
    pub fn kind(&self, k: PacketKind) -> u64 {
        self.by_kind[k.index()]
    }

    /// Fraction of resident packets that are data (the paper's Fig. 1 shows a
    /// queue dominated by ECT data with ACKs squeezed out).
    pub fn data_fraction(&self) -> f64 {
        if self.len_packets == 0 {
            return 0.0;
        }
        self.kind(PacketKind::Data) as f64 / self.len_packets as f64
    }
}

/// A bounded trace of queue snapshots taken at a fixed sampling interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueTrace {
    samples: Vec<QueueSample>,
    max_samples: usize,
    /// Running peak occupancy over the whole run (kept even when samples are
    /// capped).
    peak_packets: u64,
}

impl QueueTrace {
    /// A trace holding at most `max_samples` snapshots (older ones are kept,
    /// further ones dropped — experiments size this to cover the run).
    pub fn new(max_samples: usize) -> Self {
        QueueTrace {
            samples: Vec::new(),
            max_samples,
            peak_packets: 0,
        }
    }

    /// Record a snapshot.
    pub fn record(&mut self, sample: QueueSample) {
        self.peak_packets = self.peak_packets.max(sample.len_packets);
        if self.samples.len() < self.max_samples {
            self.samples.push(sample);
        }
    }

    /// The recorded snapshots, in time order.
    pub fn samples(&self) -> &[QueueSample] {
        &self.samples
    }

    /// Peak packet occupancy observed (including beyond the sample cap).
    pub fn peak_packets(&self) -> u64 {
        self.peak_packets
    }

    /// Mean packet occupancy over the recorded samples.
    pub fn mean_packets(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.len_packets).sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Render the trace as CSV: `time_us,total,data,ack,syn,syn_ack,fin,other`.
    /// One row per sample — ready for external plotting of the paper's Fig. 1.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_us,total_packets,data,ack,syn,syn_ack,fin,other\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.3},{},{},{},{},{},{},{}\n",
                s.at.as_micros_f64(),
                s.len_packets,
                s.by_kind[PacketKind::Data.index()],
                s.by_kind[PacketKind::PureAck.index()],
                s.by_kind[PacketKind::Syn.index()],
                s.by_kind[PacketKind::SynAck.index()],
                s.by_kind[PacketKind::Fin.index()],
                s.by_kind[PacketKind::Other.index()],
            ));
        }
        out
    }

    /// Mean packet occupancy over non-empty samples only ("while busy").
    pub fn mean_nonempty_packets(&self) -> f64 {
        let non_empty: Vec<u64> = self
            .samples
            .iter()
            .map(|s| s.len_packets)
            .filter(|&l| l > 0)
            .collect();
        if non_empty.is_empty() {
            return 0.0;
        }
        non_empty.iter().sum::<u64>() as f64 / non_empty.len() as f64
    }

    /// Mean fraction of occupancy that is data packets, over non-empty samples.
    pub fn mean_data_fraction(&self) -> f64 {
        let non_empty: Vec<_> = self.samples.iter().filter(|s| s.len_packets > 0).collect();
        if non_empty.is_empty() {
            return 0.0;
        }
        non_empty.iter().map(|s| s.data_fraction()).sum::<f64>() / non_empty.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_us: u64, data: u64, acks: u64) -> QueueSample {
        let mut by_kind = [0u64; 6];
        by_kind[PacketKind::Data.index()] = data;
        by_kind[PacketKind::PureAck.index()] = acks;
        QueueSample {
            at: SimTime::from_micros(at_us),
            len_packets: data + acks,
            len_bytes: data * 1526 + acks * 150,
            by_kind,
        }
    }

    #[test]
    fn composition_accessors() {
        let s = sample(1, 90, 10);
        assert_eq!(s.kind(PacketKind::Data), 90);
        assert_eq!(s.kind(PacketKind::PureAck), 10);
        assert!((s.data_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_fraction_zero() {
        let s = sample(1, 0, 0);
        assert_eq!(s.data_fraction(), 0.0);
    }

    #[test]
    fn trace_caps_but_tracks_peak() {
        let mut t = QueueTrace::new(2);
        t.record(sample(1, 5, 0));
        t.record(sample(2, 10, 0));
        t.record(sample(3, 100, 0)); // beyond cap, but peak still counted
        assert_eq!(t.samples().len(), 2);
        assert_eq!(t.peak_packets(), 100);
    }

    #[test]
    fn means() {
        let mut t = QueueTrace::new(10);
        t.record(sample(1, 8, 2));
        t.record(sample(2, 6, 4));
        t.record(sample(3, 0, 0)); // empty sample excluded from data fraction
        assert!((t.mean_packets() - 20.0 / 3.0).abs() < 1e-9);
        assert!((t.mean_data_fraction() - (0.8 + 0.6) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn csv_rendering() {
        let mut t = QueueTrace::new(10);
        t.record(sample(3, 7, 2));
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "time_us,total_packets,data,ack,syn,syn_ack,fin,other"
        );
        assert_eq!(lines.next().unwrap(), "3.000,9,7,2,0,0,0,0");
        assert!(lines.next().is_none());
    }

    #[test]
    fn empty_trace() {
        let t = QueueTrace::new(4);
        assert_eq!(t.mean_packets(), 0.0);
        assert_eq!(t.mean_data_fraction(), 0.0);
        assert_eq!(t.peak_packets(), 0);
    }
}
