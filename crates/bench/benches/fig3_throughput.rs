//! Figure 3 (cluster throughput per node): one nano-scale point per series
//! per depth at an aggressive 100 µs target delay, where the paper reports
//! the ACK+SYN throughput boost. Prints the regenerated metric.

use bench::{figure_series, nano_point};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::scenario::BufferDepth;

fn bench_fig3(c: &mut Criterion) {
    for depth in BufferDepth::ALL {
        let mut g = c.benchmark_group(format!("fig3_throughput_{}", depth.label()));
        g.sample_size(10);
        for (name, transport, queue) in figure_series() {
            let m = nano_point(transport, queue, depth, 100);
            println!(
                "[fig3 {} @nano] {name}: {:.1} Mbit/s per node",
                depth.label(),
                m.throughput_per_node_bps / 1e6
            );
            g.bench_function(name, |b| {
                b.iter(|| nano_point(transport, queue, depth, 100).throughput_per_node_bps)
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
