//! Offline stand-in for `rayon`.
//!
//! Implements the two entry points this workspace uses — [`join`] and
//! `Vec::into_par_iter().map(..).collect()` — on top of `std::thread::scope`.
//! Work is split into one contiguous chunk per available core and results are
//! reassembled in input order, so `collect` is deterministic regardless of
//! scheduling. On a single-core host everything degrades to the sequential
//! path with no thread spawns.

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`] for the
    /// duration of a scope. `None` means "one worker per available core".
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Builder for a [`ThreadPool`] with an explicit worker count (the subset of
/// rayon's builder this workspace uses).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default configuration (one worker per core).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Bound the pool at `n` workers; `0` means one per available core.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible here, but returns `Result` to match the
    /// real rayon API surface.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error building a [`ThreadPool`] (never produced by this stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A worker-count cap for parallel pipelines evaluated under
/// [`ThreadPool::install`].
///
/// The stand-in spawns scoped threads per pipeline rather than keeping
/// persistent workers, so a pool is just a recorded thread budget: `install`
/// sets a thread-local override that [`join`] and
/// [`ParMap::collect`] consult when deciding how many workers to spawn.
/// The override applies to pipelines started on the calling thread only —
/// nested pipelines inside worker closures see the default budget.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The worker budget pipelines will run under.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        }
    }

    /// Run `op` with this pool's worker budget installed for pipelines
    /// started inside it. Restores the previous budget on exit, including
    /// on panic.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = POOL_THREADS.with(|c| Restore(c.replace(Some(self.current_num_threads()))));
        op()
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if threads_available() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn threads_available() -> usize {
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Conversion into a "parallel" iterator (the subset: owned `Vec`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Begin a parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Head of a parallel pipeline over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` (applied on worker threads).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel pipeline; terminate with [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Evaluate the pipeline and collect results **in input order**.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        let n_threads = threads_available().min(self.items.len().max(1));
        if n_threads <= 1 {
            let f = self.f;
            return self.items.into_iter().map(f).collect();
        }
        let len = self.items.len();
        let chunk_size = len.div_ceil(n_threads);
        let f = &self.f;
        let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(n_threads);
        let mut items = self.items;
        let mut start = len;
        // Peel chunks off the tail so each drain is O(chunk).
        while start > 0 {
            let lo = start.saturating_sub(chunk_size);
            chunks.push((lo, items.drain(lo..).collect()));
            start = lo;
        }
        let mut parts: Vec<(usize, Vec<U>)> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(lo, chunk)| {
                    s.spawn(move || (lo, chunk.into_iter().map(f).collect::<Vec<U>>()))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon worker panicked"))
                .collect()
        });
        parts.sort_by_key(|(lo, _)| *lo);
        parts.into_iter().flat_map(|(_, part)| part).collect()
    }
}

/// `use rayon::prelude::*;` surface.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.clone().into_par_iter().map(|x| x * 3).collect();
        assert_eq!(ys, xs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let ys: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn pool_bounds_worker_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let inside = pool.install(super::threads_available);
        assert_eq!(inside, 2);
        // The override is scoped: gone after install returns.
        assert_eq!(super::threads_available(), super::default_threads());
    }

    #[test]
    fn pool_install_preserves_order() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let xs: Vec<u64> = (0..257).collect();
        let ys: Vec<u64> = pool.install(|| xs.clone().into_par_iter().map(|x| x + 1).collect());
        assert_eq!(ys, xs.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = super::ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), super::default_threads());
    }
}
