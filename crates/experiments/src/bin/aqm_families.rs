//! Extension experiment: the paper's pathology — and its fix — generalise
//! beyond RED. Run the same Terasort under RED, CoDel, Curvy RED, PIE and
//! the L4S DualQ, each with Default vs ACK+SYN protection, plus the simple
//! marking scheme, and compare who dropped what.
//!
//! Usage: `aqm_families [--tiny] [--seed N]`

use ecn_core::ProtectionMode;
use experiments::cli::cli_args;
use experiments::scenario::{run_scenario, BufferDepth, QueueKind, Transport};
use simevent::SimDuration;

fn main() {
    let args = cli_args();
    let tiny = args.tiny;
    let mut cfg = args.scenario();
    if tiny {
        // Tiny jobs are a single RTO away from inversion; average harder.
        cfg.seed_count = 5;
    }
    let delay = SimDuration::from_micros(500);

    println!("TCP-ECN Terasort, shallow buffers, target delay {delay} — AQM family comparison:\n");
    println!(
        "{:<22} {:>9} {:>11} {:>11} {:>10} {:>9}",
        "queue", "runtime", "tput/node", "latency", "ack-drops", "timeouts"
    );
    let queues = [
        QueueKind::Red(ProtectionMode::Default),
        QueueKind::Red(ProtectionMode::AckSyn),
        QueueKind::CoDel(ProtectionMode::Default),
        QueueKind::CoDel(ProtectionMode::AckSyn),
        QueueKind::CurvyRed(ProtectionMode::Default),
        QueueKind::CurvyRed(ProtectionMode::AckSyn),
        QueueKind::Pie(ProtectionMode::Default),
        QueueKind::Pie(ProtectionMode::AckSyn),
        QueueKind::DualQ(ProtectionMode::Default),
        QueueKind::DualQ(ProtectionMode::AckSyn),
        QueueKind::SimpleMarking,
        QueueKind::DropTail,
    ];
    for q in queues {
        let m = run_scenario(&cfg, Transport::TcpEcn, q, BufferDepth::Shallow, delay);
        println!(
            "{:<22} {:>8.3}s {:>9.1} M {:>9.1} us {:>10} {:>9}{}",
            q.label(),
            m.runtime_s,
            m.throughput_per_node_bps / 1e6,
            m.mean_latency_s * 1e6,
            m.acks_early_dropped,
            m.timeouts,
            if m.completed { "" } else { " [DNF]" },
        );
    }
    println!(
        "\nThe dropping ramps early-drop ACKs in Default mode (RED and Curvy RED\n\
         aggressively, sojourn-based CoDel more sparingly) and stop entirely\n\
         under ACK+SYN protection — the paper's fix is AQM-agnostic. The\n\
         burst-tolerant controllers (PIE, DualQ's classic queue) barely engage\n\
         at this time scale (DESIGN.md \u{a7}15.5). The true marking scheme beats\n\
         every tuned AQM on this workload."
    );
}
