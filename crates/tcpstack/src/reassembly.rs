//! Receiver-side sequence-space reassembly.

use std::collections::BTreeMap;

/// Tracks which byte ranges have arrived and how far the contiguous prefix
/// extends, so the receiver can generate cumulative ACKs.
///
/// Ranges are half-open `[start, end)` in sequence-number space.
#[derive(Debug, Clone, Default)]
pub struct Reassembly {
    /// Next byte expected in order (the cumulative ACK point).
    rcv_nxt: u64,
    /// Out-of-order islands beyond `rcv_nxt`, keyed by start, non-overlapping.
    islands: BTreeMap<u64, u64>,
}

impl Reassembly {
    /// Start expecting byte `initial` first.
    pub fn new(initial: u64) -> Self {
        Reassembly {
            rcv_nxt: initial,
            islands: BTreeMap::new(),
        }
    }

    /// The cumulative ACK point: everything below is contiguous.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Record arrival of `[start, end)`. Returns `true` if the segment
    /// advanced `rcv_nxt` (i.e. was in order / filled the head hole),
    /// `false` for out-of-order or fully duplicate data.
    pub fn on_segment(&mut self, start: u64, end: u64) -> bool {
        assert!(start <= end, "invalid segment range");
        if end <= self.rcv_nxt {
            return false; // stale duplicate
        }
        let start = start.max(self.rcv_nxt);
        let before = self.rcv_nxt;
        self.insert_island(start, end);
        self.advance();
        self.rcv_nxt > before
    }

    fn insert_island(&mut self, mut start: u64, mut end: u64) {
        // Merge any islands overlapping or adjacent to [start, end).
        // Candidates begin at the island at-or-before `start`.
        let mut to_remove = Vec::new();
        if let Some((&s, &e)) = self.islands.range(..=start).next_back() {
            if e >= start {
                start = s.min(start);
                end = e.max(end);
                to_remove.push(s);
            }
        }
        for (&s, &e) in self.islands.range(start..) {
            if s > end {
                break;
            }
            end = end.max(e);
            to_remove.push(s);
        }
        for s in to_remove {
            self.islands.remove(&s);
        }
        self.islands.insert(start, end);
    }

    fn advance(&mut self) {
        while let Some((&s, &e)) = self.islands.iter().next() {
            if s <= self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.max(e);
                self.islands.remove(&s);
            } else {
                break;
            }
        }
    }

    /// The out-of-order islands beyond the contiguous prefix, ascending —
    /// what a SACK option reports.
    pub fn islands(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.islands.iter().map(|(&s, &e)| (s, e))
    }

    /// Number of disjoint out-of-order islands currently held.
    pub fn island_count(&self) -> usize {
        self.islands.len()
    }

    /// Total out-of-order bytes buffered beyond the contiguous prefix.
    pub fn buffered_bytes(&self) -> u64 {
        self.islands.iter().map(|(s, e)| e - s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_advances() {
        let mut r = Reassembly::new(1);
        assert!(r.on_segment(1, 101));
        assert_eq!(r.rcv_nxt(), 101);
        assert!(r.on_segment(101, 201));
        assert_eq!(r.rcv_nxt(), 201);
        assert_eq!(r.island_count(), 0);
    }

    #[test]
    fn out_of_order_buffers_then_fills() {
        let mut r = Reassembly::new(0);
        assert!(!r.on_segment(100, 200), "OOO must not advance");
        assert_eq!(r.rcv_nxt(), 0);
        assert_eq!(r.island_count(), 1);
        assert_eq!(r.buffered_bytes(), 100);
        assert!(r.on_segment(0, 100), "hole fill advances over the island");
        assert_eq!(r.rcv_nxt(), 200);
        assert_eq!(r.island_count(), 0);
    }

    #[test]
    fn duplicates_ignored() {
        let mut r = Reassembly::new(0);
        r.on_segment(0, 100);
        assert!(!r.on_segment(0, 100));
        assert!(!r.on_segment(50, 80));
        assert_eq!(r.rcv_nxt(), 100);
    }

    #[test]
    fn partial_overlap_with_prefix() {
        let mut r = Reassembly::new(0);
        r.on_segment(0, 100);
        // Segment straddling the ack point: only the new part counts.
        assert!(r.on_segment(50, 150));
        assert_eq!(r.rcv_nxt(), 150);
    }

    #[test]
    fn islands_merge() {
        let mut r = Reassembly::new(0);
        r.on_segment(100, 200);
        r.on_segment(300, 400);
        assert_eq!(r.island_count(), 2);
        r.on_segment(200, 300); // bridges the two islands
        assert_eq!(r.island_count(), 1);
        assert_eq!(r.buffered_bytes(), 300);
        r.on_segment(0, 100);
        assert_eq!(r.rcv_nxt(), 400);
        assert_eq!(r.island_count(), 0);
    }

    #[test]
    fn overlapping_islands_merge() {
        let mut r = Reassembly::new(0);
        r.on_segment(100, 250);
        r.on_segment(200, 300);
        assert_eq!(r.island_count(), 1);
        assert_eq!(r.buffered_bytes(), 200);
    }

    #[test]
    fn adjacent_islands_merge() {
        let mut r = Reassembly::new(0);
        r.on_segment(100, 200);
        r.on_segment(200, 250);
        assert_eq!(r.island_count(), 1);
    }

    #[test]
    fn zero_length_segment_noop() {
        let mut r = Reassembly::new(5);
        assert!(!r.on_segment(5, 5));
        assert_eq!(r.rcv_nxt(), 5);
    }

    #[test]
    fn random_order_always_completes() {
        // Deliver 100 segments of 10 bytes in a deterministic scramble.
        let mut order: Vec<u64> = (0..100).collect();
        // Simple LCG scramble for determinism without pulling in rand.
        let mut state = 12345u64;
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut r = Reassembly::new(0);
        for k in order {
            r.on_segment(k * 10, (k + 1) * 10);
        }
        assert_eq!(r.rcv_nxt(), 1000);
        assert_eq!(r.island_count(), 0);
        assert_eq!(r.buffered_bytes(), 0);
    }
}
