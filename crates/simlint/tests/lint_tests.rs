//! Integration tests: each fixture under `tests/fixtures/` is scanned under
//! a synthetic workspace-relative path (the rules are path-sensitive), plus
//! the self-check — the real workspace must lint clean with the real
//! `simlint.toml`.

use simlint::lexer::lex;
use simlint::rules::check_file;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn codes(path: &str, source: &str) -> Vec<&'static str> {
    check_file(path, &lex(source))
        .into_iter()
        .map(|f| f.code)
        .collect()
}

#[test]
fn sl001_fixture() {
    let src = fixture("sl001_wall_clock.rs");
    // Positive: in a sim crate, both wall-clock types fire (Instant twice:
    // the use-line and the call site; SystemTime once).
    let found = codes("crates/netsim/src/probe.rs", &src);
    assert!(found.iter().all(|c| *c == "SL001"), "only SL001: {found:?}");
    assert_eq!(found.len(), 3);
    // Outside the sim crates the same sites are SL010's (waivable,
    // measurement-only) findings instead.
    let harness = codes("crates/experiments/src/probe.rs", &src);
    assert!(harness.iter().all(|c| *c == "SL010"), "{harness:?}");
    assert_eq!(harness.len(), 3);
}

#[test]
fn sl002_fixture() {
    let src = fixture("sl002_default_hasher.rs");
    let findings = check_file("crates/tcpstack/src/state.rs", &lex(&src));
    let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
    assert!(findings.iter().all(|f| f.code == "SL002"));
    assert_eq!(
        findings.len(),
        2,
        "exactly the two default-hasher fields: {findings:?}"
    );
    // The custom-hasher and BTreeMap fields (lines 11+) must not fire.
    assert!(lines.iter().all(|&l| l < 11), "lines: {lines:?}");
}

#[test]
fn sl003_fixture() {
    let src = fixture("sl003_ambient_entropy.rs");
    // Workspace-wide: fires even outside simulation crates. The bare
    // `SmallRng` construction additionally trips SL010; the explicit
    // `SimRng::seed_from_u64` stays clean.
    assert_eq!(
        codes("crates/experiments/src/gen.rs", &src),
        vec!["SL003", "SL010", "SL003"]
    );
}

#[test]
fn sl004_fixture() {
    let src = fixture("sl004_unwrap.rs");
    // Positive in library code; the #[cfg(test)] unwrap is exempt.
    assert_eq!(codes("crates/core/src/x.rs", &src), vec!["SL004", "SL004"]);
    // Whole file exempt under tests/.
    assert!(codes("crates/core/tests/x.rs", &src).is_empty());
}

#[test]
fn sl005_fixture() {
    let src = fixture("sl005_lossy_cast.rs");
    assert_eq!(codes("crates/core/src/x.rs", &src), vec!["SL005", "SL005"]);
}

#[test]
fn sl006_fixture() {
    let src = fixture("sl006_packet_alloc.rs");
    let findings = check_file("crates/netsim/src/hot.rs", &lex(&src));
    assert!(findings.iter().all(|f| f.code == "SL006"), "{findings:?}");
    assert_eq!(
        findings.len(),
        5,
        "the three single-line sites plus the multiline-builder and \
         turbofish regressions: {findings:?}"
    );
    // Everything after the clean marker (field labels, packet-counting
    // idents, PacketRef pushes, non-packet turbofish, test code) must not
    // fire.
    assert!(findings.iter().all(|f| f.line <= 15), "{findings:?}");
    // Out of scope in the harness crate.
    assert!(codes("crates/experiments/src/hot.rs", &src).is_empty());
}

#[test]
fn sl007_fixture() {
    let src = fixture("sl007_hash_iteration.rs");
    let findings = check_file("crates/netsim/src/state.rs", &lex(&src));
    assert!(findings.iter().all(|f| f.code == "SL007"), "{findings:?}");
    assert_eq!(
        findings.len(),
        2,
        "the for-loop and the unsorted sample: {findings:?}"
    );
    // The sorted collect, the Vec loop, and the test region are clean.
    assert!(findings.iter().all(|f| f.line <= 22), "{findings:?}");
    // Out of scope in the harness crate.
    assert!(codes("crates/experiments/src/state.rs", &src).is_empty());
}

#[test]
fn sl008_fixture() {
    let src = fixture("sl008_interior_mutability.rs");
    let findings = check_file("crates/tcpstack/src/state.rs", &lex(&src));
    assert!(findings.iter().all(|f| f.code == "SL008"), "{findings:?}");
    assert_eq!(
        findings.len(),
        5,
        "three state fields + static mut + Relaxed: {findings:?}"
    );
    // Locals, plain enums, and the test region are clean.
    assert!(findings.iter().all(|f| f.line <= 17), "{findings:?}");
    // Out of scope in the harness crate.
    assert!(codes("crates/experiments/src/state.rs", &src).is_empty());
}

#[test]
fn sl009_fixture() {
    let src = fixture("sl009_float_accumulation.rs");
    let findings = check_file("crates/simmetrics/src/agg.rs", &lex(&src));
    assert!(findings.iter().all(|f| f.code == "SL009"), "{findings:?}");
    assert_eq!(
        findings.len(),
        2,
        "the field accumulator and the float local: {findings:?}"
    );
    // The integer-accumulation pattern below the marker is clean.
    assert!(findings.iter().all(|f| f.line <= 22), "{findings:?}");
    // Metrics scope covers the harness too, but not plain sim crates.
    assert_eq!(codes("crates/experiments/src/agg.rs", &src).len(), 2);
    assert!(codes("crates/netsim/src/agg.rs", &src).is_empty());
}

#[test]
fn sl010_fixture() {
    let src = fixture("sl010_ambient_construction.rs");
    // In the harness: two wall-clock reads + three RNG-construction idents.
    let findings = check_file("crates/experiments/src/probe.rs", &lex(&src));
    assert!(findings.iter().all(|f| f.code == "SL010"), "{findings:?}");
    assert_eq!(findings.len(), 5, "{findings:?}");
    // In the blessed home the constructions are allowed — and the
    // wall-clock reads fall to SL001, since simevent is a sim crate.
    assert_eq!(
        codes("crates/simevent/src/rng.rs", &src),
        vec!["SL001", "SL001"]
    );
    // Tests may measure wall time and seed ad-hoc generators.
    assert!(codes("crates/experiments/tests/probe.rs", &src).is_empty());
}

#[test]
fn sl011_fixture() {
    let src = fixture("sl011_past_schedule.rs");
    let findings = check_file("crates/simevent/src/probe.rs", &lex(&src));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].code, "SL011");
    assert_eq!(findings[0].line, 9);
    // Out of scope in the harness crate.
    assert!(codes("crates/experiments/src/probe.rs", &src).is_empty());
}

#[test]
fn sl012_fixture() {
    let src = fixture("sl012_unsafe.rs");
    assert_eq!(codes("crates/tcpstack/src/fast.rs", &src), vec!["SL012"]);
    // Unlike most rules, a tests/ path does not exempt unsafe.
    assert_eq!(codes("crates/tcpstack/tests/fast.rs", &src), vec!["SL012"]);
    // The pool is the one audited home.
    assert!(codes("crates/netpacket/src/pool.rs", &src).is_empty());
}

#[test]
fn waiver_silences_exactly_its_code_and_path() {
    let src = fixture("sl004_unwrap.rs");
    let waivers = simlint::config::parse(
        "[[waiver]]\n\
         code = \"SL004\"\n\
         path = \"crates/core/src/x.rs\"\n\
         reason = \"fixture: documented invariant\"\n",
    )
    .expect("waiver parses");
    let findings = check_file("crates/core/src/x.rs", &lex(&src));
    assert!(findings.iter().all(|f| waivers[0].covers(f)));
    // Same finding in another file is NOT covered.
    let elsewhere = check_file("crates/core/src/y.rs", &lex(&src));
    assert!(elsewhere.iter().all(|f| !waivers[0].covers(f)));
}

/// The tree itself must be clean: every finding either fixed or waived with
/// a justification in the real simlint.toml. This is the test CI leans on.
#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let waivers = simlint::load_waivers(&root.join("simlint.toml")).expect("simlint.toml parses");
    let report = simlint::lint_workspace(root, &waivers).expect("lint runs");
    let active: Vec<_> = report.active().collect();
    assert!(
        active.is_empty(),
        "workspace must lint clean; active findings: {active:#?}"
    );
    assert!(report.files_scanned > 50, "walker found the workspace");
}
