//! Kernel + end-to-end performance report: the numbers behind `BENCH_1.json`.
//!
//! Measures, in one process:
//!
//! 1. **Kernel events/sec** — raw schedule/pop throughput of the reference
//!    binary-heap [`simevent::EventQueue`] against the [`simevent::CalendarQueue`]
//!    fast path, on a hold-and-churn workload and on a cancellation-heavy
//!    workload (the rearmed-timer pattern TCP produces).
//! 2. **Fig. 2 shallow sweep wall-clock** — the same grid of Terasort points
//!    evaluated with the seed-faithful reference engine (heap scheduler, map
//!    lookups, full-scan flushes, no timer cancellation) and with the fast
//!    engine, checking that both produce identical metrics.
//!
//! Usage: `cargo run --release -p experiments --bin perf_report [out.json]`
//! (defaults to `BENCH_1.json` in the current directory).

use ecn_core::ProtectionMode;
use experiments::scenario::{
    run_scenario_once_with, BufferDepth, Engine, QueueKind, RunMetrics, ScenarioConfig, Transport,
};
use serde::Serialize;
use simevent::{CalendarQueue, EventQueue, QueueBackend, SimDuration, SimTime};
use std::time::Instant;

/// Deterministic 64-bit LCG (MMIX constants) for workload jitter.
struct Lcg(u64);

impl Lcg {
    fn next_below(&mut self, bound: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

/// Hold-and-churn: keep `pending` events in flight, pop one, reschedule it
/// with up to 1 ms of jitter (the calendar's native window scale). Returns
/// popped events per second.
fn churn<Q: QueueBackend<u64>>(mut q: Q, pending: usize, events: u64) -> f64 {
    let mut rng = Lcg(0x9E37_79B9_7F4A_7C15);
    for i in 0..pending {
        q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i as u64);
    }
    let start = Instant::now();
    for _ in 0..events {
        let (at, v) = q.pop().expect("queue held non-empty");
        q.schedule(
            at + SimDuration::from_nanos(rng.next_below(1_000_000) + 1),
            v,
        );
    }
    events as f64 / start.elapsed().as_secs_f64()
}

/// Rearmed-timer churn: each popped event schedules a cancellable deadline,
/// immediately supersedes it (cancel + reschedule) — the TCP RTO/delayed-ACK
/// pattern. Returns popped events per second.
fn cancel_heavy<Q: QueueBackend<u64>>(mut q: Q, pending: usize, events: u64) -> f64 {
    let mut rng = Lcg(0x2545_F491_4F6C_DD1D);
    for i in 0..pending {
        q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i as u64);
    }
    let start = Instant::now();
    for _ in 0..events {
        let (at, v) = q.pop().expect("queue held non-empty");
        let h =
            q.schedule_cancellable(at + SimDuration::from_nanos(rng.next_below(500_000) + 1), v);
        q.cancel(h);
        q.schedule(
            at + SimDuration::from_nanos(rng.next_below(1_000_000) + 1),
            v,
        );
    }
    events as f64 / start.elapsed().as_secs_f64()
}

/// Calendar geometry matched to the microbench load, per Brown's sizing
/// rule: bucket count within 2× of the pending population (a few events per
/// bucket), bucket width spanning the 1 ms delay horizon twice over.
fn bench_calendar(pending: usize) -> CalendarQueue<u64> {
    let buckets = (pending / 2).next_power_of_two();
    // width = 4 * horizon / buckets, as a power of two (horizon = 2^20 ns);
    // the wide window keeps most reschedules out of the overflow heap.
    let shift = (22u32.saturating_sub(buckets.trailing_zeros())).max(1);
    CalendarQueue::with_geometry(shift, buckets)
}

#[derive(Debug, Serialize)]
struct KernelWorkload {
    pending: u64,
    popped_events: u64,
    heap_events_per_sec: f64,
    calendar_events_per_sec: f64,
    speedup: f64,
}

const KERNEL_SAMPLES: usize = 5;

/// Median of `KERNEL_SAMPLES` interleaved heap/calendar measurements — one
/// short run of each backend is too noisy on a busy single-core box.
fn kernel_workload(
    pending: usize,
    events: u64,
    bench: fn(EventQueue<u64>, usize, u64) -> f64,
    bench_cal: fn(CalendarQueue<u64>, usize, u64) -> f64,
) -> KernelWorkload {
    let mut heap_runs = Vec::new();
    let mut cal_runs = Vec::new();
    for _ in 0..KERNEL_SAMPLES {
        heap_runs.push(bench(EventQueue::new(), pending, events));
        cal_runs.push(bench_cal(bench_calendar(pending), pending, events));
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        v[v.len() / 2]
    };
    let heap = median(heap_runs);
    let calendar = median(cal_runs);
    KernelWorkload {
        pending: pending as u64,
        popped_events: events,
        heap_events_per_sec: heap,
        calendar_events_per_sec: calendar,
        speedup: calendar / heap,
    }
}

#[derive(Debug, Serialize)]
struct KernelReport {
    churn: KernelWorkload,
    cancel_heavy: KernelWorkload,
}

#[derive(Debug, Serialize)]
struct SweepReport {
    points: u64,
    reference_seconds: f64,
    fast_seconds: f64,
    speedup: f64,
    outputs_identical: bool,
    /// Events processed across all points (cancellation shrinks this).
    reference_events: u64,
    fast_events: u64,
    /// Max over points of the scheduler's pending-event high-water mark.
    reference_peak_pending: u64,
    fast_peak_pending: u64,
}

#[derive(Debug, Serialize)]
struct PerfReport {
    description: String,
    kernel: KernelReport,
    sweep_fig2_shallow: SweepReport,
}

/// The Fig. 2 shallow grid used for the wall-clock comparison: one rack of
/// twelve hosts over three map waves, so each host accumulates enough
/// endpoints for the reference engine's per-packet scans to show their cost.
fn sweep_config(seed: Option<u64>) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::tiny();
    cfg.hosts_per_rack = 12;
    cfg.input_bytes_per_node = 6_000_000;
    cfg.map_waves = 3;
    if let Some(s) = seed {
        cfg.seed = s;
    }
    cfg
}

fn sweep_points() -> Vec<(Transport, QueueKind, u64)> {
    let mut points = vec![(Transport::Tcp, QueueKind::DropTail, 500)];
    for transport in Transport::ECN_TRANSPORTS {
        for queue in [
            QueueKind::Red(ProtectionMode::Default),
            QueueKind::Red(ProtectionMode::AckSyn),
            QueueKind::SimpleMarking,
        ] {
            for delay_us in [100u64, 500, 2000] {
                points.push((transport, queue, delay_us));
            }
        }
    }
    points
}

fn run_sweep(engine: Engine, seed: Option<u64>) -> (f64, Vec<RunMetrics>, u64, u64) {
    let cfg = sweep_config(seed);
    let mut metrics = Vec::new();
    let mut events = 0u64;
    let mut peak = 0u64;
    let start = Instant::now();
    for (transport, queue, delay_us) in sweep_points() {
        let (m, report) = run_scenario_once_with(
            &cfg,
            transport,
            queue,
            BufferDepth::Shallow,
            SimDuration::from_micros(delay_us),
            engine,
        );
        events += report.events;
        peak = peak.max(report.peak_pending as u64);
        metrics.push(m);
    }
    (start.elapsed().as_secs_f64(), metrics, events, peak)
}

fn main() {
    // `perf_report [out.json] [--seed N]` — the first non-flag argument is
    // the output path.
    let mut out = String::from("BENCH_1.json");
    let mut seed = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--seed" {
            match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => seed = Some(s),
                _ => {
                    eprintln!("--seed needs an unsigned integer value");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = a.strip_prefix("--seed=") {
            match v.parse::<u64>() {
                Ok(s) => seed = Some(s),
                Err(_) => {
                    eprintln!("--seed needs an unsigned integer value");
                    std::process::exit(2);
                }
            }
        } else {
            out = a;
        }
    }

    eprintln!("kernel microbench (churn)...");
    let churn_w = kernel_workload(1_048_576, 1_000_000, churn, churn);
    eprintln!(
        "  heap {:.2}M ev/s, calendar {:.2}M ev/s, speedup {:.2}x",
        churn_w.heap_events_per_sec / 1e6,
        churn_w.calendar_events_per_sec / 1e6,
        churn_w.speedup,
    );

    eprintln!("kernel microbench (cancel-heavy)...");
    let cancel_w = kernel_workload(1_048_576, 1_000_000, cancel_heavy, cancel_heavy);
    eprintln!(
        "  heap {:.2}M ev/s, calendar {:.2}M ev/s, speedup {:.2}x",
        cancel_w.heap_events_per_sec / 1e6,
        cancel_w.calendar_events_per_sec / 1e6,
        cancel_w.speedup,
    );

    eprintln!("fig2-shallow sweep, reference engine...");
    let (ref_s, ref_metrics, ref_events, ref_peak) = run_sweep(Engine::Reference, seed);
    eprintln!("  {ref_s:.2}s, {ref_events} events");
    eprintln!("fig2-shallow sweep, fast engine...");
    let (fast_s, fast_metrics, fast_events, fast_peak) = run_sweep(Engine::Fast, seed);
    eprintln!(
        "  {fast_s:.2}s, {fast_events} events, speedup {:.2}x",
        ref_s / fast_s
    );

    let identical = ref_metrics == fast_metrics;
    if !identical {
        eprintln!("WARNING: engines disagreed on sweep outputs");
    }

    let report = PerfReport {
        description: "Simulation-kernel fast path: binary-heap reference vs calendar queue + \
                      slab lookups + timer cancellation, measured in one process."
            .into(),
        kernel: KernelReport {
            churn: churn_w,
            cancel_heavy: cancel_w,
        },
        sweep_fig2_shallow: SweepReport {
            points: sweep_points().len() as u64,
            reference_seconds: ref_s,
            fast_seconds: fast_s,
            speedup: ref_s / fast_s,
            outputs_identical: identical,
            reference_events: ref_events,
            fast_events,
            reference_peak_pending: ref_peak,
            fast_peak_pending: fast_peak,
        },
    };
    if let Err(e) = experiments::report::write_json(&report, std::path::Path::new(&out)) {
        eprintln!("perf_report: failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}
