#![warn(missing_docs)]

//! Experiment harness reproducing the paper's evaluation (§IV).
//!
//! One [`run_scenario`] call = one point of one figure: a Terasort job on the
//! simulated cluster with a chosen transport (TCP / TCP-ECN / DCTCP), queue
//! discipline (DropTail / RED with a protection mode / simple marking),
//! buffer depth (shallow / deep) and RED target delay. A [`sweep()`] runs the
//! whole grid — in parallel, since every point is an independent,
//! deterministically seeded simulation — and the `figures` module renders the
//! paper's Figures 2, 3 and 4 from one sweep, plus Fig. 1's queue snapshot
//! and Tables I–II.
//!
//! The [`simsweep`] module is the orchestration layer underneath: a bounded
//! worker pool (`--jobs N`) with a content-addressed result cache under
//! `results/.cache/` (`--no-cache` to bypass), merging results in point
//! order so parallel, serial and cache-served runs emit byte-identical
//! JSON. The [`gate`] module holds the benchmark regression gate
//! (`bench_gate` bin, `BENCH_5.json`) that CI enforces, and the [`verify`]
//! module the `simverify` schedule-permutation determinism checker.

pub mod cc_matrix;
pub mod claims;
pub mod cli;
pub mod figures;
pub mod gate;
pub mod report;
pub mod scenario;
pub mod simsweep;
pub mod sweep;
pub mod tiny_buffer;
pub mod verify;

pub use scenario::{run_scenario, BufferDepth, QueueKind, RunMetrics, ScenarioConfig, Transport};
pub use simsweep::{CacheMode, SweepOptions, SweepStats};
pub use sweep::{sweep, sweep_with, SweepGrid, SweepPoint, SweepResults};
