//! Library-level demo of the paper's core mechanism, no network simulation:
//! offer the same packet mix to RED queues in the three protection modes and
//! show exactly who gets early-dropped.
//!
//! Run with: `cargo run --release --example protection_modes`

use hadoop_ecn::prelude::*;
use netpacket::{PacketId, QueueDiscipline};

/// A packet mix typical of a shuffle hot spot: mostly ECT data, with a
/// steady trickle of returning non-ECT ACKs (some echoing congestion) and an
/// occasional connection attempt.
fn mixed_traffic() -> Vec<Packet> {
    let mut out = Vec::new();
    let mut id = 0u64;
    let mut pkt = |payload: u32, flags: TcpFlags, ecn: EcnCodepoint| {
        id += 1;
        Packet {
            id: PacketId(id),
            flow: FlowId(id % 7),
            src: NodeId(1),
            dst: NodeId(0),
            seq: id * 1460,
            ack: 1,
            payload,
            flags,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    };
    for i in 0..600u32 {
        out.push(pkt(1460, TcpFlags::ACK, EcnCodepoint::Ect0)); // bulk data
        if i % 3 == 0 {
            out.push(pkt(0, TcpFlags::ACK, EcnCodepoint::NotEct)); // plain ACK
        }
        if i % 9 == 0 {
            out.push(pkt(0, TcpFlags::ACK | TcpFlags::ECE, EcnCodepoint::NotEct));
            // ECE ACK
        }
        if i % 60 == 0 {
            out.push(pkt(0, TcpFlags::ecn_setup_syn(), EcnCodepoint::NotEct)); // SYN
        }
    }
    out
}

fn drain_some(q: &mut dyn QueueDiscipline, n: usize) {
    for _ in 0..n {
        q.dequeue(SimTime::ZERO);
    }
}

fn offer(q: &mut dyn QueueDiscipline) {
    // Keep the queue hovering at its threshold: enqueue bursts, drain slower
    // than the offered load, exactly the persistent near-threshold state of a
    // shuffle (paper Fig. 1).
    for (i, p) in mixed_traffic().into_iter().enumerate() {
        let _ = q.enqueue(p, SimTime::from_micros(i as u64));
        if i % 3 == 0 {
            drain_some(q, 2);
        }
    }
}

fn main() {
    println!("same traffic mix offered to RED (K band around 500us @1Gbps, shallow):\n");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "mode", "data-mark", "data-drop", "ack-drop", "syn-drop", "early-total"
    );
    for mode in ProtectionMode::ALL {
        let cfg = RedConfig::from_target_delay(
            SimDuration::from_micros(500),
            1_000_000_000,
            1526,
            100,
            mode,
        );
        let mut q = Red::new(cfg, 1);
        offer(&mut q);
        let s = q.stats();
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10} {:>12}",
            mode.label(),
            s.marked.get(PacketKind::Data),
            s.dropped_early.get(PacketKind::Data),
            s.dropped_early.get(PacketKind::PureAck),
            s.dropped_early.get(PacketKind::Syn),
            s.dropped_early.total(),
        );
    }

    // And the paper's second proposal for contrast.
    let mut sm = SimpleMarking::new(SimpleMarkingConfig {
        capacity_packets: 100,
        threshold_packets: 41,
    });
    offer(&mut sm);
    let s = sm.stats();
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "marking",
        s.marked.get(PacketKind::Data),
        s.dropped_early.get(PacketKind::Data),
        s.dropped_early.get(PacketKind::PureAck),
        s.dropped_early.get(PacketKind::Syn),
        s.dropped_early.total(),
    );
    println!(
        "\ndefault mode early-drops every non-ECT packet the AQM selects; ece-bit\n\
         spares congestion echoes and handshakes; ack+syn spares all short\n\
         control packets; the true marking scheme never early-drops anything."
    );
}
