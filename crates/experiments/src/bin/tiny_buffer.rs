//! Tiny-buffer protection-mode sweep: all seven core disciplines at
//! 8–32-packet port buffers, with the direction-of-effect claim gates.
//!
//! Exits nonzero if any tiny-buffer claim gate fails, so CI catches a
//! regression that erases the pathology or breaks protection on one of the
//! modern AQMs (Curvy RED, PIE, L4S DualQ).
//!
//! The sweep pins its own scenario (the tiny incast point with the port
//! buffer forced down to 8/16/32 packets); only `--seed` changes what runs —
//! see `experiments::tiny_buffer`.
//!
//! Usage: `tiny_buffer [--seed N] [--out PATH]`

use experiments::report::write_json;
use experiments::tiny_buffer::{
    check_tiny_buffer_claims, render_tiny_buffer, run_tiny_buffer, tiny_buffer_claims,
};
use std::path::PathBuf;

fn main() {
    // `--out PATH` redirects the grid JSON — the CI determinism check runs
    // the bin twice into two files and byte-diffs them.
    let mut out = PathBuf::from("results/tiny_buffer.json");
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            }
        } else if let Some(p) = a.strip_prefix("--out=") {
            out = PathBuf::from(p);
        } else {
            rest.push(a);
        }
    }
    let cfg = experiments::cli::CliArgs::parse(rest).scenario();
    eprintln!("[tiny_buffer] running the tiny-buffer protection sweep...");
    let res = run_tiny_buffer(&cfg);
    println!("{}", render_tiny_buffer(&res));
    let _ = write_json(&res, &out);

    let c = tiny_buffer_claims(&res);
    let _ = write_json(&c, out.with_file_name("tiny_buffer_claims.json").as_path());
    for (fam, r) in &c.protection_ratios {
        println!("protection goodput ratio [{fam}]: {r:.3}");
    }
    println!(
        "ack early-drops: default={} ack+syn={}",
        c.default_ack_drops, c.protected_ack_drops
    );
    let failures = check_tiny_buffer_claims(&c);
    if !failures.is_empty() {
        eprintln!(
            "[tiny_buffer] {} tiny-buffer claim gate(s) FAILED:",
            failures.len()
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("all tiny-buffer claim gates passed");
}
