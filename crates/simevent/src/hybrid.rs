//! Hybrid backend: calendar queue for precise transmission events, timer
//! wheel for the cancel-heavy RTO-class population — one shared sequence
//! counter so the merged pop order is bit-identical to a single queue.
//!
//! # Routing
//!
//! The simulator schedules two very different event populations:
//!
//! * **plain events** (packet arrivals, port wakeups, samples) — never
//!   cancelled, densely packed in the near future. The
//!   [`CalendarQueue`] is ideal: O(1) amortised schedule, tiny bucket heaps.
//! * **cancellable timers** (TCP RTO, delayed ACK) — almost always cancelled
//!   and rearmed before firing. The [`TimerWheel`] removes those physically
//!   in O(1) instead of sifting tombstones through bucket heaps.
//!
//! `schedule` routes to the calendar, `schedule_cancellable` to the wheel.
//!
//! # Why the merge is exact
//!
//! Determinism requires pops globally ordered by `(time, seq)` — including
//! FIFO tie-breaks *across* the two sub-queues (a timer and a packet event
//! at the same instant must fire in scheduling order). Two things make that
//! hold: a single `next_seq` counter feeds both sub-queues via their
//! `insert_with_seq` hooks, and `pop` compares exact `(time, seq)` head keys
//! from both sides (`prepare_head`) before removing anything. The
//! equivalence proptests pin the merged order against the reference
//! [`EventQueue`](crate::EventQueue).

use crate::calendar::CalendarQueue;
use crate::handle::TimerHandle;
use crate::queue::QueueBackend;
use crate::tiebreak::TieBreak;
use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// A deterministic event queue that routes plain events to a
/// [`CalendarQueue`] and cancellable timers to a [`TimerWheel`], popping the
/// exact `(time, tie)` merge of both. Drop-in [`QueueBackend`]; the
/// simulation driver's default.
#[derive(Debug)]
pub struct HybridQueue<E> {
    calendar: CalendarQueue<E>,
    wheel: TimerWheel<E>,
    next_seq: u64,
    scheduled_total: u64,
    /// Largest time popped so far — the queue's view of `now`.
    watermark: SimTime,
    /// Debug-build backstop for SL011: scheduling behind the watermark is a
    /// lookahead violation in the monotone driver. The equivalence proptests
    /// exercise arbitrary (non-monotone) interleavings and opt out.
    monotone_check: bool,
}

impl<E> Default for HybridQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HybridQueue<E> {
    /// An empty queue with both sub-queues at their default geometry.
    pub fn new() -> Self {
        Self::with_tie_break(TieBreak::Fifo)
    }

    /// An empty queue ordering same-instant events by `tie_break`. A single
    /// policy (and a single seq counter) spans both sub-queues, so the
    /// merged order stays the exact `(time, tie)` order a single queue
    /// would produce.
    pub fn with_tie_break(tie_break: TieBreak) -> Self {
        HybridQueue {
            calendar: CalendarQueue::with_tie_break(tie_break),
            wheel: TimerWheel::with_tie_break(tie_break),
            next_seq: 0,
            scheduled_total: 0,
            watermark: SimTime::ZERO,
            monotone_check: true,
        }
    }

    /// Disable the debug-build schedule-behind-watermark assertion. Only for
    /// harnesses that intentionally schedule into the past (the cross-backend
    /// equivalence proptests); the simulation driver never does.
    pub fn set_monotone_check(&mut self, enabled: bool) {
        self.monotone_check = enabled;
    }

    /// Largest time popped so far (the queue's view of `now`).
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    #[inline]
    fn take_seq(&mut self, at: SimTime) -> u64 {
        debug_assert!(
            !self.monotone_check || at >= self.watermark,
            "scheduled {at:?} behind watermark {:?}: computed timestamp precedes now (SL011)",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        seq
    }

    /// Schedule `event` to fire at absolute time `at` (not cancellable;
    /// calendar side; default lane 0).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.schedule_in_lane(at, 0, event);
    }

    /// Schedule `event` at `at` in `lane` (the handling entity, used by
    /// [`TieBreak::Permuted`] same-instant ordering; ignored under FIFO).
    pub fn schedule_in_lane(&mut self, at: SimTime, lane: u64, event: E) {
        let seq = self.take_seq(at);
        self.calendar.insert_with_seq(at, seq, lane, event);
    }

    /// Schedule `event` at `at`, returning a cancellation handle (wheel
    /// side: cancellation will be an O(1) physical removal).
    pub fn schedule_cancellable(&mut self, at: SimTime, event: E) -> TimerHandle {
        self.schedule_cancellable_in_lane(at, 0, event)
    }

    /// Cancellable scheduling with an explicit lane.
    pub fn schedule_cancellable_in_lane(
        &mut self,
        at: SimTime,
        lane: u64,
        event: E,
    ) -> TimerHandle {
        let seq = self.take_seq(at);
        self.wheel.insert_with_seq(at, seq, lane, event)
    }

    /// Cancel a pending event. Handles only ever point into the wheel.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        self.wheel.cancel(handle)
    }

    /// Remove and return the earliest live event across both sub-queues.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let from_wheel = match (self.calendar.prepare_head(), self.wheel.prepare_head()) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            // Exact global order: earliest time, then scheduling order. The
            // shared seq counter makes the tie-break meaningful across
            // sub-queues.
            (Some(ck), Some(wk)) => wk < ck,
        };
        let se = if from_wheel {
            self.wheel.pop_prepared()
        } else {
            self.calendar.pop_prepared()
        };
        se.map(|se| {
            self.watermark = self.watermark.max(se.at);
            (se.at, se.event)
        })
    }

    /// The firing time of the earliest live pending event. Immutable (does
    /// not rotate either sub-queue), so worst-case O(n); tests and debug
    /// assertions only — the hot path pops directly.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.calendar.peek_time(), self.wheel.peek_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.calendar.len() + self.wheel.len()
    }

    /// True when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled on this queue (monotone; survives
    /// [`clear`](Self::clear)).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events (keeps `scheduled_total` and the seq counter;
    /// resets the monotone watermark — an emptied queue can be reused from
    /// time zero).
    pub fn clear(&mut self) {
        self.calendar.clear();
        self.wheel.clear();
        self.watermark = SimTime::ZERO;
    }

    /// Release excess capacity in both sub-queues after a burst.
    pub fn shrink_to_fit(&mut self) {
        self.calendar.shrink_to_fit();
        self.wheel.shrink_to_fit();
    }
}

impl<E> QueueBackend<E> for HybridQueue<E> {
    fn with_tie_break(tie_break: TieBreak) -> Self {
        HybridQueue::with_tie_break(tie_break)
    }
    fn schedule_in_lane(&mut self, at: SimTime, lane: u64, event: E) {
        HybridQueue::schedule_in_lane(self, at, lane, event);
    }
    fn schedule_cancellable_in_lane(&mut self, at: SimTime, lane: u64, event: E) -> TimerHandle {
        HybridQueue::schedule_cancellable_in_lane(self, at, lane, event)
    }
    fn cancel(&mut self, handle: TimerHandle) -> bool {
        HybridQueue::cancel(self, handle)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        HybridQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        HybridQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        HybridQueue::len(self)
    }
    fn scheduled_total(&self) -> u64 {
        HybridQueue::scheduled_total(self)
    }
    fn clear(&mut self) {
        HybridQueue::clear(self);
    }
    fn shrink_to_fit(&mut self) {
        HybridQueue::shrink_to_fit(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_instant_ties_break_across_subqueues() {
        // A plain event and a cancellable timer at the same instant must pop
        // in scheduling order — that is exactly what the shared seq buys.
        let mut q: HybridQueue<u32> = HybridQueue::new();
        let t = SimTime::from_micros(5);
        q.schedule(t, 0);
        let _h = q.schedule_cancellable(t, 1);
        q.schedule(t, 2);
        let _h2 = q.schedule_cancellable(t, 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cancellation_only_touches_the_wheel_population() {
        let mut q: HybridQueue<u32> = HybridQueue::new();
        q.schedule(SimTime::from_nanos(10), 10);
        let h = q.schedule_cancellable(SimTime::from_nanos(5), 5);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 10)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q: HybridQueue<u64> = HybridQueue::new();
        q.schedule(SimTime::from_nanos(5), 5);
        let _ = q.schedule_cancellable(SimTime::from_nanos(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(SimTime::from_nanos(3), 3);
        let _ = q.schedule_cancellable(SimTime::from_nanos(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
        assert!(q.pop().is_none());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "behind watermark"))]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert compiled out in release")]
    fn scheduling_behind_the_watermark_panics_in_debug() {
        // Satellite backstop for SL011: once an event at t=100 has popped,
        // scheduling at t=50 is a computed-timestamp-precedes-now bug.
        let mut q: HybridQueue<u32> = HybridQueue::new();
        q.schedule(SimTime::from_nanos(100), 1);
        let _ = q.pop();
        q.schedule(SimTime::from_nanos(50), 2);
    }

    #[test]
    fn monotone_check_can_be_disabled() {
        let mut q: HybridQueue<u32> = HybridQueue::new();
        q.set_monotone_check(false);
        q.schedule(SimTime::from_nanos(100), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(100), 1)));
        assert_eq!(q.watermark(), SimTime::from_nanos(100));
        // Past-scheduling is tolerated (the equivalence harness needs it) and
        // still pops, via the sub-queues' past heaps.
        q.schedule(SimTime::from_nanos(50), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(50), 2)));
    }

    #[test]
    fn permuted_ties_stay_exact_across_subqueues() {
        // Same payloads at one instant, alternating calendar/wheel. Under a
        // permuted tie-break the merged order must equal the reference
        // EventQueue's order for the same policy — the shared tie keys make
        // the cross-queue merge exact, FIFO or not.
        use crate::queue::EventQueue;
        let t = SimTime::from_micros(9);
        let tb = TieBreak::Permuted(3);
        let mut reference: EventQueue<u32> = EventQueue::with_tie_break(tb);
        let mut hybrid: HybridQueue<u32> = HybridQueue::with_tie_break(tb);
        for i in 0..40u32 {
            let lane = u64::from(i) % 8;
            if i % 2 == 0 {
                reference.schedule_in_lane(t, lane, i);
                hybrid.schedule_in_lane(t, lane, i);
            } else {
                let _ = reference.schedule_cancellable_in_lane(t, lane, i);
                let _ = hybrid.schedule_cancellable_in_lane(t, lane, i);
            }
        }
        let want: Vec<u32> = std::iter::from_fn(|| reference.pop().map(|(_, e)| e)).collect();
        let got: Vec<u32> = std::iter::from_fn(|| hybrid.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, want, "hybrid merge diverged from reference");
        assert_ne!(
            got,
            (0..40).collect::<Vec<_>>(),
            "seed 3 should not be FIFO"
        );
    }

    #[test]
    fn counters_span_both_subqueues() {
        let mut q: HybridQueue<u32> = HybridQueue::new();
        q.schedule(SimTime::from_nanos(1), 1);
        let h = q.schedule_cancellable(SimTime::from_nanos(2), 2);
        q.cancel(h);
        assert_eq!(q.scheduled_total(), 2, "cancelled events still count");
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
        q.schedule(SimTime::from_nanos(3), 3);
        assert_eq!(q.scheduled_total(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(3), 3)));
    }
}

#[cfg(test)]
mod equivalence {
    //! The merged pop order is pinned against the reference heap under
    //! arbitrary interleavings — same harness shape as the calendar queue's.

    use super::*;
    use crate::queue::EventQueue;
    use crate::tiebreak::pack_lane;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Schedule(u64),
        ScheduleCancellable(u64),
        Pop,
        Cancel(usize),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            // Coarse times collide often, forcing cross-subqueue FIFO
            // tie-breaks (the case a per-subqueue counter would break).
            4 => (0u64..2_000_000).prop_map(|t| Op::Schedule(t / 7 * 7)),
            3 => (0u64..2_000_000).prop_map(|t| Op::ScheduleCancellable(t / 7 * 7)),
            4 => Just(Op::Pop),
            2 => (0usize..64).prop_map(Op::Cancel),
        ]
    }

    fn check_equivalence(ops: Vec<Op>, tb: TieBreak) -> Result<(), String> {
        let mut heap: EventQueue<u64> = EventQueue::with_tie_break(tb);
        let mut hybrid: HybridQueue<u64> = HybridQueue::with_tie_break(tb);
        // This harness schedules into the past on purpose.
        hybrid.set_monotone_check(false);
        let mut handles: Vec<(TimerHandle, TimerHandle)> = Vec::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                Op::Schedule(t) => {
                    heap.schedule_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    hybrid.schedule_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    payload += 1;
                }
                Op::ScheduleCancellable(t) => {
                    let hh = heap.schedule_cancellable_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    let hy = hybrid.schedule_cancellable_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    handles.push((hh, hy));
                    payload += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(heap.pop(), hybrid.pop(), "pop diverged");
                }
                Op::Cancel(k) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let (hh, hy) = handles[k % handles.len()];
                    prop_assert_eq!(heap.cancel(hh), hybrid.cancel(hy), "cancel diverged");
                }
            }
            prop_assert_eq!(heap.len(), hybrid.len(), "live length diverged");
            prop_assert_eq!(heap.peek_time(), hybrid.peek_time(), "peek diverged");
            prop_assert_eq!(heap.scheduled_total(), hybrid.scheduled_total());
        }
        loop {
            let (a, b) = (heap.pop(), hybrid.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Merged (time, tie) order matches the single reference queue under
        /// the default FIFO policy.
        #[test]
        fn same_pops_as_reference(ops in prop::collection::vec(arb_op(), 1..300)) {
            check_equivalence(ops, TieBreak::Fifo)?;
        }

        /// ... and under seeded tie-break permutations: the cross-queue merge
        /// stays exact for any (bijective) tie policy, which is what lets
        /// simverify permute schedules without changing queue semantics.
        #[test]
        fn same_pops_as_reference_permuted(
            ops in prop::collection::vec(arb_op(), 1..300),
            seed in 0u64..1_000,
        ) {
            check_equivalence(ops, TieBreak::Permuted(seed))?;
        }
    }
}
