//! The Terasort job as a `netsim` application.

use crate::job::{JobResult, JobSpec};
use netpacket::{FlowId, NodeId};
use netsim::{Application, Network};
use simevent::{SimRng, SimTime};
use std::collections::BTreeMap;
use workload::{CoflowSet, CoflowSummary};

/// App-timer token encoding: kind in the top byte.
const KIND_WAVE: u64 = 1;
const KIND_FLOW: u64 = 2;
const KIND_REDUCE: u64 = 3;

fn token(kind: u64, a: u64, b: u64) -> u64 {
    debug_assert!(a < (1 << 24) && b < (1 << 32));
    (kind << 56) | (a << 32) | b
}

fn untoken(t: u64) -> (u64, u64, u64) {
    (t >> 56, (t >> 32) & 0xFF_FFFF, t & 0xFFFF_FFFF)
}

/// Per-node shuffle progress.
#[derive(Debug, Default, Clone)]
struct NodeState {
    waves_done: u32,
    /// Fetches not yet complete (queued + active).
    inbound_pending: u64,
    inbound_started: u64,
    /// Fetch flows currently in flight toward this node.
    active_fetches: u32,
    /// Fetch flows ever launched toward this node (coflow registrations).
    fetches_launched: u64,
    /// Fetches waiting for a parallel-copy slot: source and size.
    fetch_queue: std::collections::VecDeque<(NodeId, u64)>,
    reduce_scheduled: bool,
    reduce_done: bool,
}

/// A Terasort run over the simulated cluster (see crate docs for the model).
///
/// Use with [`netsim::Simulation`]; after the run, [`TerasortJob::result`]
/// returns runtime and shuffle accounting.
#[derive(Debug)]
pub struct TerasortJob {
    spec: JobSpec,
    n: u32,
    nodes: Vec<NodeState>,
    /// Flow → destination node, for inbound accounting.
    flow_dst: BTreeMap<FlowId, NodeId>,
    /// Deferred flow starts: token b-field → (src, dst, bytes).
    deferred: Vec<(NodeId, NodeId, u64)>,
    flows_started: u64,
    flows_completed: u64,
    first_flow_at: Option<SimTime>,
    shuffle_bytes: u64,
    shuffle_done_at: SimTime,
    last_reduce_at: SimTime,
    /// Each reducer's inbound shuffle as a coflow (group id = reducer node):
    /// the reducer cannot start until its LAST fetch lands, so the coflow
    /// completion time, not any single fetch's FCT, is what gates the job.
    coflows: CoflowSet,
    rng: SimRng,
}

impl TerasortJob {
    /// Create a job for a cluster of `n` nodes.
    pub fn new(spec: JobSpec, n: u32) -> Self {
        spec.validate();
        assert!(n >= 2, "Terasort shuffle needs at least two nodes");
        let rng = SimRng::new(spec.seed);
        TerasortJob {
            spec,
            n,
            nodes: vec![NodeState::default(); n as usize],
            flow_dst: BTreeMap::new(),
            deferred: Vec::new(),
            flows_started: 0,
            flows_completed: 0,
            first_flow_at: None,
            shuffle_bytes: 0,
            shuffle_done_at: SimTime::ZERO,
            last_reduce_at: SimTime::ZERO,
            coflows: CoflowSet::new(),
            rng,
        }
    }

    /// Per-reducer inbound-shuffle coflows (group id = reducer node index).
    pub fn shuffle_coflows(&self) -> &CoflowSet {
        &self.coflows
    }

    /// Summary of the per-reducer shuffle coflow completion times.
    pub fn coflow_summary(&self) -> CoflowSummary {
        self.coflows.summary()
    }

    /// Inbound fetches each reducer receives over the whole job (its own
    /// partition never crosses the network).
    fn fetches_per_reducer(&self) -> u64 {
        if self.spec.shuffle_bytes_per_peer(self.n) == 0 {
            0
        } else {
            u64::from(self.n - 1) * u64::from(self.spec.map_waves)
        }
    }

    /// The job's result; meaningful once the simulation reports `app_done`.
    pub fn result(&self) -> JobResult {
        JobResult {
            runtime: self.last_reduce_at,
            first_flow_at: self.first_flow_at.unwrap_or(SimTime::ZERO),
            shuffle_done: self.shuffle_done_at,
            flows: self.flows_completed,
            shuffle_bytes: self.shuffle_bytes,
        }
    }

    /// True when every node finished reducing.
    pub fn finished(&self) -> bool {
        self.nodes.iter().all(|s| s.reduce_done)
    }

    fn all_waves_done(&self, node: usize) -> bool {
        self.nodes[node].waves_done == self.spec.map_waves
    }

    /// Node `s` finished map wave `w`: its output partitions become
    /// fetchable; queue one fetch per remote reducer node.
    fn on_wave_done(&mut self, s: usize, net: &mut Network, now: SimTime) {
        self.nodes[s].waves_done += 1;
        let bytes = self.spec.shuffle_bytes_per_peer(self.n);
        if bytes > 0 {
            for d in 0..self.n as usize {
                if d == s {
                    continue; // local partition does not cross the network
                }
                self.nodes[d]
                    .fetch_queue
                    .push_back((NodeId(s as u32), bytes));
                self.nodes[d].inbound_started += 1;
                self.nodes[d].inbound_pending += 1;
                self.pump_fetches(d, net, now);
            }
        }
        self.maybe_schedule_reduces(net, now);
    }

    /// Start queued fetches toward node `d` while parallel-copy slots allow —
    /// Hadoop's `parallelcopies` limit, which shapes the shuffle into a
    /// pipeline instead of a full synchronous incast.
    fn pump_fetches(&mut self, d: usize, net: &mut Network, now: SimTime) {
        while self.nodes[d].active_fetches < self.spec.parallel_copies {
            let Some((src, bytes)) = self.nodes[d].fetch_queue.pop_front() else {
                break;
            };
            self.nodes[d].active_fetches += 1;
            // Small deterministic jitter decorrelates flow starts.
            let jit = self
                .rng
                .fork(self.flows_started + self.deferred.len() as u64 + 1)
                .next_below(self.spec.shuffle_jitter.as_nanos().max(1));
            let at = now + simevent::SimDuration::from_nanos(jit);
            let idx = self.deferred.len() as u64;
            self.deferred.push((src, NodeId(d as u32), bytes));
            net.schedule_app_timer(at, token(KIND_FLOW, 0, idx));
        }
    }

    /// Schedule the reduce phase on any node that has everything it needs.
    fn maybe_schedule_reduces(&mut self, net: &mut Network, now: SimTime) {
        // A node can reduce only when the WHOLE cluster finished mapping
        // (otherwise more inbound flows are still coming) and its own inbound
        // shuffle queue is empty.
        let cluster_mapped = (0..self.n as usize).all(|i| self.all_waves_done(i));
        if !cluster_mapped {
            return;
        }
        for d in 0..self.n as usize {
            let st = &mut self.nodes[d];
            if !st.reduce_scheduled && st.inbound_pending == 0 {
                st.reduce_scheduled = true;
                let dur = self.spec.reduce_duration(self.n);
                net.schedule_app_timer(now + dur, token(KIND_REDUCE, d as u64, 0));
            }
        }
    }
}

impl Application for TerasortJob {
    fn on_start(&mut self, net: &mut Network, _now: SimTime) {
        // Schedule every map wave completion on every node. A small per-node
        // phase offset models non-identical task scheduling.
        for s in 0..self.n as usize {
            let offset_ns = self
                .rng
                .fork(0xA000 + s as u64)
                .next_below(self.spec.shuffle_jitter.as_nanos().max(1));
            for w in 0..self.spec.map_waves {
                let at =
                    SimTime::from_nanos(offset_ns) + self.spec.wave_duration() * (w as u64 + 1);
                net.schedule_app_timer(at, token(KIND_WAVE, s as u64, w as u64));
            }
        }
    }

    fn on_flow_complete(&mut self, flow: FlowId, net: &mut Network, now: SimTime) {
        let Some(dst) = self.flow_dst.remove(&flow) else {
            return;
        };
        self.flows_completed += 1;
        self.shuffle_done_at = self.shuffle_done_at.max(now);
        self.coflows.complete_one(u64::from(dst.0), now);
        let d = dst.0 as usize;
        let st = &mut self.nodes[d];
        debug_assert!(st.inbound_pending > 0 && st.active_fetches > 0);
        st.inbound_pending -= 1;
        st.active_fetches -= 1;
        self.pump_fetches(d, net, now);
        self.maybe_schedule_reduces(net, now);
    }

    fn on_timer(&mut self, t: u64, net: &mut Network, now: SimTime) {
        let (kind, a, b) = untoken(t);
        match kind {
            KIND_WAVE => self.on_wave_done(a as usize, net, now),
            KIND_FLOW => {
                let (src, dst, bytes) = self.deferred[b as usize];
                let flow = net.add_flow(src, dst, bytes, self.spec.tcp.clone(), now);
                self.flow_dst.insert(flow, dst);
                self.flows_started += 1;
                self.first_flow_at.get_or_insert(now);
                self.shuffle_bytes += bytes;
                let group = u64::from(dst.0);
                self.coflows.register(group, now);
                let st = &mut self.nodes[dst.0 as usize];
                st.fetches_launched += 1;
                if st.fetches_launched == self.fetches_per_reducer() {
                    self.coflows.seal(group);
                }
            }
            KIND_REDUCE => {
                let st = &mut self.nodes[a as usize];
                debug_assert!(st.reduce_scheduled && !st.reduce_done);
                st.reduce_done = true;
                self.last_reduce_at = self.last_reduce_at.max(now);
            }
            _ => unreachable!("bad app token {t:#x}"),
        }
    }

    fn done(&self, _net: &Network) -> bool {
        self.finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip() {
        for (k, a, b) in [
            (KIND_WAVE, 0, 0),
            (KIND_FLOW, 3, 12345),
            (KIND_REDUCE, 15, 0xFFFF_FFFF),
        ] {
            assert_eq!(untoken(token(k, a, b)), (k, a, b));
        }
    }

    #[test]
    fn shuffle_coflows_track_every_reducer() {
        use ecn_core::QdiscSpec;
        use netsim::{ClusterSpec, LinkSpec, Network, Simulation};
        let n = 4;
        let spec = ClusterSpec::single_rack(
            n,
            LinkSpec::gbps(1, 5),
            QdiscSpec::DropTail {
                capacity_packets: 100,
            },
            1,
        );
        let job = crate::JobSpec::small(1_000_000, tcpstack::TcpConfig::default());
        let mut sim = Simulation::new(Network::new(spec), TerasortJob::new(job, n));
        sim.time_limit = SimTime::from_secs(60);
        sim.run();
        assert!(sim.app.finished());
        let cs = sim.app.shuffle_coflows();
        assert_eq!(cs.len(), n as usize, "one coflow per reducer");
        assert!(cs.all_finished());
        let sum = sim.app.coflow_summary();
        assert_eq!(sum.finished, u64::from(n));
        assert!(sum.cct_mean_us > 0.0);
        // The job's shuffle-done timestamp is exactly the last coflow finish.
        let last_cct = (0..u64::from(n))
            .filter_map(|g| cs.cct(g))
            .max()
            .expect("finished coflows");
        assert!(last_cct.as_micros_f64() <= sum.cct_max_us + 1e-9);
    }

    #[test]
    #[should_panic(expected = "two nodes")]
    fn single_node_rejected() {
        let _ = TerasortJob::new(
            crate::JobSpec::small(1000, tcpstack::TcpConfig::default()),
            1,
        );
    }
}
