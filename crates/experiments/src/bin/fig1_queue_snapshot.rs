//! Reproduce Figure 1: "Typical snapshot of a network switch queue in a
//! Hadoop cluster" — a queue held at the marking threshold by ECT data while
//! non-ECT ACKs (and handshake packets) take the early drops.
//!
//! Usage: `fig1_queue_snapshot [--tiny] [--seed N]`

use experiments::cli::cli_args;
use experiments::figures::{fig1, fig1_trace_csv};
use experiments::report::write_json;
use simevent::SimDuration;
use std::path::Path;

fn main() {
    let args = cli_args();
    let tiny = args.tiny;
    let cfg = args.scenario();
    let target = SimDuration::from_micros(200);
    eprintln!("[fig1] running TCP-ECN Terasort over stock RED (Default mode), shallow buffers...");
    let rep = fig1(&cfg, target);

    println!("== Fig. 1 — snapshot of a congested switch egress queue ==");
    println!("queue: ToR0 -> host0, RED default mode, target delay {target}");
    println!();
    println!(
        "mean occupancy          : {:8.1} packets",
        rep.mean_occupancy
    );
    println!("peak occupancy          : {:8} packets", rep.peak_occupancy);
    println!(
        "resident data fraction  : {:8.1} %",
        rep.data_fraction * 100.0
    );
    println!();
    println!("early drops (cluster-wide, all switch ports):");
    println!("  pure ACKs             : {:8}", rep.acks_early_dropped);
    println!(
        "  SYN / SYN-ACK         : {:8}",
        rep.handshake_early_dropped
    );
    println!(
        "  ECT data              : {:8}  (always marked instead)",
        rep.data_early_dropped
    );
    println!(
        "  ACK share of drops    : {:8.1} %",
        rep.ack_share_of_early_drops * 100.0
    );
    println!("CE marks on data        : {:8}", rep.data_marked);
    println!();
    println!(
        "paper's claim: the queue sits at the threshold full of ECT data; every\n\
         early drop lands on a short non-ECT packet (ACK/SYN), never on data."
    );

    let out = Path::new("results").join(if tiny { "fig1_tiny.json" } else { "fig1.json" });
    if write_json(&rep, &out).is_ok() {
        eprintln!("[fig1] wrote {}", out.display());
    }
    // Full queue-occupancy time series for plotting.
    let csv_path = Path::new("results").join(if tiny {
        "fig1_trace_tiny.csv"
    } else {
        "fig1_trace.csv"
    });
    match fig1_trace_csv(&cfg, target) {
        Ok(csv) => {
            if std::fs::write(&csv_path, csv).is_ok() {
                eprintln!("[fig1] wrote {}", csv_path.display());
            }
        }
        Err(e) => eprintln!("[fig1] trace export skipped: {e}"),
    }
}
