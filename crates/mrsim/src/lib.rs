#![warn(missing_docs)]

//! MapReduce simulator (the MRPerf replacement).
//!
//! The paper drives NS-2 from the MRPerf MapReduce simulator running a
//! Terasort workload. This crate provides the equivalent: a [`TerasortJob`]
//! that implements [`netsim::Application`] and generates the phase structure
//! that matters for the paper's network argument:
//!
//! * **map waves** — each node processes its input split in `map_waves`
//!   waves of compute, finishing at deterministic (lightly jittered) times;
//! * **shuffle** — when a wave's map output is ready on a node, one TCP flow
//!   per remote node carries that node's partitions of the output (Terasort:
//!   map output ≈ map input, partitioned uniformly over reducers). This is
//!   the all-to-all, many-to-many traffic that keeps every switch egress
//!   queue at its marking threshold — the paper's problem scenario;
//! * **reduce** — a node starts reducing once all its inbound shuffle data
//!   has arrived and all waves are finished; the job completes when the last
//!   reducer does.
//!
//! Job runtime (the paper's Fig. 2 metric) is the completion time of the last
//! reducer; it is inversely proportional to effective cluster throughput.

mod job;
mod terasort;

pub use job::{JobResult, JobSpec};
pub use terasort::TerasortJob;
