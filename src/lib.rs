#![warn(missing_docs)]

//! # hadoop-ecn
//!
//! A from-scratch Rust reproduction of **"High Throughput and Low Latency on
//! Hadoop Clusters using Explicit Congestion Notification: The Untold Truth"**
//! (Fischer e Silva & Carpenter, IEEE CLUSTER 2017).
//!
//! The paper shows that ECN-enabled AQMs on switches early-drop **non-ECT**
//! packets — on a Hadoop shuffle, overwhelmingly pure ACKs plus SYN/SYN-ACK —
//! while only *marking* ECT data, and that this is why prior work could not
//! get high throughput and low latency at the same time. It proposes
//! protecting those packets from early drop, or replacing the AQM with a
//! *true* simple marking scheme that never early-drops at all.
//!
//! This crate is a facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`](ecn_core) | **the paper's contribution**: DropTail, RED + ECN with the three protection modes (`Default` / `EceBit` / `AckSyn`), and the true [`SimpleMarking`](ecn_core::SimpleMarking) scheme |
//! | [`simevent`] | deterministic discrete-event kernel |
//! | [`netpacket`] | ECN codepoints (paper Table II), TCP flags (Table I), packets, the qdisc trait |
//! | [`tcpstack`] | TCP NewReno + RFC 3168 ECN, DCTCP, handshake & RTO machinery |
//! | [`netsim`] | links, switch ports, two-tier cluster topology, event loop |
//! | [`mrsim`] | MRPerf-analogue Terasort job (map waves → all-to-all shuffle → reduce) |
//! | [`simmetrics`] | latency histograms, goodput meters, queue-composition traces |
//! | [`experiments`] | per-figure harness regenerating the paper's Tables I–II and Figures 1–4 |
//!
//! ## Quickstart
//!
//! ```
//! use hadoop_ecn::prelude::*;
//!
//! // A 4-host rack whose switch runs the paper's simple marking scheme.
//! let spec = ClusterSpec::single_rack(
//!     4,
//!     LinkSpec::gbps(1, 5),
//!     QdiscSpec::SimpleMarking(SimpleMarkingConfig {
//!         capacity_packets: 100,
//!         threshold_packets: 20,
//!     }),
//!     42,
//! );
//! let net = Network::new(spec);
//!
//! // One 1 MB DCTCP flow from host 0 to host 1.
//! let app = StaticFlows::all_at_zero(
//!     vec![(NodeId(0), NodeId(1), 1_000_000)],
//!     TcpConfig::with_ecn(EcnMode::Dctcp),
//! );
//! let mut sim = Simulation::new(net, app);
//! let report = sim.run();
//! assert!(report.app_done);
//! assert_eq!(sim.net.total_bytes_received(), 1_000_000);
//! ```

pub use ecn_core;
pub use experiments;
pub use mrsim;
pub use netpacket;
pub use netsim;
pub use simevent;
pub use simmetrics;
pub use tcpstack;

/// The most common imports in one place.
pub mod prelude {
    pub use ecn_core::{
        DropTail, ProtectionMode, QdiscSpec, Red, RedConfig, SimpleMarking, SimpleMarkingConfig,
    };
    pub use mrsim::{JobResult, JobSpec, TerasortJob};
    pub use netpacket::{EcnCodepoint, FlowId, NodeId, Packet, PacketKind, TcpFlags};
    pub use netsim::{
        Application, ClusterSpec, LinkSpec, Network, RunReport, Simulation, StaticFlows,
    };
    pub use simevent::{SimDuration, SimTime};
    pub use tcpstack::{EcnMode, Receiver, Sender, TcpAgent, TcpConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let d = DropTail::new(10);
        assert_eq!(netpacket::QueueDiscipline::capacity_packets(&d), 10);
        assert_eq!(EcnCodepoint::Ce.bits(), 0b11);
        assert_eq!(ProtectionMode::ALL.len(), 3);
        let _ = TcpConfig::with_ecn(EcnMode::Dctcp);
        let _ = SimTime::from_micros(1) + SimDuration::from_micros(2);
    }
}
