//! Shared setup for the figure benches: a nano-scale scenario small enough
//! for Criterion iteration, with the same structure as the paper's
//! experiments. The `cargo bench` output doubles as a regeneration of each
//! figure's data at nano scale — the bench prints the measured metric of the
//! configuration it times.

use experiments::scenario::{
    run_scenario_once, BufferDepth, QueueKind, RunMetrics, ScenarioConfig, Transport,
};
use simevent::SimDuration;

/// A scenario small enough to iterate under Criterion on one core, while
/// still exercising map waves, an all-to-all shuffle and both buffer depths.
pub fn nano_config() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::tiny();
    cfg.input_bytes_per_node = 1_000_000;
    cfg.seed_count = 1;
    cfg
}

/// Run one nano point (single seed) and return its metrics.
pub fn nano_point(
    transport: Transport,
    queue: QueueKind,
    depth: BufferDepth,
    delay_us: u64,
) -> RunMetrics {
    run_scenario_once(
        &nano_config(),
        transport,
        queue,
        depth,
        SimDuration::from_micros(delay_us),
    )
}

/// The series every figure bench sweeps: the paper's three protection modes
/// plus the simple marking scheme.
pub fn figure_series() -> Vec<(&'static str, Transport, QueueKind)> {
    use ecn_core::ProtectionMode::*;
    vec![
        (
            "tcp-ecn/red-default",
            Transport::TcpEcn,
            QueueKind::Red(Default),
        ),
        (
            "tcp-ecn/red-ece-bit",
            Transport::TcpEcn,
            QueueKind::Red(EceBit),
        ),
        (
            "tcp-ecn/red-ack+syn",
            Transport::TcpEcn,
            QueueKind::Red(AckSyn),
        ),
        (
            "dctcp/simple-marking",
            Transport::Dctcp,
            QueueKind::SimpleMarking,
        ),
        ("tcp/droptail", Transport::Tcp, QueueKind::DropTail),
    ]
}
