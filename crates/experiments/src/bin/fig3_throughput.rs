//! Reproduce Figure 3: cluster throughput (mean goodput per node) vs RED
//! target delay, shallow (3a) and deep (3b), normalised to DropTail shallow.
//!
//! Usage: `fig3_throughput [--tiny] [--fresh]`

use experiments::cli::sweep_from_args;
use experiments::figures::fig3;
use experiments::report::render_panel;

fn main() {
    let res = sweep_from_args();
    for panel in fig3(&res) {
        println!("{}", render_panel(&panel));
    }
}
