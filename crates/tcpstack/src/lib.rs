#![warn(missing_docs)]

//! Packet-level TCP endpoints for the ECN/Hadoop reproduction.
//!
//! This crate replaces NS-2's TCP agents (plus the Stanford DCTCP patch) with
//! a from-scratch implementation of the pieces the paper's pathology depends
//! on:
//!
//! * **connection establishment** — SYN / SYN-ACK / ACK with exponential SYN
//!   retransmission (a dropped SYN stalls a flow for a full second, which is
//!   exactly why the paper protects handshake packets);
//! * **cumulative-ACK reliability** — dup-ACK fast retransmit, NewReno
//!   partial-ACK recovery, RFC 6298 retransmission timer with backoff, and
//!   the whole-window-loss → RTO → `cwnd = 1 MSS` collapse the paper calls
//!   "devastating";
//! * **ECN (RFC 3168)** — data segments are ECT(0) while **pure ACKs, SYN and
//!   SYN-ACK are Non-ECT** (the untold truth), receivers echo CE via the ECE
//!   flag until they see CWR, senders react at most once per window;
//! * **DCTCP** — per-ACK CE feedback, `alpha = (1-g)alpha + g·F` per window,
//!   multiplicative reduction by `alpha/2`.
//!
//! Endpoints are *reactive state machines*: the network layer feeds them
//! segments and timer expiries and drains their outbox. They never touch the
//! event queue themselves, which keeps them trivially testable.

mod agent;
mod config;
mod intervals;
mod reassembly;
mod receiver;
mod rtt;
mod sender;

pub use agent::TcpAgent;
pub use config::{EcnMode, TcpConfig};
// Re-exported so downstream crates pick the controller without naming simcc.
pub use intervals::IntervalSet;
pub use reassembly::Reassembly;
pub use receiver::{Receiver, ReceiverStats};
pub use rtt::RttEstimator;
pub use sender::{Sender, SenderStats};
pub use simcc::{CcAlg, CongestionController};
