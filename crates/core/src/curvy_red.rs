//! Curvy RED (Briscoe) with ECN and the paper's protection modes.

use crate::config::CurvyRedConfig;
use crate::fifo::Fifo;
use netpacket::{
    packet_event, ConservationCheck, EnqueueOutcome, Packet, PacketKind, QueueDiscipline,
    QueueStats,
};
use simevent::{SimRng, SimTime};
use simtrace::{EventKind, TraceHandle, NO_QUEUE};
use std::collections::VecDeque;

/// Curvy RED: power-law marking on the **instantaneous** queue.
///
/// Briscoe's "Insights from Curvy RED" argues that classic RED's EWMA and
/// min/max thresholds are foot-guns (the frozen-EWMA bug PR 4 fixed in this
/// repo is a live specimen), and that a single convex curve over the
/// instantaneous queue is both simpler and better behaved:
///
/// * ECN marking probability `(q / range)^u`, implemented with the cached
///   power-of-random-queue trick: each arrival draws **one** uniform variate
///   into a small ring, and the decision compares `q / range` against the
///   maximum of the most recent `u` draws — `P(max of u uniforms < x) = x^u`,
///   so the marginal marking probability is exactly the power law without
///   ever calling `powf` on the hot path.
/// * Drop probability for non-ECT traffic is the **square** of the marking
///   probability (exponent `2u`, the maximum over the most recent `2u`
///   draws): drops stay rarer than marks at every operating point, which is
///   the curve's built-in version of the paper's observation that dropping
///   control packets is far more expensive than marking data.
///
/// The paper's [`crate::ProtectionMode`] applies to the drop curve exactly as
/// it does in [`crate::Red`]: exempted non-ECT packets are admitted unmarked.
#[derive(Debug)]
pub struct CurvyRed {
    cfg: CurvyRedConfig,
    fifo: Fifo,
    stats: QueueStats,
    conserve: ConservationCheck,
    rng: SimRng,
    /// Ring of the most recent `2u` uniform draws (the "cached randoms").
    recent: VecDeque<f64>,
    trace: TraceHandle,
    trace_q: u32,
}

impl CurvyRed {
    /// Build the queue. `seed` feeds the per-arrival uniform draws; identical
    /// configs, seeds and call sequences behave identically.
    pub fn new(cfg: CurvyRedConfig, seed: u64) -> Self {
        cfg.validate();
        let depth = 2 * cfg.mark_exponent as usize;
        CurvyRed {
            cfg,
            fifo: Fifo::new(),
            stats: QueueStats::default(),
            conserve: ConservationCheck::default(),
            rng: SimRng::new(seed),
            recent: VecDeque::with_capacity(depth),
            trace: TraceHandle::null(),
            trace_q: NO_QUEUE,
        }
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> &CurvyRedConfig {
        &self.cfg
    }

    /// Draw this arrival's uniform variate into the ring.
    fn push_draw(&mut self) {
        if self.recent.len() == 2 * self.cfg.mark_exponent as usize {
            self.recent.pop_front();
        }
        let r = self.rng.next_f64();
        self.recent.push_back(r);
    }

    /// Does the curve with exponent `n` select the current queue? True with
    /// probability `(q / range)^n`: compare against the max of the `n` most
    /// recent draws.
    fn curve_selects(&self, n: u32) -> bool {
        let x = self.fifo.len() as f64 / self.cfg.range_packets as f64;
        if x >= 1.0 {
            return true;
        }
        self.recent.iter().rev().take(n as usize).all(|&r| r < x)
    }

    fn accept(&mut self, mut packet: Packet, mark: bool, now: SimTime) -> EnqueueOutcome {
        let kind = PacketKind::of(&packet);
        if mark {
            packet.ecn = packet.ecn.marked();
        }
        if self.trace.is_enabled() {
            if mark {
                self.trace
                    .emit(packet_event(EventKind::Marked, now, self.trace_q, &packet));
            }
            self.trace.emit(packet_event(
                EventKind::Enqueued,
                now,
                self.trace_q,
                &packet,
            ));
        }
        let bytes = packet.wire_bytes();
        self.fifo.push(packet);
        self.conserve.on_admit(bytes);
        self.stats
            .on_enqueue(kind, bytes, mark, self.fifo.len(), self.fifo.bytes());
        self.debug_verify_conservation();
        if mark {
            EnqueueOutcome::EnqueuedMarked
        } else {
            EnqueueOutcome::Enqueued
        }
    }
}

impl QueueDiscipline for CurvyRed {
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome {
        let kind = PacketKind::of(&packet);
        if self.fifo.len() >= self.cfg.capacity_packets {
            self.stats.dropped_full.bump(kind);
            if self.trace.is_enabled() {
                self.trace.emit(packet_event(
                    EventKind::DroppedFull,
                    now,
                    self.trace_q,
                    &packet,
                ));
            }
            return EnqueueOutcome::DroppedFull;
        }
        self.push_draw();
        let u = self.cfg.mark_exponent;
        if self.cfg.ecn && packet.is_ect() {
            let mark = self.curve_selects(u);
            return self.accept(packet, mark, now);
        }
        // Non-ECT (or ECN disabled): the drop curve, exponent 2u.
        if !self.curve_selects(2 * u) {
            return self.accept(packet, false, now);
        }
        if self.cfg.ecn && self.cfg.protection.protects(&packet) {
            // The paper's modification: protected non-ECT packets are admitted
            // unmarked instead of early-dropped.
            return self.accept(packet, false, now);
        }
        self.stats.dropped_early.bump(kind);
        if self.trace.is_enabled() {
            self.trace.emit(packet_event(
                EventKind::DroppedEarly,
                now,
                self.trace_q,
                &packet,
            ));
        }
        EnqueueOutcome::DroppedEarly
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let p = self.fifo.pop()?;
        self.conserve.on_deliver(p.wire_bytes());
        self.stats.on_dequeue(PacketKind::of(&p), p.wire_bytes());
        if self.trace.is_enabled() {
            self.trace
                .emit(packet_event(EventKind::Dequeued, now, self.trace_q, &p));
        }
        self.debug_verify_conservation();
        Some(p)
    }

    fn len_packets(&self) -> u64 {
        self.fifo.len()
    }

    fn len_bytes(&self) -> u64 {
        self.fifo.bytes()
    }

    fn capacity_packets(&self) -> u64 {
        self.cfg.capacity_packets
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn snapshot_kinds(&self) -> [u64; 6] {
        let mut kinds = [0u64; 6];
        for p in self.fifo.iter() {
            kinds[PacketKind::of(p).index()] += 1;
        }
        kinds
    }

    fn name(&self) -> String {
        format!(
            "CurvyRED[{}](range={},u={},cap={},ecn={})",
            self.cfg.protection.label(),
            self.cfg.range_packets,
            self.cfg.mark_exponent,
            self.cfg.capacity_packets,
            self.cfg.ecn
        )
    }

    fn debug_verify_conservation(&self) {
        self.conserve
            .verify("CurvyRED", &self.stats, self.fifo.len(), self.fifo.bytes());
    }

    fn set_trace(&mut self, trace: TraceHandle, queue: u32) {
        self.trace = trace;
        self.trace_q = queue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionMode;
    use netpacket::{EcnCodepoint, FlowId, NodeId, PacketId, TcpFlags};

    fn data(id: u64, ecn: EcnCodepoint) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload: 1460,
            flags: TcpFlags::ACK,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    fn ack(id: u64) -> Packet {
        Packet {
            payload: 0,
            ecn: EcnCodepoint::NotEct,
            ..data(id, EcnCodepoint::NotEct)
        }
    }

    fn cfg(range: u64, cap: u64, protection: ProtectionMode) -> CurvyRedConfig {
        CurvyRedConfig {
            capacity_packets: cap,
            range_packets: range,
            mark_exponent: 2,
            ecn: true,
            protection,
        }
    }

    /// Fill to occupancy `occ` with ECT data (tolerating probabilistic drops
    /// on the way up, e.g. with ECN disabled).
    fn fill_to(q: &mut CurvyRed, occ: u64) {
        let mut i = 0u64;
        while q.len_packets() < occ {
            let _ = q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::ZERO);
            i += 1;
            assert!(i < 100_000, "fill did not converge");
        }
    }

    /// Hold occupancy at `occ` and probe with `n` further arrivals (ECT data
    /// or non-ECT ACKs); returns (marked-or-dropped count, accepted count).
    fn probe(q: &mut CurvyRed, occ: u64, n: u64, ect: bool) -> (u64, u64) {
        fill_to(q, occ);
        let mut signalled = 0;
        let mut accepted = 0;
        for i in 0..n {
            let p = if ect {
                data(10_000 + i, EcnCodepoint::Ect0)
            } else {
                ack(10_000 + i)
            };
            match q.enqueue(p, SimTime::ZERO) {
                EnqueueOutcome::EnqueuedMarked => {
                    signalled += 1;
                    accepted += 1;
                    q.dequeue(SimTime::ZERO);
                }
                EnqueueOutcome::DroppedEarly => signalled += 1,
                out => {
                    assert!(out.accepted());
                    accepted += 1;
                    q.dequeue(SimTime::ZERO);
                }
            }
        }
        (signalled, accepted)
    }

    #[test]
    fn empty_queue_never_signals() {
        let mut q = CurvyRed::new(cfg(20, 100, ProtectionMode::Default), 1);
        for i in 0..50 {
            let out = q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::ZERO);
            assert_eq!(out, EnqueueOutcome::Enqueued);
            q.dequeue(SimTime::ZERO);
        }
        assert_eq!(q.stats().marked.total(), 0);
        assert_eq!(q.stats().dropped_early.total(), 0);
    }

    #[test]
    fn at_range_marking_is_certain() {
        let mut q = CurvyRed::new(cfg(10, 100, ProtectionMode::Default), 1);
        let (signalled, _) = probe(&mut q, 10, 50, true);
        assert_eq!(signalled, 50, "q >= range must mark every ECT arrival");
        assert_eq!(q.stats().dropped_early.total(), 0, "ECT is never dropped");
    }

    #[test]
    fn marking_probability_follows_the_power_law() {
        // At q = range/2 with u = 2 the marking probability is 0.25; at
        // q = 0.9*range it is 0.81. Statistical check with wide margins.
        let run = |occ: u64| {
            let mut q = CurvyRed::new(cfg(100, 1000, ProtectionMode::Default), 42);
            let (signalled, _) = probe(&mut q, occ, 2000, true);
            signalled as f64 / 2000.0
        };
        let half = run(50);
        let high = run(90);
        assert!(
            (0.15..0.35).contains(&half),
            "P(mark) at range/2 should be ~0.25, got {half}"
        );
        assert!(
            (0.70..0.92).contains(&high),
            "P(mark) at 0.9*range should be ~0.81, got {high}"
        );
    }

    #[test]
    fn drop_curve_is_the_square_of_the_mark_curve() {
        // At q = range/2 with u = 2: P(mark) = 0.25, P(drop) = 0.0625.
        let run = |ect: bool| {
            let mut q = CurvyRed::new(cfg(100, 1000, ProtectionMode::Default), 42);
            let (signalled, _) = probe(&mut q, 50, 2000, ect);
            signalled as f64 / 2000.0
        };
        let marks = run(true);
        let drops = run(false);
        assert!(
            drops < marks / 2.0,
            "drop curve must lie well below the mark curve: {drops} vs {marks}"
        );
        assert!(
            (0.02..0.12).contains(&drops),
            "P(drop) at range/2 should be ~0.06, got {drops}"
        );
    }

    #[test]
    fn protection_exempts_acks_from_the_drop_curve() {
        let mut q = CurvyRed::new(cfg(10, 1000, ProtectionMode::AckSyn), 7);
        let (_, accepted) = probe(&mut q, 30, 200, false);
        assert_eq!(accepted, 200, "q >= range but every ACK must survive");
        assert_eq!(q.stats().dropped_early.total(), 0);
    }

    #[test]
    fn default_mode_drops_acks_above_range() {
        let mut q = CurvyRed::new(cfg(10, 1000, ProtectionMode::Default), 7);
        let (signalled, accepted) = probe(&mut q, 30, 200, false);
        assert_eq!(signalled, 200, "q >= range: drop curve is certain");
        assert_eq!(accepted, 0);
        assert_eq!(q.stats().dropped_early.get(PacketKind::PureAck), 200);
    }

    #[test]
    fn ecn_disabled_uses_drop_curve_for_ect_too() {
        let mut c = cfg(10, 1000, ProtectionMode::AckSyn);
        c.ecn = false;
        let mut q = CurvyRed::new(c, 7);
        // With ECN off the drop curve caps reachable occupancy at `range`.
        let (signalled, _) = probe(&mut q, 10, 100, true);
        assert_eq!(signalled, 100);
        assert_eq!(q.stats().marked.total(), 0, "no marking without ECN");
        assert!(q.stats().dropped_early.total() > 0);
    }

    #[test]
    fn tail_drop_on_full_buffer_trumps_the_curve() {
        let mut q = CurvyRed::new(cfg(10, 4, ProtectionMode::AckSyn), 1);
        for i in 0..4 {
            assert!(q.enqueue(ack(i), SimTime::ZERO).accepted());
        }
        assert_eq!(
            q.enqueue(ack(9), SimTime::ZERO),
            EnqueueOutcome::DroppedFull
        );
        assert_eq!(q.stats().dropped_full.total(), 1);
    }

    #[test]
    fn determinism_same_seed_same_decisions() {
        let run = |seed: u64| -> Vec<EnqueueOutcome> {
            let mut q = CurvyRed::new(cfg(20, 100, ProtectionMode::Default), seed);
            let mut outs = Vec::new();
            for i in 0..400 {
                let p = if i % 4 == 0 {
                    ack(i)
                } else {
                    data(i, EcnCodepoint::Ect0)
                };
                outs.push(q.enqueue(p, SimTime::from_nanos(i * 100)));
                if i % 3 == 0 {
                    q.dequeue(SimTime::from_nanos(i * 100 + 50));
                }
            }
            outs
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds should differ somewhere");
    }

    #[test]
    fn conservation_property() {
        let mut q = CurvyRed::new(cfg(5, 20, ProtectionMode::Default), 7);
        let mut offered = 0u64;
        for i in 0..300 {
            offered += 1;
            let p = if i % 3 == 0 {
                ack(i)
            } else {
                data(i, EcnCodepoint::Ect0)
            };
            let _ = q.enqueue(p, SimTime::from_nanos(i));
            if i % 2 == 0 {
                q.dequeue(SimTime::from_nanos(i));
            }
        }
        while q.dequeue(SimTime::ZERO).is_some() {}
        let s = q.stats();
        assert_eq!(s.enqueued.total() + s.dropped_total(), offered);
        assert_eq!(s.enqueued.total(), s.dequeued.total());
        assert_eq!(s.bytes_enqueued, s.bytes_dequeued);
    }
}
