//! Packet classification used by AQM statistics and protection predicates.

use crate::{Packet, TcpFlags};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The coarse classes the paper's analysis distinguishes at the switch queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Data-bearing segment (payload > 0). On ECN connections these are ECT.
    Data,
    /// Pure acknowledgement (no payload, ACK set, no SYN/FIN/RST) — Non-ECT.
    PureAck,
    /// Initial SYN.
    Syn,
    /// SYN-ACK reply.
    SynAck,
    /// FIN or FIN-ACK teardown segment.
    Fin,
    /// Anything else (RST, bare header anomalies).
    Other,
}

impl PacketKind {
    /// Classify a packet.
    pub fn of(p: &Packet) -> PacketKind {
        if p.flags.contains(TcpFlags::SYN) {
            if p.flags.contains(TcpFlags::ACK) {
                PacketKind::SynAck
            } else {
                PacketKind::Syn
            }
        } else if p.flags.contains(TcpFlags::FIN) {
            PacketKind::Fin
        } else if p.payload > 0 {
            PacketKind::Data
        } else if p.is_pure_ack() {
            PacketKind::PureAck
        } else {
            PacketKind::Other
        }
    }

    /// All kinds, for iterating stats tables.
    pub const ALL: [PacketKind; 6] = [
        PacketKind::Data,
        PacketKind::PureAck,
        PacketKind::Syn,
        PacketKind::SynAck,
        PacketKind::Fin,
        PacketKind::Other,
    ];

    /// Dense index for per-kind counters.
    pub fn index(self) -> usize {
        match self {
            PacketKind::Data => 0,
            PacketKind::PureAck => 1,
            PacketKind::Syn => 2,
            PacketKind::SynAck => 3,
            PacketKind::Fin => 4,
            PacketKind::Other => 5,
        }
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PacketKind::Data => "data",
            PacketKind::PureAck => "ack",
            PacketKind::Syn => "syn",
            PacketKind::SynAck => "syn-ack",
            PacketKind::Fin => "fin",
            PacketKind::Other => "other",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EcnCodepoint, FlowId, NodeId, PacketId};
    use simevent::SimTime;

    fn pkt(flags: TcpFlags, payload: u32) -> Packet {
        Packet {
            id: PacketId(0),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload,
            flags,
            ecn: EcnCodepoint::NotEct,
            sack: crate::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn classify_all_kinds() {
        assert_eq!(PacketKind::of(&pkt(TcpFlags::ACK, 1460)), PacketKind::Data);
        assert_eq!(PacketKind::of(&pkt(TcpFlags::ACK, 0)), PacketKind::PureAck);
        assert_eq!(PacketKind::of(&pkt(TcpFlags::SYN, 0)), PacketKind::Syn);
        assert_eq!(
            PacketKind::of(&pkt(TcpFlags::ecn_setup_syn(), 0)),
            PacketKind::Syn
        );
        assert_eq!(
            PacketKind::of(&pkt(TcpFlags::SYN | TcpFlags::ACK, 0)),
            PacketKind::SynAck
        );
        assert_eq!(
            PacketKind::of(&pkt(TcpFlags::FIN | TcpFlags::ACK, 0)),
            PacketKind::Fin
        );
        assert_eq!(PacketKind::of(&pkt(TcpFlags::RST, 0)), PacketKind::Other);
    }

    #[test]
    fn ece_does_not_change_kind() {
        assert_eq!(
            PacketKind::of(&pkt(TcpFlags::ACK | TcpFlags::ECE, 0)),
            PacketKind::PureAck
        );
        assert_eq!(
            PacketKind::of(&pkt(TcpFlags::ACK | TcpFlags::ECE, 1460)),
            PacketKind::Data
        );
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 6];
        for k in PacketKind::ALL {
            assert!(!seen[k.index()], "duplicate index");
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_labels() {
        assert_eq!(PacketKind::PureAck.to_string(), "ack");
        assert_eq!(PacketKind::SynAck.to_string(), "syn-ack");
    }
}
