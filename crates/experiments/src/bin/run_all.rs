//! Regenerate EVERYTHING: Tables I–II, Figure 1, Figures 2–4 (both panels
//! each) and the headline-claims table, writing raw data under `results/`.
//!
//! Usage: `run_all [--tiny] [--fresh] [--seed N]`

use experiments::cc_matrix::{cc_claims, check_cc_claims, render_cc_matrix, run_cc_matrix};
use experiments::claims::{check_claims, claims, render_claims};
use experiments::cli::sweep_from_args;
use experiments::figures::{fig1, fig2, fig3, fig4, table1, table2};
use experiments::report::{render_panel, write_json};
use experiments::tiny_buffer::{
    check_tiny_buffer_claims, render_tiny_buffer, run_tiny_buffer, tiny_buffer_claims,
};
use simevent::SimDuration;
use std::path::Path;

fn main() {
    println!("{}", table1());
    println!("{}", table2());

    // Fig. 1 — queue snapshot under stock RED.
    let cfg = experiments::cli::cli_args().scenario();
    eprintln!("[run_all] Fig. 1 queue snapshot...");
    let f1 = fig1(&cfg, SimDuration::from_micros(200));
    println!("== Fig. 1 — congested queue composition (RED default, shallow) ==");
    println!(
        "mean occupancy {:.1} pkts, peak {} pkts, data fraction {:.1}%",
        f1.mean_occupancy,
        f1.peak_occupancy,
        f1.data_fraction * 100.0
    );
    println!(
        "early drops: {} ACKs, {} SYN/SYN-ACK, {} data ({}% of early drops hit ACKs)\n",
        f1.acks_early_dropped,
        f1.handshake_early_dropped,
        f1.data_early_dropped,
        (f1.ack_share_of_early_drops * 100.0).round()
    );
    let _ = write_json(&f1, Path::new("results/fig1.json"));

    // Figures 2–4 from one sweep.
    let res = sweep_from_args();
    for panel in fig2(&res).into_iter().chain(fig3(&res)).chain(fig4(&res)) {
        println!("{}", render_panel(&panel));
        let _ = write_json(
            &panel,
            Path::new("results")
                .join(format!("{}.json", panel.id))
                .as_path(),
        );
    }

    // Controller x queue matrix (pinned deterministic point; only the seed
    // flows through from the CLI).
    eprintln!("[run_all] controller x queue matrix...");
    let matrix = run_cc_matrix(&cfg);
    println!("{}", render_cc_matrix(&matrix));
    let _ = write_json(&matrix, Path::new("results/cc_matrix.json"));
    let cc = cc_claims(&matrix);
    let _ = write_json(&cc, Path::new("results/cc_claims.json"));

    // Tiny-buffer protection sweep (pinned deterministic grid, like the
    // matrix: only the seed flows through from the CLI).
    eprintln!("[run_all] tiny-buffer protection sweep...");
    let tb = run_tiny_buffer(&cfg);
    println!("{}", render_tiny_buffer(&tb));
    let _ = write_json(&tb, Path::new("results/tiny_buffer.json"));
    let tbc = tiny_buffer_claims(&tb);
    let _ = write_json(&tbc, Path::new("results/tiny_buffer_claims.json"));

    // Headline claims, all three dimensions. Any claim that fails its
    // direction-of-effect gate makes the whole run exit nonzero so CI
    // catches the regression.
    let c = claims(&res);
    println!("{}", render_claims(&c));
    let _ = write_json(&c, Path::new("results/claims.json"));
    let mut failures = check_claims(&c);
    failures.extend(check_cc_claims(&cc));
    failures.extend(check_tiny_buffer_claims(&tbc));
    if !failures.is_empty() {
        eprintln!("[run_all] {} claim check(s) FAILED:", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("all claim gates passed");
}
