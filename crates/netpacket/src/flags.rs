//! TCP header flags, including the ECN flags of paper Table I.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// TCP header flag bits.
///
/// The paper's Table I lists the two ECN flags in the TCP header:
///
/// | codepoint | name | description                 |
/// |-----------|------|-----------------------------|
/// | `01`      | ECE  | ECN-Echo flag               |
/// | `10`      | CWR  | Congestion Window Reduced   |
///
/// We carry the full flag byte (standard RFC 793 bit positions, with ECE and
/// CWR in their RFC 3168 positions) so that the AQM protection predicates can
/// dispatch on real header state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN — sender is finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN — synchronise sequence numbers (connection setup).
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST — reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH — push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK — the acknowledgement number is valid.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// ECE — ECN-Echo (paper Table I, codepoint 01): echoes a received CE mark
    /// back to the sender; also used during the handshake to negotiate ECN.
    pub const ECE: TcpFlags = TcpFlags(0x40);
    /// CWR — Congestion Window Reduced (paper Table I, codepoint 10): sender
    /// tells the receiver it has reacted, stopping the ECE echo.
    pub const CWR: TcpFlags = TcpFlags(0x80);

    /// Construct from a raw flag byte.
    pub const fn from_bits(bits: u8) -> TcpFlags {
        TcpFlags(bits)
    }

    /// The raw flag byte.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// True if every flag in `other` is also set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any flag in `other` is set in `self`.
    pub const fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Set the flags in `other`.
    pub fn insert(&mut self, other: TcpFlags) {
        self.0 |= other.0;
    }

    /// Clear the flags in `other`.
    pub fn remove(&mut self, other: TcpFlags) {
        self.0 &= !other.0;
    }

    /// Copy of `self` with `other` also set.
    pub const fn with(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// A SYN segment with ECN negotiation, as sent by an ECN-capable client:
    /// `SYN + ECE + CWR` (RFC 3168 §6.1.1; the paper notes "SYN packets have
    /// their ECE-bit marked ... to signalize a ECT-capable connection").
    pub const fn ecn_setup_syn() -> TcpFlags {
        TcpFlags(Self::SYN.0 | Self::ECE.0 | Self::CWR.0)
    }

    /// An ECN-capable SYN-ACK: `SYN + ACK + ECE` (RFC 3168 §6.1.1).
    pub const fn ecn_setup_syn_ack() -> TcpFlags {
        TcpFlags(Self::SYN.0 | Self::ACK.0 | Self::ECE.0)
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut put = |f: &mut fmt::Formatter<'_>, s: &str| -> fmt::Result {
            if !first {
                f.write_str("|")?;
            }
            first = false;
            f.write_str(s)
        };
        let pairs = [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::ECE, "ECE"),
            (TcpFlags::CWR, "CWR"),
        ];
        for (flag, name) in pairs {
            if self.contains(flag) {
                put(f, name)?;
            }
        }
        if first {
            f.write_str("-")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table I: ECE and CWR are distinct single-bit codepoints.
    #[test]
    fn table1_ece_cwr_distinct_bits() {
        assert_eq!(TcpFlags::ECE.bits().count_ones(), 1);
        assert_eq!(TcpFlags::CWR.bits().count_ones(), 1);
        assert_eq!(TcpFlags::ECE.bits() & TcpFlags::CWR.bits(), 0);
    }

    #[test]
    fn table1_rfc3168_positions() {
        // RFC 3168: CWR is bit 7, ECE bit 6 of the flag byte.
        assert_eq!(TcpFlags::CWR.bits(), 0x80);
        assert_eq!(TcpFlags::ECE.bits(), 0x40);
    }

    #[test]
    fn contains_and_intersects() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::SYN | TcpFlags::ECE));
        assert!(f.intersects(TcpFlags::ACK | TcpFlags::ECE));
        assert!(!f.intersects(TcpFlags::ECE));
    }

    #[test]
    fn insert_remove() {
        let mut f = TcpFlags::ACK;
        f.insert(TcpFlags::ECE);
        assert!(f.contains(TcpFlags::ACK | TcpFlags::ECE));
        f.remove(TcpFlags::ECE);
        assert_eq!(f, TcpFlags::ACK);
    }

    #[test]
    fn ecn_handshake_flag_patterns() {
        let syn = TcpFlags::ecn_setup_syn();
        assert!(syn.contains(TcpFlags::SYN));
        assert!(
            syn.contains(TcpFlags::ECE),
            "paper: SYN carries ECE to request ECN"
        );
        assert!(syn.contains(TcpFlags::CWR));
        assert!(!syn.contains(TcpFlags::ACK));

        let syn_ack = TcpFlags::ecn_setup_syn_ack();
        assert!(syn_ack.contains(TcpFlags::SYN | TcpFlags::ACK | TcpFlags::ECE));
        assert!(!syn_ack.contains(TcpFlags::CWR));
    }

    #[test]
    fn display_formats() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ECE).to_string(), "SYN|ECE");
        assert_eq!(TcpFlags::EMPTY.to_string(), "-");
    }

    #[test]
    fn roundtrip_bits() {
        for bits in 0u8..=255 {
            assert_eq!(TcpFlags::from_bits(bits).bits(), bits);
        }
    }
}
