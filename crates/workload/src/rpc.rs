//! Closed-loop RPC: each client keeps exactly one fan-out request in flight,
//! thinks for a fixed time after it completes, then issues the next.
//!
//! A request is a small coflow: `fanout` request flows from the client to
//! distinct servers, each answered by a response flow back. The request is
//! complete when the **last** response lands (partition-aggregate
//! semantics), and the client's observed latency is compared against a
//! service-level objective. Because requests, responses, and their ACKs are
//! all short — SYNs and pure ACKs dominate the packet mix — this workload
//! is almost entirely non-ECT traffic: under the paper's unprotected
//! RED-mimic a single early-dropped SYN turns a sub-millisecond RPC into a
//! one-second outlier, which is exactly what the SLO violation counter
//! surfaces.

use crate::model::{class_of, FlowSpec, Launcher, TrafficModel};
use netpacket::{FlowId, NodeId};
use serde::{Deserialize, Serialize};
use simevent::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// Timer tokens: bits 60..63 = kind.
const KIND_NEXT: u64 = 4;
const KIND_RESPONSE: u64 = 5;

fn token(client: u32) -> u64 {
    (KIND_NEXT << 60) | u64::from(client)
}

fn response_token(request: u64, server: NodeId) -> u64 {
    debug_assert!(request < (1 << 32) && server.0 < (1 << 16));
    (KIND_RESPONSE << 60) | (request << 16) | u64::from(server.0)
}

/// Configuration of an [`Rpc`] workload.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RpcConfig {
    /// Client hosts (hosts `0..clients`); servers are drawn from the rest.
    pub clients: u32,
    /// Servers contacted per request.
    pub fanout: u32,
    /// Bytes of each request flow (client → server).
    pub request_bytes: u64,
    /// Bytes of each response flow (server → client).
    pub response_bytes: u64,
    /// Requests each client issues before stopping.
    pub requests_per_client: u32,
    /// Client-side idle time between a completion and the next request.
    pub think_time: SimDuration,
    /// Server-side service time before the response is sent, jittered
    /// uniformly over `[0, service_jitter]`. Real fan-out services always
    /// have straggling servers; the stragglers' response SYNs are the ones
    /// that meet a queue the fast servers' responses already filled.
    pub service_jitter: SimDuration,
    /// Latency objective a request is judged against.
    pub slo: SimDuration,
    /// Seed for server selection.
    pub seed: u64,
}

/// Where an in-flight flow sits in the request's lifecycle.
#[derive(Debug, Clone, Copy)]
struct Member {
    request: u64,
    server: NodeId,
    is_request: bool,
}

#[derive(Debug)]
struct OpenRequest {
    client: u32,
    started: SimTime,
    responses_launched: u32,
    members_done: u32,
}

/// Closed-loop RPC generator. Each request is one coflow (group id =
/// global request counter).
#[derive(Debug)]
pub struct Rpc {
    cfg: RpcConfig,
    rng: SimRng,
    flows: BTreeMap<FlowId, Member>,
    open: BTreeMap<u64, OpenRequest>,
    next_request: u64,
    issued_per_client: Vec<u32>,
    stats: RpcStats,
}

/// Per-request latency record of an [`Rpc`] run.
#[derive(Debug, Clone, Default)]
pub struct RpcStats {
    latencies_ns: Vec<u64>,
    violations: u64,
}

impl RpcStats {
    /// Completed requests.
    pub fn requests(&self) -> u64 {
        self.latencies_ns.len() as u64
    }

    /// Requests that exceeded the SLO.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Reduce to the summary reported by the experiments bin.
    pub fn summary(&self, slo: SimDuration) -> RpcSummary {
        let mut us: Vec<f64> = self
            .latencies_ns
            .iter()
            .map(|&ns| ns as f64 / 1e3)
            .collect();
        us.sort_by(f64::total_cmp);
        let n = us.len();
        let pct = |q: f64| -> f64 {
            if n == 0 {
                return 0.0;
            }
            let rank = q * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            us[lo] + (us[hi] - us[lo]) * (rank - lo as f64)
        };
        RpcSummary {
            requests: n as u64,
            latency_mean_us: if n == 0 {
                0.0
            } else {
                us.iter().sum::<f64>() / n as f64
            },
            latency_p50_us: pct(0.50),
            latency_p95_us: pct(0.95),
            latency_p99_us: pct(0.99),
            latency_max_us: us.last().copied().unwrap_or(0.0),
            slo_us: slo.as_micros_f64(),
            slo_violations: self.violations,
        }
    }
}

/// Request-latency summary of an [`Rpc`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcSummary {
    /// Requests completed.
    pub requests: u64,
    /// Mean request latency, microseconds.
    pub latency_mean_us: f64,
    /// Median request latency, microseconds.
    pub latency_p50_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub latency_p95_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub latency_p99_us: f64,
    /// Worst request latency, microseconds.
    pub latency_max_us: f64,
    /// The objective the run was judged against, microseconds.
    pub slo_us: f64,
    /// Requests slower than the objective.
    pub slo_violations: u64,
}

impl Rpc {
    /// A generator that has not issued anything yet.
    pub fn new(cfg: RpcConfig) -> Self {
        assert!(
            cfg.clients > 0 && cfg.fanout > 0 && cfg.requests_per_client > 0,
            "degenerate RPC config"
        );
        Rpc {
            cfg,
            rng: SimRng::new(cfg.seed).fork(0x59c),
            flows: BTreeMap::new(),
            open: BTreeMap::new(),
            next_request: 0,
            issued_per_client: vec![0; cfg.clients as usize],
            stats: RpcStats::default(),
        }
    }

    /// Latency records accumulated so far.
    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }

    /// The run's summary against the configured SLO.
    pub fn summary(&self) -> RpcSummary {
        self.stats.summary(self.cfg.slo)
    }

    fn issue_request(&mut self, client: u32, l: &mut dyn Launcher, now: SimTime) {
        let request = self.next_request;
        self.next_request += 1;
        self.issued_per_client[client as usize] += 1;
        self.open.insert(
            request,
            OpenRequest {
                client,
                started: now,
                responses_launched: 0,
                members_done: 0,
            },
        );
        // Draw `fanout` distinct servers from the non-client hosts by a
        // partial Fisher–Yates over the candidate list.
        let mut candidates: Vec<u32> = (0..l.num_hosts()).filter(|&h| h != client).collect();
        assert!(
            candidates.len() >= self.cfg.fanout as usize,
            "not enough hosts for the configured fanout"
        );
        for i in 0..self.cfg.fanout as usize {
            let j = i + self.rng.next_below((candidates.len() - i) as u64) as usize;
            candidates.swap(i, j);
            let server = NodeId(candidates[i]);
            let flow = l.start_flow(
                FlowSpec {
                    src: NodeId(client),
                    dst: server,
                    bytes: self.cfg.request_bytes,
                    class: class_of(self.cfg.request_bytes),
                    coflow: Some(request),
                },
                now,
            );
            self.flows.insert(
                flow,
                Member {
                    request,
                    server,
                    is_request: true,
                },
            );
        }
    }
}

impl TrafficModel for Rpc {
    fn on_start(&mut self, l: &mut dyn Launcher, now: SimTime) {
        assert!(
            l.num_hosts() > self.cfg.fanout,
            "need fanout + 1 hosts (servers + a client)"
        );
        assert!(self.cfg.clients <= l.num_hosts(), "more clients than hosts");
        for client in 0..self.cfg.clients {
            self.issue_request(client, l, now);
        }
    }

    fn on_flow_complete(&mut self, flow: FlowId, l: &mut dyn Launcher, now: SimTime) {
        let member = self.flows.remove(&flow).expect("unknown RPC flow");
        let req = self
            .open
            .get_mut(&member.request)
            .expect("flow for a closed request");
        req.members_done += 1;
        if member.is_request {
            // The server got the full request: answer on the same coflow
            // after its (jittered) service time.
            let service = self.rng.next_below(self.cfg.service_jitter.as_nanos() + 1);
            l.set_timer(
                now + SimDuration::from_nanos(service),
                response_token(member.request, member.server),
            );
            return;
        }
        if req.members_done == 2 * self.cfg.fanout {
            let req = self.open.remove(&member.request).unwrap();
            let latency = now.since(req.started);
            self.stats.latencies_ns.push(latency.as_nanos());
            if latency > self.cfg.slo {
                self.stats.violations += 1;
            }
            if self.issued_per_client[req.client as usize] < self.cfg.requests_per_client {
                l.set_timer(now + self.cfg.think_time, token(req.client));
            }
        }
    }

    fn on_timer(&mut self, tok: u64, l: &mut dyn Launcher, now: SimTime) {
        match tok >> 60 {
            KIND_NEXT => {
                let client = (tok & 0xffff_ffff) as u32;
                self.issue_request(client, l, now);
            }
            KIND_RESPONSE => {
                let request = (tok >> 16) & 0xffff_ffff;
                let server = NodeId((tok & 0xffff) as u32);
                let req = self
                    .open
                    .get_mut(&request)
                    .expect("response timer for a closed request");
                let flow = l.start_flow(
                    FlowSpec {
                        src: server,
                        dst: NodeId(req.client),
                        bytes: self.cfg.response_bytes,
                        class: class_of(self.cfg.response_bytes),
                        coflow: Some(request),
                    },
                    now,
                );
                self.flows.insert(
                    flow,
                    Member {
                        request,
                        server,
                        is_request: false,
                    },
                );
                req.responses_launched += 1;
                if req.responses_launched == self.cfg.fanout {
                    l.seal_coflow(request);
                }
            }
            kind => panic!("unknown RPC timer token kind {kind}"),
        }
    }

    fn done(&self) -> bool {
        self.open.is_empty()
            && self
                .issued_per_client
                .iter()
                .all(|&n| n == self.cfg.requests_per_client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::mock::MockLauncher;

    fn cfg() -> RpcConfig {
        RpcConfig {
            clients: 2,
            fanout: 3,
            request_bytes: 2_000,
            response_bytes: 32_000,
            requests_per_client: 2,
            think_time: SimDuration::from_micros(500),
            service_jitter: SimDuration::from_micros(200),
            slo: SimDuration::from_millis(10),
            seed: 11,
        }
    }

    /// Drive a full closed loop against the mock, completing every flow
    /// `step` after it starts.
    fn run(cfg: RpcConfig, step: SimDuration) -> (Rpc, MockLauncher) {
        let mut m = Rpc::new(cfg);
        let mut l = MockLauncher::new(8);
        m.on_start(&mut l, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut timers_fired = 0;
        while !m.done() {
            now += step;
            while let Some(&id) = m.flows.keys().next() {
                m.on_flow_complete(id, &mut l, now);
            }
            while timers_fired < l.timers.len() {
                let (at, tok) = l.timers[timers_fired];
                timers_fired += 1;
                now = now.max(at);
                m.on_timer(tok, &mut l, now);
            }
        }
        (m, l)
    }

    #[test]
    fn fanout_hits_distinct_servers() {
        let mut m = Rpc::new(cfg());
        let mut l = MockLauncher::new(8);
        m.on_start(&mut l, SimTime::ZERO);
        assert_eq!(l.flows.len(), 6, "fanout flows per client");
        for client in 0..2u32 {
            let mut dsts: Vec<u32> = l
                .flows
                .iter()
                .filter(|f| f.src == NodeId(client))
                .map(|f| f.dst.0)
                .collect();
            assert_eq!(dsts.len(), 3);
            dsts.sort_unstable();
            dsts.dedup();
            assert_eq!(dsts.len(), 3, "servers must be distinct");
            assert!(!dsts.contains(&client), "a client never serves itself");
        }
    }

    #[test]
    fn closed_loop_completes_all_requests() {
        let (m, l) = run(cfg(), SimDuration::from_micros(100));
        assert_eq!(m.stats().requests(), 4, "2 clients x 2 requests");
        assert_eq!(m.stats().violations(), 0);
        // 4 requests x (3 requests + 3 responses) flows.
        assert_eq!(l.flows.len(), 24);
        let mut sealed = l.sealed.clone();
        sealed.sort_unstable();
        assert_eq!(sealed, vec![0, 1, 2, 3]);
        let s = m.summary();
        assert_eq!(s.requests, 4);
        assert!(s.latency_p99_us >= s.latency_p50_us);
    }

    #[test]
    fn slow_requests_violate_slo() {
        let mut c = cfg();
        c.slo = SimDuration::from_micros(50);
        let (m, _) = run(c, SimDuration::from_micros(100));
        assert_eq!(m.stats().violations(), 4, "every request missed the SLO");
    }

    #[test]
    fn same_seed_same_servers() {
        let mut a = MockLauncher::new(8);
        let mut b = MockLauncher::new(8);
        Rpc::new(cfg()).on_start(&mut a, SimTime::ZERO);
        Rpc::new(cfg()).on_start(&mut b, SimTime::ZERO);
        assert_eq!(a.flows, b.flows);
    }
}
