//! Application combinators and auxiliary workloads.
//!
//! * [`PairApp`] runs two applications on the same network — e.g. a Terasort
//!   job (primary) plus a stream of latency probes (secondary). Useful for
//!   the paper's motivating scenario: latency-sensitive services co-located
//!   with Hadoop.
//! * [`LatencyProbes`] periodically starts small request-sized flows between
//!   rotating host pairs and records their flow completion times.
//!
//! Token-space contract: applications must not use bit 63 of their app-timer
//! tokens; `PairApp` claims it to route timers to the secondary application.

use crate::network::Network;
use crate::sim::Application;
use netpacket::{FlowId, NodeId};
use simevent::{SimDuration, SimTime};
use simmetrics::LatencyHistogram;
use std::collections::BTreeSet;
use tcpstack::TcpConfig;

const SECONDARY_BIT: u64 = 1 << 63;

/// Runs `primary` and `secondary` side by side. Flow completions are offered
/// to both (each application tracks the flows it started); the simulation is
/// done when the **primary** is done — the secondary is background load.
#[derive(Debug)]
pub struct PairApp<A, B> {
    /// The workload that decides completion.
    pub primary: A,
    /// Background application.
    pub secondary: B,
}

impl<A: Application, B: Application> PairApp<A, B> {
    /// Combine two applications.
    pub fn new(primary: A, secondary: B) -> Self {
        PairApp { primary, secondary }
    }
}

impl<A: Application, B: Application> Application for PairApp<A, B> {
    fn on_start(&mut self, net: &mut Network, now: SimTime) {
        self.primary.on_start(net, now);
        let before = net.take_pending_token_snapshot();
        self.secondary.on_start(net, now);
        net.tag_new_app_timers(before, SECONDARY_BIT);
    }

    fn on_flow_complete(&mut self, flow: FlowId, net: &mut Network, now: SimTime) {
        self.primary.on_flow_complete(flow, net, now);
        let before = net.take_pending_token_snapshot();
        self.secondary.on_flow_complete(flow, net, now);
        net.tag_new_app_timers(before, SECONDARY_BIT);
    }

    fn on_timer(&mut self, token: u64, net: &mut Network, now: SimTime) {
        if token & SECONDARY_BIT != 0 {
            let before = net.take_pending_token_snapshot();
            self.secondary.on_timer(token & !SECONDARY_BIT, net, now);
            net.tag_new_app_timers(before, SECONDARY_BIT);
        } else {
            self.primary.on_timer(token, net, now);
        }
    }

    fn done(&self, net: &Network) -> bool {
        self.primary.done(net)
    }
}

/// Background latency probes: every `period`, a `bytes`-sized flow starts
/// from host `i % n` to host `(i+1) % n`. Models the small request/response
/// traffic of co-located low-latency services (paper §I).
#[derive(Debug)]
pub struct LatencyProbes {
    /// Probe payload size.
    pub bytes: u64,
    /// Interval between probe starts.
    pub period: SimDuration,
    /// Stop launching probes after this many (0 = unlimited).
    pub max_probes: u64,
    /// Transport for probe flows.
    pub tcp: TcpConfig,
    hosts: u32,
    launched: u64,
    my_flows: BTreeSet<FlowId>,
    fct: LatencyHistogram,
    fct_samples: Vec<SimDuration>,
}

impl LatencyProbes {
    /// Probes over a cluster of `hosts` hosts.
    pub fn new(hosts: u32, bytes: u64, period: SimDuration, tcp: TcpConfig) -> Self {
        assert!(hosts >= 2, "probes need at least two hosts");
        assert!(period > SimDuration::ZERO);
        LatencyProbes {
            bytes,
            period,
            max_probes: 0,
            tcp,
            hosts,
            launched: 0,
            my_flows: BTreeSet::new(),
            fct: LatencyHistogram::new(),
            fct_samples: Vec::new(),
        }
    }

    /// Completed-probe flow-completion-time histogram.
    pub fn fct(&self) -> &LatencyHistogram {
        &self.fct
    }

    /// Raw FCT samples, in completion order.
    pub fn fct_samples(&self) -> &[SimDuration] {
        &self.fct_samples
    }

    /// Probes completed so far.
    pub fn completed(&self) -> u64 {
        self.fct.count()
    }

    /// Probes started so far.
    pub fn launched(&self) -> u64 {
        self.launched
    }

    fn launch(&mut self, net: &mut Network, now: SimTime) {
        let i = self.launched as u32;
        let src = NodeId(i % self.hosts);
        let dst = NodeId((i + 1) % self.hosts);
        let flow = net.add_flow(src, dst, self.bytes, self.tcp.clone(), now);
        self.my_flows.insert(flow);
        self.launched += 1;
    }
}

impl Application for LatencyProbes {
    fn on_start(&mut self, net: &mut Network, now: SimTime) {
        net.schedule_app_timer(now + self.period, 0);
    }

    fn on_flow_complete(&mut self, flow: FlowId, net: &mut Network, now: SimTime) {
        if self.my_flows.remove(&flow) {
            if let Some(rec) = net.flow(flow) {
                let fct = now.since(rec.started);
                self.fct.record(fct);
                self.fct_samples.push(fct);
            }
        }
    }

    fn on_timer(&mut self, _token: u64, net: &mut Network, now: SimTime) {
        if self.max_probes == 0 || self.launched < self.max_probes {
            self.launch(net, now);
            net.schedule_app_timer(now + self.period, 0);
        }
    }

    /// Probes never finish on their own: they are background load for a
    /// [`PairApp`] primary. (Standalone use would run to the time limit.)
    fn done(&self, _net: &Network) -> bool {
        false
    }
}

/// Jain's fairness index over a set of positive values:
/// `(Σx)² / (n · Σx²)`; 1.0 = perfectly fair, 1/n = maximally unfair.
pub fn jain_fairness(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[5.0, 5.0, 5.0]), 1.0);
        let unfair = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!(
            (unfair - 0.25).abs() < 1e-12,
            "one-of-four gets everything: {unfair}"
        );
        let mid = jain_fairness(&[2.0, 1.0]);
        assert!(mid > 0.5 && mid < 1.0);
    }
}
