//! The receiving endpoint: reassembly, ACK generation, ECN/DCTCP echo.

use crate::agent::TcpAgent;
use crate::config::{EcnMode, TcpConfig};
use crate::reassembly::Reassembly;
use netpacket::{EcnCodepoint, FlowId, NodeId, Packet, PacketId, TcpFlags};
use serde::{Deserialize, Serialize};
use simevent::SimTime;

/// Counters exposed for experiment reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceiverStats {
    /// Data segments that arrived (including duplicates).
    pub segments_received: u64,
    /// Data segments that arrived CE-marked.
    pub ce_received: u64,
    /// ACKs emitted.
    pub acks_sent: u64,
    /// ACKs emitted with the ECE flag set (congestion echo).
    pub ece_acks_sent: u64,
    /// SYN-ACK (re)transmissions.
    pub syn_acks_sent: u64,
}

/// The passive end of a connection: pre-attached like an NS-2 sink, it
/// replies to the SYN, acknowledges data cumulatively, and echoes congestion
/// per the configured [`EcnMode`].
///
/// ECN echo rules implemented:
/// * **Classic ECN (RFC 3168)**: a CE-marked data segment latches ECE on all
///   subsequent ACKs until a segment carrying CWR arrives.
/// * **DCTCP**: ACKs reflect the CE state of the segments they cover, with
///   the DCTCP delayed-ACK state machine (an ACK is flushed immediately when
///   the CE state flips, so the sender sees an exact mark sequence).
#[derive(Debug)]
pub struct Receiver {
    cfg: TcpConfig,
    flow: FlowId,
    /// This endpoint's address (the data's destination).
    local: NodeId,
    /// The sender's address.
    peer: NodeId,
    established: bool,
    /// ECN agreed on the handshake.
    ecn_on: bool,
    reassembly: Reassembly,

    /// Classic-ECN latch: echo ECE until CWR observed.
    ece_latch: bool,
    /// DCTCP: CE state of the most recent segment run.
    dctcp_ce_state: bool,

    /// Delayed-ACK accounting.
    unacked_segments: u32,
    delack_deadline: Option<SimTime>,
    /// SYN-ACK retransmission timer while the handshake is incomplete.
    synack_deadline: Option<SimTime>,
    synack_backoff: u32,
    syn_seen: bool,
    /// Whether the peer requested ECN on its SYN.
    peer_wants_ecn: bool,

    outbox: Vec<Packet>,
    pkt_counter: u32,
    stats: ReceiverStats,
}

impl Receiver {
    /// Attach a receiver for `flow` at `local`, expecting data from `peer`.
    pub fn new(flow: FlowId, local: NodeId, peer: NodeId, cfg: TcpConfig) -> Self {
        cfg.validate();
        Receiver {
            cfg,
            flow,
            local,
            peer,
            established: false,
            ecn_on: false,
            reassembly: Reassembly::new(1), // data starts at seq 1 (SYN takes 0)
            ece_latch: false,
            dctcp_ce_state: false,
            unacked_segments: 0,
            delack_deadline: None,
            synack_deadline: None,
            synack_backoff: 0,
            syn_seen: false,
            peer_wants_ecn: false,
            outbox: Vec::new(),
            pkt_counter: 0,
            stats: ReceiverStats::default(),
        }
    }

    /// Contiguous bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        self.reassembly.rcv_nxt().saturating_sub(1)
    }

    /// True once the handshake is complete (explicitly or implied by data).
    pub fn is_established(&self) -> bool {
        self.established
    }

    /// True if ECN was negotiated.
    pub fn ecn_negotiated(&self) -> bool {
        self.ecn_on
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ReceiverStats {
        &self.stats
    }

    fn next_id(&mut self) -> PacketId {
        self.pkt_counter += 1;
        // High bit distinguishes receiver-side ids from the sender's.
        PacketId((1 << 63) | (self.flow.0 << 20) | self.pkt_counter as u64)
    }

    fn send_syn_ack(&mut self, now: SimTime) {
        let flags = if self.ecn_on {
            TcpFlags::ecn_setup_syn_ack()
        } else {
            TcpFlags::SYN | TcpFlags::ACK
        };
        let pkt = Packet {
            id: self.next_id(),
            flow: self.flow,
            src: self.local,
            dst: self.peer,
            seq: 0, // receiver's ISS
            ack: 1, // acknowledges the peer's SYN
            payload: 0,
            flags,
            // SYN-ACKs are never ECT (paper §II-B) — except under ECN++.
            ecn: if self.cfg.ect_control_packets && self.ecn_on {
                EcnCodepoint::Ect0
            } else {
                EcnCodepoint::NotEct
            },
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: now,
        };
        self.outbox.push(pkt);
        self.stats.syn_acks_sent += 1;
        // Arm/refresh the retransmission timer with exponential backoff.
        let rto = self
            .cfg
            .initial_rto
            .saturating_mul(1u64 << self.synack_backoff.min(16))
            .min(self.cfg.max_rto);
        self.synack_deadline = Some(now + rto);
    }

    fn echo_ece(&self) -> bool {
        if !self.ecn_on {
            return false;
        }
        match self.cfg.ecn {
            EcnMode::Off => false,
            EcnMode::Ecn => self.ece_latch,
            EcnMode::Dctcp => self.dctcp_ce_state,
        }
    }

    fn send_ack(&mut self, now: SimTime) {
        let mut flags = TcpFlags::ACK;
        if self.echo_ece() {
            flags.insert(TcpFlags::ECE);
            self.stats.ece_acks_sent += 1;
        }
        // SACK option: report up to three out-of-order islands.
        let mut sack = netpacket::SackBlocks::EMPTY;
        if self.cfg.sack {
            for (s, e) in self.reassembly.islands().take(3) {
                sack.push(s, e);
            }
        }
        let pkt = Packet {
            id: self.next_id(),
            flow: self.flow,
            src: self.local,
            dst: self.peer,
            seq: 1, // receiver sends no data; its seq is parked after the SYN
            ack: self.reassembly.rcv_nxt(),
            payload: 0,
            flags,
            // Pure ACKs are never ECT — the crux — except under ECN++.
            ecn: if self.cfg.ect_control_packets && self.ecn_on {
                EcnCodepoint::Ect0
            } else {
                EcnCodepoint::NotEct
            },
            sack,
            sent_at: now,
        };
        self.outbox.push(pkt);
        self.stats.acks_sent += 1;
        self.unacked_segments = 0;
        self.delack_deadline = None;
    }

    fn on_data(&mut self, pkt: &Packet, now: SimTime) {
        self.established = true;
        self.synack_deadline = None;
        self.stats.segments_received += 1;
        if pkt.ecn.is_ce() {
            self.stats.ce_received += 1;
        }

        // ECN echo state updates (before deciding ACK contents).
        match self.cfg.ecn {
            EcnMode::Ecn if self.ecn_on => {
                // CWR from the sender clears the latch; a CE mark (possibly on
                // the same segment) re-sets it.
                if pkt.flags.contains(TcpFlags::CWR) {
                    self.ece_latch = false;
                }
                if pkt.ecn.is_ce() {
                    self.ece_latch = true;
                }
            }
            EcnMode::Dctcp if self.ecn_on => {
                let ce = pkt.ecn.is_ce();
                if ce != self.dctcp_ce_state {
                    // DCTCP state machine: flush an ACK carrying the *old*
                    // state so the sender's mark count stays exact, then flip.
                    if self.unacked_segments > 0 {
                        self.send_ack(now);
                    }
                    self.dctcp_ce_state = ce;
                }
            }
            _ => {}
        }

        let advanced = self
            .reassembly
            .on_segment(pkt.seq, pkt.seq + pkt.payload as u64);

        if !advanced {
            // Out-of-order or duplicate: immediate (dup) ACK so the sender's
            // fast retransmit can fire.
            self.send_ack(now);
            return;
        }
        self.unacked_segments += 1;
        if self.unacked_segments >= self.cfg.delayed_ack {
            self.send_ack(now);
        } else if self.delack_deadline.is_none() {
            self.delack_deadline = Some(now + self.cfg.delack_timeout);
        }
    }
}

impl TcpAgent for Receiver {
    fn flow(&self) -> FlowId {
        self.flow
    }

    fn on_segment(&mut self, pkt: &Packet, now: SimTime) {
        if pkt.is_syn() {
            // ECN on iff the peer asked (SYN carries ECE+CWR) and we support it.
            self.peer_wants_ecn =
                pkt.flags.contains(TcpFlags::ECE) && pkt.flags.contains(TcpFlags::CWR);
            if !self.syn_seen {
                self.syn_seen = true;
                self.ecn_on = self.peer_wants_ecn && self.cfg.ecn.uses_ecn();
            }
            // (Re)send the SYN-ACK — covers both first SYN and retransmits.
            self.send_syn_ack(now);
            return;
        }
        if pkt.payload > 0 {
            self.on_data(pkt, now);
            return;
        }
        if pkt.is_pure_ack() {
            // The sender's third handshake packet (or a window probe).
            self.established = true;
            self.synack_deadline = None;
        }
    }

    fn on_timer(&mut self, now: SimTime) {
        if let Some(d) = self.synack_deadline {
            if now >= d && !self.established {
                self.synack_backoff = self.synack_backoff.saturating_add(1);
                self.send_syn_ack(now);
            } else if self.established {
                self.synack_deadline = None;
            }
        }
        if let Some(d) = self.delack_deadline {
            if now >= d {
                self.send_ack(now);
            }
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        match (self.synack_deadline, self.delack_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn take_outbox(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.outbox)
    }

    fn drain_outbox_into(&mut self, out: &mut Vec<Packet>) {
        out.append(&mut self.outbox);
    }

    fn is_complete(&self) -> bool {
        // Receivers have no terminal condition of their own; flow completion
        // is judged at the sender.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(ecn: EcnMode) -> Receiver {
        Receiver::new(FlowId(1), NodeId(1), NodeId(0), TcpConfig::with_ecn(ecn))
    }

    fn syn(ecn: bool) -> Packet {
        Packet {
            id: PacketId(800),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload: 0,
            flags: if ecn {
                TcpFlags::ecn_setup_syn()
            } else {
                TcpFlags::SYN
            },
            ecn: EcnCodepoint::NotEct,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    fn data(seq: u64, len: u32, ecn: EcnCodepoint, flags: TcpFlags) -> Packet {
        Packet {
            id: PacketId(801),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            seq,
            ack: 1,
            payload: len,
            flags,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn syn_gets_syn_ack_with_ecn_agreement() {
        let mut r = mk(EcnMode::Ecn);
        r.on_segment(&syn(true), SimTime::from_micros(1));
        assert!(r.ecn_negotiated());
        let out = r.take_outbox();
        assert_eq!(out.len(), 1);
        assert!(out[0].is_syn_ack());
        assert!(
            out[0].flags.contains(TcpFlags::ECE),
            "SYN-ACK echoes ECN support"
        );
        assert!(!out[0].flags.contains(TcpFlags::CWR));
        assert_eq!(out[0].ecn, EcnCodepoint::NotEct, "SYN-ACK is never ECT");
    }

    #[test]
    fn non_ecn_receiver_refuses_ecn() {
        let mut r = mk(EcnMode::Off);
        r.on_segment(&syn(true), SimTime::from_micros(1));
        assert!(!r.ecn_negotiated());
        let out = r.take_outbox();
        assert!(!out[0].flags.contains(TcpFlags::ECE));
    }

    #[test]
    fn duplicate_syn_resends_syn_ack() {
        let mut r = mk(EcnMode::Ecn);
        r.on_segment(&syn(true), SimTime::from_micros(1));
        let _ = r.take_outbox();
        r.on_segment(&syn(true), SimTime::from_micros(2_000_000));
        let out = r.take_outbox();
        assert_eq!(out.len(), 1);
        assert!(out[0].is_syn_ack());
        assert_eq!(r.stats().syn_acks_sent, 2);
    }

    #[test]
    fn syn_ack_retransmits_on_timer_until_established() {
        let mut r = mk(EcnMode::Off);
        r.on_segment(&syn(false), SimTime::from_micros(1));
        let _ = r.take_outbox();
        let d = r.next_deadline().expect("SYN-ACK timer armed");
        r.on_timer(d);
        assert_eq!(
            r.stats().syn_acks_sent,
            2,
            "retransmit while handshake incomplete"
        );
        // Establishing (via data) disarms it.
        r.on_segment(
            &data(1, 100, EcnCodepoint::NotEct, TcpFlags::ACK),
            d + simevent::SimDuration::from_nanos(1),
        );
        assert!(r.is_established());
        let d2 = r.next_deadline();
        assert!(
            d2.is_none(),
            "no timers once established (delack off): {d2:?}"
        );
    }

    #[test]
    fn in_order_data_acked_cumulatively() {
        let mut r = mk(EcnMode::Off);
        r.on_segment(
            &data(1, 1000, EcnCodepoint::NotEct, TcpFlags::ACK),
            SimTime::from_micros(1),
        );
        let out = r.take_outbox();
        assert_eq!(out.len(), 1);
        assert!(out[0].is_pure_ack());
        assert_eq!(out[0].ack, 1001);
        assert_eq!(r.bytes_received(), 1000);
    }

    #[test]
    fn out_of_order_triggers_dup_ack() {
        let mut r = mk(EcnMode::Off);
        r.on_segment(
            &data(1, 1000, EcnCodepoint::NotEct, TcpFlags::ACK),
            SimTime::from_micros(1),
        );
        let _ = r.take_outbox();
        // Skip ahead: hole at [1001, 2001).
        r.on_segment(
            &data(2001, 1000, EcnCodepoint::NotEct, TcpFlags::ACK),
            SimTime::from_micros(2),
        );
        let out = r.take_outbox();
        assert_eq!(out[0].ack, 1001, "dup ack repeats the hole");
        // Fill the hole: cumulative ack jumps over both.
        r.on_segment(
            &data(1001, 1000, EcnCodepoint::NotEct, TcpFlags::ACK),
            SimTime::from_micros(3),
        );
        let out = r.take_outbox();
        assert_eq!(out[0].ack, 3001);
    }

    #[test]
    fn classic_ecn_latch_until_cwr() {
        let mut r = mk(EcnMode::Ecn);
        r.on_segment(&syn(true), SimTime::from_micros(1));
        let _ = r.take_outbox();
        // CE-marked segment: ACK carries ECE.
        r.on_segment(
            &data(1, 1000, EcnCodepoint::Ce, TcpFlags::ACK),
            SimTime::from_micros(2),
        );
        let out = r.take_outbox();
        assert!(out[0].flags.contains(TcpFlags::ECE));
        // Unmarked segment, no CWR yet: latch holds.
        r.on_segment(
            &data(1001, 1000, EcnCodepoint::Ect0, TcpFlags::ACK),
            SimTime::from_micros(3),
        );
        let out = r.take_outbox();
        assert!(
            out[0].flags.contains(TcpFlags::ECE),
            "latch holds until CWR"
        );
        // CWR clears it.
        r.on_segment(
            &data(
                2001,
                1000,
                EcnCodepoint::Ect0,
                TcpFlags::ACK | TcpFlags::CWR,
            ),
            SimTime::from_micros(4),
        );
        let out = r.take_outbox();
        assert!(
            !out[0].flags.contains(TcpFlags::ECE),
            "CWR clears the latch"
        );
    }

    #[test]
    fn classic_ecn_ce_on_cwr_segment_relatches() {
        let mut r = mk(EcnMode::Ecn);
        r.on_segment(&syn(true), SimTime::from_micros(1));
        let _ = r.take_outbox();
        r.on_segment(
            &data(1, 1000, EcnCodepoint::Ce, TcpFlags::ACK),
            SimTime::from_micros(2),
        );
        let _ = r.take_outbox();
        // Segment carrying BOTH CWR and a fresh CE mark: ECE must stay.
        r.on_segment(
            &data(1001, 1000, EcnCodepoint::Ce, TcpFlags::ACK | TcpFlags::CWR),
            SimTime::from_micros(3),
        );
        let out = r.take_outbox();
        assert!(out[0].flags.contains(TcpFlags::ECE));
    }

    #[test]
    fn dctcp_acks_mirror_ce_state() {
        let mut r = mk(EcnMode::Dctcp);
        r.on_segment(&syn(true), SimTime::from_micros(1));
        let _ = r.take_outbox();
        r.on_segment(
            &data(1, 1000, EcnCodepoint::Ect0, TcpFlags::ACK),
            SimTime::from_micros(2),
        );
        let out = r.take_outbox();
        assert!(!out[0].flags.contains(TcpFlags::ECE));
        r.on_segment(
            &data(1001, 1000, EcnCodepoint::Ce, TcpFlags::ACK),
            SimTime::from_micros(3),
        );
        let out = r.take_outbox();
        assert!(
            out[0].flags.contains(TcpFlags::ECE),
            "CE segment -> ECE ack"
        );
        // Back to unmarked: ECE drops immediately (no latch in DCTCP).
        r.on_segment(
            &data(2001, 1000, EcnCodepoint::Ect0, TcpFlags::ACK),
            SimTime::from_micros(4),
        );
        let out = r.take_outbox();
        assert!(!out[0].flags.contains(TcpFlags::ECE));
    }

    #[test]
    fn delayed_ack_coalesces_and_timer_flushes() {
        let cfg = TcpConfig {
            delayed_ack: 2,
            ..TcpConfig::default()
        };
        let mut r = Receiver::new(FlowId(1), NodeId(1), NodeId(0), cfg);
        r.on_segment(
            &data(1, 1000, EcnCodepoint::NotEct, TcpFlags::ACK),
            SimTime::from_micros(1),
        );
        assert!(r.take_outbox().is_empty(), "first segment held back");
        r.on_segment(
            &data(1001, 1000, EcnCodepoint::NotEct, TcpFlags::ACK),
            SimTime::from_micros(2),
        );
        let out = r.take_outbox();
        assert_eq!(out.len(), 1, "second segment flushes the ack");
        assert_eq!(out[0].ack, 2001);
        // A lone tail segment is flushed by the delack timer.
        r.on_segment(
            &data(2001, 500, EcnCodepoint::NotEct, TcpFlags::ACK),
            SimTime::from_micros(3),
        );
        assert!(r.take_outbox().is_empty());
        let d = r.next_deadline().expect("delack timer armed");
        r.on_timer(d);
        let out = r.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ack, 2501);
    }

    #[test]
    fn acks_are_non_ect_and_report_counts() {
        let mut r = mk(EcnMode::Ecn);
        r.on_segment(&syn(true), SimTime::from_micros(1));
        let _ = r.take_outbox();
        for i in 0..5u64 {
            r.on_segment(
                &data(1 + i * 100, 100, EcnCodepoint::Ect0, TcpFlags::ACK),
                SimTime::from_micros(2 + i),
            );
        }
        let out = r.take_outbox();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|p| p.ecn == EcnCodepoint::NotEct));
        assert_eq!(r.stats().acks_sent, 5);
        assert_eq!(r.stats().segments_received, 5);
        assert_eq!(r.stats().ce_received, 0);
    }
}
