//! SL009 fixture: f64 `+=` accumulation in metrics code.
//!
//! Scanned as `crates/simmetrics/src/agg.rs`. Two violations: a struct
//! field accumulator (line 13) and a float local (line 19). The integer
//! accumulation below the marker is the blessed pattern.

struct Agg {
    total_bps: f64,
}

impl Agg {
    fn bad_add(&mut self, sample_bps: f64) {
        self.total_bps += sample_bps;
    }

    fn bad_mean(&self, xs: &[f64]) -> f64 {
        let mut acc = 0.0;
        for x in xs {
            acc += *x;
        }
        acc / xs.len() as f64
    }
}

// ---- clean from here down ----

struct Fine {
    sum_ns: u128,
    count: u64,
}

impl Fine {
    fn add(&mut self, ns: u64) {
        self.sum_ns += u128::from(ns);
        self.count += 1;
    }

    fn mean_ns(&self) -> f64 {
        self.sum_ns as f64 / self.count as f64
    }
}
