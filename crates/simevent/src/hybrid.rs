//! Hybrid backend: calendar queue for precise transmission events, timer
//! wheel for the cancel-heavy RTO-class population — one shared sequence
//! counter so the merged pop order is bit-identical to a single queue.
//!
//! # Routing
//!
//! The simulator schedules two very different event populations:
//!
//! * **plain events** (packet arrivals, port wakeups, samples) — never
//!   cancelled, densely packed in the near future. The
//!   [`CalendarQueue`] is ideal: O(1) amortised schedule, tiny bucket heaps.
//! * **cancellable timers** (TCP RTO, delayed ACK) — almost always cancelled
//!   and rearmed before firing. The [`TimerWheel`] removes those physically
//!   in O(1) instead of sifting tombstones through bucket heaps.
//!
//! `schedule` routes to the calendar, `schedule_cancellable` to the wheel.
//!
//! # Why the merge is exact
//!
//! Determinism requires pops globally ordered by `(time, seq)` — including
//! FIFO tie-breaks *across* the two sub-queues (a timer and a packet event
//! at the same instant must fire in scheduling order). Two things make that
//! hold: a single `next_seq` counter feeds both sub-queues via their
//! `insert_with_seq` hooks, and `pop` compares exact `(time, seq)` head keys
//! from both sides (`prepare_head`) before removing anything. The
//! equivalence proptests pin the merged order against the reference
//! [`EventQueue`](crate::EventQueue).

use crate::calendar::CalendarQueue;
use crate::handle::TimerHandle;
use crate::queue::QueueBackend;
use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// A deterministic event queue that routes plain events to a
/// [`CalendarQueue`] and cancellable timers to a [`TimerWheel`], popping the
/// exact `(time, seq)` merge of both. Drop-in [`QueueBackend`]; the
/// simulation driver's default.
#[derive(Debug)]
pub struct HybridQueue<E> {
    calendar: CalendarQueue<E>,
    wheel: TimerWheel<E>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for HybridQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HybridQueue<E> {
    /// An empty queue with both sub-queues at their default geometry.
    pub fn new() -> Self {
        HybridQueue {
            calendar: CalendarQueue::new(),
            wheel: TimerWheel::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    #[inline]
    fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        seq
    }

    /// Schedule `event` to fire at absolute time `at` (not cancellable;
    /// calendar side).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.take_seq();
        self.calendar.insert_with_seq(at, seq, event);
    }

    /// Schedule `event` at `at`, returning a cancellation handle (wheel
    /// side: cancellation will be an O(1) physical removal).
    pub fn schedule_cancellable(&mut self, at: SimTime, event: E) -> TimerHandle {
        let seq = self.take_seq();
        self.wheel.insert_with_seq(at, seq, event)
    }

    /// Cancel a pending event. Handles only ever point into the wheel.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        self.wheel.cancel(handle)
    }

    /// Remove and return the earliest live event across both sub-queues.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let from_wheel = match (self.calendar.prepare_head(), self.wheel.prepare_head()) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            // Exact global order: earliest time, then scheduling order. The
            // shared seq counter makes the tie-break meaningful across
            // sub-queues.
            (Some(ck), Some(wk)) => wk < ck,
        };
        let se = if from_wheel {
            self.wheel.pop_prepared()
        } else {
            self.calendar.pop_prepared()
        };
        se.map(|se| (se.at, se.event))
    }

    /// The firing time of the earliest live pending event. Immutable (does
    /// not rotate either sub-queue), so worst-case O(n); tests and debug
    /// assertions only — the hot path pops directly.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.calendar.peek_time(), self.wheel.peek_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.calendar.len() + self.wheel.len()
    }

    /// True when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled on this queue (monotone; survives
    /// [`clear`](Self::clear)).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events (keeps `scheduled_total` and the seq counter).
    pub fn clear(&mut self) {
        self.calendar.clear();
        self.wheel.clear();
    }

    /// Release excess capacity in both sub-queues after a burst.
    pub fn shrink_to_fit(&mut self) {
        self.calendar.shrink_to_fit();
        self.wheel.shrink_to_fit();
    }
}

impl<E> QueueBackend<E> for HybridQueue<E> {
    fn empty() -> Self {
        Self::new()
    }
    fn schedule(&mut self, at: SimTime, event: E) {
        HybridQueue::schedule(self, at, event);
    }
    fn schedule_cancellable(&mut self, at: SimTime, event: E) -> TimerHandle {
        HybridQueue::schedule_cancellable(self, at, event)
    }
    fn cancel(&mut self, handle: TimerHandle) -> bool {
        HybridQueue::cancel(self, handle)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        HybridQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        HybridQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        HybridQueue::len(self)
    }
    fn scheduled_total(&self) -> u64 {
        HybridQueue::scheduled_total(self)
    }
    fn clear(&mut self) {
        HybridQueue::clear(self);
    }
    fn shrink_to_fit(&mut self) {
        HybridQueue::shrink_to_fit(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_instant_ties_break_across_subqueues() {
        // A plain event and a cancellable timer at the same instant must pop
        // in scheduling order — that is exactly what the shared seq buys.
        let mut q: HybridQueue<u32> = HybridQueue::new();
        let t = SimTime::from_micros(5);
        q.schedule(t, 0);
        let _h = q.schedule_cancellable(t, 1);
        q.schedule(t, 2);
        let _h2 = q.schedule_cancellable(t, 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cancellation_only_touches_the_wheel_population() {
        let mut q: HybridQueue<u32> = HybridQueue::new();
        q.schedule(SimTime::from_nanos(10), 10);
        let h = q.schedule_cancellable(SimTime::from_nanos(5), 5);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 10)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q: HybridQueue<u64> = HybridQueue::new();
        q.schedule(SimTime::from_nanos(5), 5);
        let _ = q.schedule_cancellable(SimTime::from_nanos(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(SimTime::from_nanos(3), 3);
        let _ = q.schedule_cancellable(SimTime::from_nanos(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
        assert!(q.pop().is_none());
    }

    #[test]
    fn counters_span_both_subqueues() {
        let mut q: HybridQueue<u32> = HybridQueue::new();
        q.schedule(SimTime::from_nanos(1), 1);
        let h = q.schedule_cancellable(SimTime::from_nanos(2), 2);
        q.cancel(h);
        assert_eq!(q.scheduled_total(), 2, "cancelled events still count");
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
        q.schedule(SimTime::from_nanos(3), 3);
        assert_eq!(q.scheduled_total(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(3), 3)));
    }
}

#[cfg(test)]
mod equivalence {
    //! The merged pop order is pinned against the reference heap under
    //! arbitrary interleavings — same harness shape as the calendar queue's.

    use super::*;
    use crate::queue::EventQueue;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Schedule(u64),
        ScheduleCancellable(u64),
        Pop,
        Cancel(usize),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            // Coarse times collide often, forcing cross-subqueue FIFO
            // tie-breaks (the case a per-subqueue counter would break).
            4 => (0u64..2_000_000).prop_map(|t| Op::Schedule(t / 7 * 7)),
            3 => (0u64..2_000_000).prop_map(|t| Op::ScheduleCancellable(t / 7 * 7)),
            4 => Just(Op::Pop),
            2 => (0usize..64).prop_map(Op::Cancel),
        ]
    }

    fn check_equivalence(ops: Vec<Op>) -> Result<(), String> {
        let mut heap: EventQueue<u64> = EventQueue::new();
        let mut hybrid: HybridQueue<u64> = HybridQueue::new();
        let mut handles: Vec<(TimerHandle, TimerHandle)> = Vec::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                Op::Schedule(t) => {
                    heap.schedule(SimTime::from_nanos(t), payload);
                    hybrid.schedule(SimTime::from_nanos(t), payload);
                    payload += 1;
                }
                Op::ScheduleCancellable(t) => {
                    let hh = heap.schedule_cancellable(SimTime::from_nanos(t), payload);
                    let hy = hybrid.schedule_cancellable(SimTime::from_nanos(t), payload);
                    handles.push((hh, hy));
                    payload += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(heap.pop(), hybrid.pop(), "pop diverged");
                }
                Op::Cancel(k) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let (hh, hy) = handles[k % handles.len()];
                    prop_assert_eq!(heap.cancel(hh), hybrid.cancel(hy), "cancel diverged");
                }
            }
            prop_assert_eq!(heap.len(), hybrid.len(), "live length diverged");
            prop_assert_eq!(heap.peek_time(), hybrid.peek_time(), "peek diverged");
            prop_assert_eq!(heap.scheduled_total(), hybrid.scheduled_total());
        }
        loop {
            let (a, b) = (heap.pop(), hybrid.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Merged (time, seq) order matches the single reference queue.
        #[test]
        fn same_pops_as_reference(ops in prop::collection::vec(arb_op(), 1..300)) {
            check_equivalence(ops)?;
        }
    }
}
