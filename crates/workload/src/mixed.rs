//! Permutation elephants plus Poisson mice: the background-load mix used
//! throughout the datacenter-transport literature.
//!
//! Elephants run a permutation pattern — host `i` streams to host
//! `(i + offset) mod n`, a fixed random offset — so every sender saturates a
//! distinct receiver-side port and the queues sit at the AQM's operating
//! point for the whole run. Mice arrive as a Poisson process with sizes
//! drawn from an empirical CDF (web-search or data-mining, interpolated
//! log-linearly between table points) and cross those standing queues.
//!
//! Under the paper's unprotected RED-mimic the pathology shows up twice:
//! each mouse's **SYN** is non-ECT and can be early-dropped at the loaded
//! receiver port (1 s connection-establishment RTO), and the elephants'
//! **pure ACKs** returning through a loaded reverse-path port can be
//! early-dropped in bursts, stalling the very flows the AQM is meant to
//! pace.

use crate::model::{class_of, FlowSpec, Launcher, TrafficModel};
use netpacket::{FlowId, NodeId};
use serde::Serialize;
use simevent::{SimDuration, SimRng, SimTime};
use simmetrics::FlowClass;
use std::collections::BTreeMap;

/// Single timer kind: the next Poisson mouse arrival.
const TOKEN_MOUSE: u64 = 3 << 60;

/// Flow-size distribution for mice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SizeDist {
    /// Web-search flow sizes (the DCTCP production trace shape).
    WebSearch,
    /// Data-mining flow sizes (the VL2 trace shape): heavier tail, smaller
    /// median.
    DataMining,
    /// Every mouse is exactly this many bytes.
    Fixed(u64),
}

/// `(cumulative probability, flow bytes)` knots; log-linear between knots.
/// Shapes follow the published web-search (DCTCP) trace.
const WEB_SEARCH_CDF: &[(f64, u64)] = &[
    (0.0, 1_000),
    (0.15, 10_000),
    (0.20, 20_000),
    (0.30, 30_000),
    (0.40, 50_000),
    (0.53, 80_000),
    (0.60, 200_000),
    (0.70, 1_000_000),
    (0.80, 2_000_000),
    (0.90, 5_000_000),
    (0.97, 10_000_000),
    (1.0, 30_000_000),
];

/// Data-mining (VL2) trace shape: most flows tiny, a heavy elephant tail.
const DATA_MINING_CDF: &[(f64, u64)] = &[
    (0.0, 100),
    (0.50, 1_000),
    (0.60, 2_000),
    (0.70, 5_000),
    (0.80, 50_000),
    (0.90, 1_000_000),
    (0.95, 10_000_000),
    (0.99, 100_000_000),
    (1.0, 1_000_000_000),
];

impl SizeDist {
    /// Draw one flow size.
    pub fn sample(self, rng: &mut SimRng) -> u64 {
        let table = match self {
            SizeDist::WebSearch => WEB_SEARCH_CDF,
            SizeDist::DataMining => DATA_MINING_CDF,
            SizeDist::Fixed(bytes) => return bytes.max(1),
        };
        let u = rng.next_f64();
        let hi = table
            .iter()
            .position(|&(p, _)| u <= p)
            .unwrap_or(table.len() - 1)
            .max(1);
        let (p0, b0) = table[hi - 1];
        let (p1, b1) = table[hi];
        let frac = if p1 > p0 { (u - p0) / (p1 - p0) } else { 0.0 };
        let ln = (b0 as f64).ln() + frac * ((b1 as f64).ln() - (b0 as f64).ln());
        (ln.exp().round() as u64).max(1)
    }
}

/// Configuration of a [`Mixed`] workload.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MixedConfig {
    /// Permutation lanes (elephant sender hosts); must be ≤ cluster size.
    pub elephant_lanes: u32,
    /// Bytes per elephant transfer.
    pub elephant_bytes: u64,
    /// Back-to-back transfers per lane (the next starts when one finishes).
    pub elephants_per_lane: u32,
    /// Total mice to issue.
    pub mice: u32,
    /// Mean Poisson inter-arrival gap between mice.
    pub mice_mean_gap: SimDuration,
    /// Mouse size distribution.
    pub mice_sizes: SizeDist,
    /// Seed for the permutation offset, arrivals, sizes, and endpoints.
    pub seed: u64,
}

/// Permutation elephants + Poisson mice generator. Each elephant lane is
/// one coflow (group id = lane index); mice are individual flows.
#[derive(Debug)]
pub struct Mixed {
    cfg: MixedConfig,
    /// Elephant lane endpoints and arrival process, split off `seed` so the
    /// mice stream is independent of lane count.
    lanes_rng: SimRng,
    mice_rng: SimRng,
    /// Lane each in-flight elephant belongs to.
    elephants: BTreeMap<FlowId, u32>,
    /// Per-lane (dst, transfers still to issue).
    lanes: Vec<(NodeId, u32)>,
    mice_issued: u32,
}

impl Mixed {
    /// A generator that has not issued anything yet.
    pub fn new(cfg: MixedConfig) -> Self {
        assert!(
            cfg.mice_mean_gap > SimDuration::ZERO || cfg.mice == 0,
            "poisson gap must be positive"
        );
        let root = SimRng::new(cfg.seed);
        Mixed {
            cfg,
            lanes_rng: root.fork(0xe1e),
            mice_rng: root.fork(0x717ce),
            elephants: BTreeMap::new(),
            lanes: Vec::new(),
            mice_issued: 0,
        }
    }

    /// Mice issued so far.
    pub fn mice_issued(&self) -> u32 {
        self.mice_issued
    }

    fn elephants_remaining(&self) -> bool {
        self.lanes.iter().any(|&(_, left)| left > 0)
    }

    fn start_elephant(&mut self, lane: u32, l: &mut dyn Launcher, now: SimTime) {
        let (dst, left) = &mut self.lanes[lane as usize];
        debug_assert!(*left > 0);
        *left -= 1;
        let sealed = *left == 0;
        let dst = *dst;
        let flow = l.start_flow(
            FlowSpec {
                src: NodeId(lane),
                dst,
                bytes: self.cfg.elephant_bytes,
                class: FlowClass::Elephant,
                coflow: Some(u64::from(lane)),
            },
            now,
        );
        self.elephants.insert(flow, lane);
        if sealed {
            l.seal_coflow(u64::from(lane));
        }
    }

    fn schedule_next_mouse(&mut self, l: &mut dyn Launcher, now: SimTime) {
        let gap = self
            .mice_rng
            .exponential(self.cfg.mice_mean_gap.as_nanos() as f64);
        l.set_timer(
            now + SimDuration::from_nanos(gap.round() as u64),
            TOKEN_MOUSE,
        );
    }
}

impl TrafficModel for Mixed {
    fn on_start(&mut self, l: &mut dyn Launcher, now: SimTime) {
        let n = l.num_hosts();
        assert!(n >= 2, "need at least two hosts");
        assert!(self.cfg.elephant_lanes <= n, "more lanes than hosts");
        // One random permutation offset shared by all lanes: every receiver
        // port carries exactly one elephant.
        let offset = 1 + self.lanes_rng.next_below(u64::from(n) - 1) as u32;
        for lane in 0..self.cfg.elephant_lanes {
            let dst = NodeId((lane + offset) % n);
            self.lanes.push((dst, self.cfg.elephants_per_lane));
            if self.cfg.elephants_per_lane > 0 {
                self.start_elephant(lane, l, now);
            }
        }
        if self.cfg.mice > 0 {
            self.schedule_next_mouse(l, now);
        }
    }

    fn on_flow_complete(&mut self, flow: FlowId, l: &mut dyn Launcher, now: SimTime) {
        if let Some(lane) = self.elephants.remove(&flow) {
            if self.lanes[lane as usize].1 > 0 {
                self.start_elephant(lane, l, now);
            }
        }
    }

    fn on_timer(&mut self, token: u64, l: &mut dyn Launcher, now: SimTime) {
        assert_eq!(token, TOKEN_MOUSE, "unknown mixed-workload timer token");
        if self.mice_issued >= self.cfg.mice {
            return;
        }
        let n = u64::from(l.num_hosts());
        let src = self.mice_rng.next_below(n);
        let dst = (src + 1 + self.mice_rng.next_below(n - 1)) % n;
        let bytes = self.cfg.mice_sizes.sample(&mut self.mice_rng);
        l.start_flow(
            FlowSpec {
                src: NodeId(src as u32),
                dst: NodeId(dst as u32),
                bytes,
                class: class_of(bytes),
                coflow: None,
            },
            now,
        );
        self.mice_issued += 1;
        if self.mice_issued < self.cfg.mice {
            self.schedule_next_mouse(l, now);
        }
    }

    fn done(&self) -> bool {
        self.mice_issued == self.cfg.mice && !self.elephants_remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::mock::MockLauncher;

    fn cfg() -> MixedConfig {
        MixedConfig {
            elephant_lanes: 4,
            elephant_bytes: 10_000_000,
            elephants_per_lane: 2,
            mice: 5,
            mice_mean_gap: SimDuration::from_micros(200),
            mice_sizes: SizeDist::WebSearch,
            seed: 42,
        }
    }

    #[test]
    fn permutation_is_a_bijection_on_lanes() {
        let mut m = Mixed::new(cfg());
        let mut l = MockLauncher::new(4);
        m.on_start(&mut l, SimTime::ZERO);
        assert_eq!(l.flows.len(), 4, "one elephant per lane at start");
        let mut dsts: Vec<u32> = l.flows.iter().map(|f| f.dst.0).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), 4, "no receiver carries two elephants");
        assert!(l.flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn lanes_chain_back_to_back_and_seal() {
        let mut m = Mixed::new(cfg());
        let mut l = MockLauncher::new(4);
        m.on_start(&mut l, SimTime::ZERO);
        let first: Vec<FlowId> = m.elephants.keys().copied().collect();
        for f in first {
            m.on_flow_complete(f, &mut l, SimTime::from_millis(90));
        }
        assert_eq!(l.flows.len(), 8, "each lane issued its second transfer");
        let mut sealed = l.sealed.clone();
        sealed.sort_unstable();
        assert_eq!(sealed, vec![0, 1, 2, 3], "lanes sealed on last transfer");
        let second: Vec<FlowId> = m.elephants.keys().copied().collect();
        for f in second {
            m.on_flow_complete(f, &mut l, SimTime::from_millis(180));
        }
        assert_eq!(l.flows.len(), 8, "no lane issues past its quota");
    }

    #[test]
    fn mice_arrive_until_quota() {
        let mut m = Mixed::new(cfg());
        let mut l = MockLauncher::new(4);
        m.on_start(&mut l, SimTime::ZERO);
        let mut t = 0;
        while t < l.timers.len() {
            let (at, tok) = l.timers[t];
            t += 1;
            m.on_timer(tok, &mut l, at);
        }
        assert_eq!(m.mice_issued(), 5);
        let mice: Vec<_> = l.flows.iter().filter(|f| f.coflow.is_none()).collect();
        assert_eq!(mice.len(), 5);
        assert!(mice.iter().all(|f| f.src != f.dst));
        assert!(!m.done(), "elephant chains still open");
    }

    #[test]
    fn size_dists_are_deterministic_and_in_range() {
        for dist in [SizeDist::WebSearch, SizeDist::DataMining] {
            let mut a = SimRng::new(9).fork(1);
            let mut b = SimRng::new(9).fork(1);
            for _ in 0..500 {
                let x = dist.sample(&mut a);
                assert_eq!(x, dist.sample(&mut b));
                let (lo, hi) = match dist {
                    SizeDist::WebSearch => (1_000, 30_000_000),
                    SizeDist::DataMining => (100, 1_000_000_000),
                    SizeDist::Fixed(_) => unreachable!(),
                };
                assert!((lo..=hi).contains(&x), "{dist:?} sample {x} out of range");
            }
        }
        assert_eq!(SizeDist::Fixed(77).sample(&mut SimRng::new(0)), 77);
    }
}
