//! Transport configuration.

use serde::{Deserialize, Serialize};
use simcc::CcAlg;
use simevent::SimDuration;

/// Which congestion-signalling mode a connection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EcnMode {
    /// Plain TCP: congestion is only ever signalled by loss.
    #[default]
    Off,
    /// Classic TCP + ECN (RFC 3168): CE echoes as ECE, sender halves cwnd at
    /// most once per window.
    Ecn,
    /// DCTCP: extent-of-congestion estimate `alpha`, reduction by `alpha/2`.
    Dctcp,
}

impl EcnMode {
    /// True when the transport negotiates ECN on the handshake and sends its
    /// data as ECT(0).
    pub fn uses_ecn(self) -> bool {
        !matches!(self, EcnMode::Off)
    }

    /// Label used in figure legends.
    pub fn label(self) -> &'static str {
        match self {
            EcnMode::Off => "tcp",
            EcnMode::Ecn => "tcp-ecn",
            EcnMode::Dctcp => "dctcp",
        }
    }
}

/// Per-connection TCP parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size in payload bytes.
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd_segments: u32,
    /// Receiver window in bytes (flow-control cap on bytes in flight).
    pub recv_wnd: u64,
    /// Lower bound for the retransmission timeout. Linux default is 200 ms;
    /// data-centre tunings go to single-digit milliseconds (ablation knob).
    pub min_rto: SimDuration,
    /// RTO before any RTT sample exists, and the SYN retransmission base.
    pub initial_rto: SimDuration,
    /// Upper bound for the (backed-off) RTO.
    pub max_rto: SimDuration,
    /// Congestion-signalling mode.
    pub ecn: EcnMode,
    /// Congestion-control algorithm (see `simcc`). Must be consistent with
    /// `ecn`: the CE-fraction controllers (DCTCP, Prague) need the DCTCP
    /// receiver's per-segment CE echo ([`EcnMode::Dctcp`]), and the loss/RTT
    /// based ones (Reno, CUBIC, BBR) need the RFC 3168 latched-ECE echo or no
    /// ECN at all — `validate()` enforces the pairing.
    pub cc: CcAlg,
    /// DCTCP's EWMA gain `g` for the alpha estimate.
    pub dctcp_g: f64,
    /// ACK every `delayed_ack` data segments (1 = ack every segment, NS-2's
    /// default and ours; 2 = standard delayed ACKs, changes the ACK volume in
    /// the queues — an ablation the paper's problem is sensitive to).
    pub delayed_ack: u32,
    /// Delayed-ACK flush timer (only used when `delayed_ack > 1`).
    pub delack_timeout: SimDuration,
    /// Selective acknowledgements (RFC 2018-style): the receiver reports up
    /// to three out-of-order blocks on every ACK and the sender retransmits
    /// only the holes, never data the receiver already has. On by default,
    /// as in every OS since the late 1990s.
    pub sack: bool,
    /// **ECN++ extension** (experimental, off by default): send control
    /// packets — pure ACKs, SYN, SYN-ACK — as ECT(0) so ECN-enabled AQMs
    /// *mark* them instead of early-dropping them. This is the host-side
    /// alternative to the paper's switch-side protection modes; congestion
    /// marks on control packets are absorbed (not echoed), which captures
    /// the loss-avoidance effect the paper cares about.
    pub ect_control_packets: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            init_cwnd_segments: 2,
            recv_wnd: 1 << 20,
            min_rto: SimDuration::from_millis(200),
            initial_rto: SimDuration::from_secs(1),
            max_rto: SimDuration::from_secs(60),
            ecn: EcnMode::Off,
            cc: CcAlg::Reno,
            dctcp_g: 1.0 / 16.0,
            delayed_ack: 1,
            delack_timeout: SimDuration::from_millis(40),
            sack: true,
            ect_control_packets: false,
        }
    }
}

impl TcpConfig {
    /// A config with the given ECN mode, the controller that mode implies
    /// (DCTCP feedback → DCTCP, otherwise NewReno — exactly the pre-`simcc`
    /// hardwired pairing), and the rest default.
    pub fn with_ecn(ecn: EcnMode) -> Self {
        TcpConfig {
            ecn,
            cc: match ecn {
                EcnMode::Dctcp => CcAlg::Dctcp,
                EcnMode::Off | EcnMode::Ecn => CcAlg::Reno,
            },
            ..Default::default()
        }
    }

    /// A config running `cc` with the ECN mode that controller requires:
    /// CE-fraction controllers get the DCTCP receiver echo, the rest get
    /// classic RFC 3168 ECN when `ecn_hint` asks for ECN (or no ECN at all).
    pub fn with_cc(cc: CcAlg, ecn_hint: EcnMode) -> Self {
        let ecn = if cc.needs_ce_feedback() {
            EcnMode::Dctcp
        } else {
            match ecn_hint {
                EcnMode::Off => EcnMode::Off,
                EcnMode::Ecn | EcnMode::Dctcp => EcnMode::Ecn,
            }
        };
        TcpConfig {
            ecn,
            cc,
            ..Default::default()
        }
    }

    /// Sanity-check invariants; panics on nonsense.
    pub fn validate(&self) {
        assert!(self.mss > 0, "mss must be positive");
        assert!(
            self.init_cwnd_segments > 0,
            "initial cwnd must be at least 1 segment"
        );
        assert!(
            self.recv_wnd >= self.mss as u64,
            "recv_wnd must hold at least one segment"
        );
        assert!(self.min_rto > SimDuration::ZERO);
        assert!(
            self.initial_rto >= self.min_rto,
            "initial_rto must be >= min_rto"
        );
        assert!(self.max_rto >= self.initial_rto);
        assert!(
            self.dctcp_g > 0.0 && self.dctcp_g <= 1.0,
            "dctcp_g must be in (0,1], got {}",
            self.dctcp_g
        );
        assert!(self.delayed_ack >= 1, "delayed_ack factor must be >= 1");
        assert!(
            self.cc.needs_ce_feedback() == (self.ecn == EcnMode::Dctcp),
            "cc {:?} is incompatible with ecn {:?}: DCTCP/Prague need the \
             DCTCP per-segment CE echo, Reno/CUBIC/BBR need latched ECE or no \
             ECN (use TcpConfig::with_cc to pick a consistent pair)",
            self.cc,
            self.ecn
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        TcpConfig::default().validate();
        TcpConfig::with_ecn(EcnMode::Ecn).validate();
        TcpConfig::with_ecn(EcnMode::Dctcp).validate();
    }

    #[test]
    fn mode_flags() {
        assert!(!EcnMode::Off.uses_ecn());
        assert!(EcnMode::Ecn.uses_ecn());
        assert!(EcnMode::Dctcp.uses_ecn());
    }

    #[test]
    fn labels() {
        assert_eq!(EcnMode::Off.label(), "tcp");
        assert_eq!(EcnMode::Ecn.label(), "tcp-ecn");
        assert_eq!(EcnMode::Dctcp.label(), "dctcp");
    }

    #[test]
    #[should_panic(expected = "mss")]
    fn zero_mss_rejected() {
        TcpConfig {
            mss: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "dctcp_g")]
    fn bad_gain_rejected() {
        TcpConfig {
            dctcp_g: 0.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn with_ecn_picks_the_pre_refactor_controller() {
        assert_eq!(TcpConfig::with_ecn(EcnMode::Off).cc, CcAlg::Reno);
        assert_eq!(TcpConfig::with_ecn(EcnMode::Ecn).cc, CcAlg::Reno);
        assert_eq!(TcpConfig::with_ecn(EcnMode::Dctcp).cc, CcAlg::Dctcp);
    }

    #[test]
    fn with_cc_picks_a_consistent_ecn_mode() {
        for alg in CcAlg::ALL {
            for hint in [EcnMode::Off, EcnMode::Ecn, EcnMode::Dctcp] {
                TcpConfig::with_cc(alg, hint).validate();
            }
        }
        assert_eq!(
            TcpConfig::with_cc(CcAlg::Prague, EcnMode::Off).ecn,
            EcnMode::Dctcp
        );
        assert_eq!(
            TcpConfig::with_cc(CcAlg::Cubic, EcnMode::Dctcp).ecn,
            EcnMode::Ecn
        );
        assert_eq!(
            TcpConfig::with_cc(CcAlg::Bbr, EcnMode::Off).ecn,
            EcnMode::Off
        );
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn ce_fraction_controller_without_dctcp_echo_rejected() {
        TcpConfig {
            cc: CcAlg::Prague,
            ecn: EcnMode::Ecn,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn loss_based_controller_with_dctcp_echo_rejected() {
        TcpConfig {
            cc: CcAlg::Cubic,
            ecn: EcnMode::Dctcp,
            ..Default::default()
        }
        .validate();
    }
}
