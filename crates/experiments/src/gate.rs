//! The benchmark regression gate behind the `bench_gate` bin.
//!
//! `bench_gate` runs a fixed "standard point set" (kernel microbenchmarks
//! plus the Fig. 2 shallow sweep at gate scale), emits `BENCH_7.json`, and
//! compares it against a committed baseline (`BENCH_7_baseline.json`) with
//! per-metric tolerances — exiting nonzero on regression, so the repo's perf
//! trajectory is *enforced*, not just recorded.
//!
//! `BENCH_7.json` is a netbench-style report covering every hot-path layer:
//!
//! * **kernel** — scheduler microbenchmarks. `churn` pits the calendar queue
//!   against the reference binary heap on a hold-and-churn workload;
//!   `cancel_heavy` pits the hybrid (timer-wheel) backend against the heap
//!   on a cancel-and-rearm workload, the RTO pattern the wheel was built for.
//! * **cc** — congestion-controller `on_ack` hot-path microbenchmark: every
//!   `simcc` controller driven through the sender's per-ACK hook sequence,
//!   gated on its throughput ratio against Reno sampled interleaved, so a
//!   controller that grows an allocation or a quadratic scan on the ACK
//!   path trips the gate.
//! * **pool** — packet-arena allocation accounting on one fig2-shallow DCTCP
//!   point: pool inserts, heap allocations (slab spill in pooled mode, one
//!   Box per packet in reference mode), inserts per wall-second.
//! * **link** — scheduler events per pool-inserted packet for both engines;
//!   the batched transmitter's event elision shows up here directly.
//! * **sweep_fig2_shallow** — the standard point set end to end:
//!   `reference_seconds` is the serial sweep on the reference engine (seed
//!   allocation model + binary-heap scheduler + spurious timers),
//!   `fast_seconds` the serial sweep on the fast engine, and
//!   `parallel_seconds` the fast engine on one worker per core.
//!   `outputs_identical` asserts serial == parallel AND fast == reference
//!   metrics — the determinism contract of both the parallel executor and
//!   the arena/batching overhaul, measured on every gate run.
//!
//! Gate policy: wall-clock metrics may regress at most
//! [`Tolerance::wall_clock_frac`] (default 25% — CI machines are shared),
//! ratio-style metrics (speedups, per-packet costs) at most
//! [`Tolerance::throughput_frac`] (default
//! 10%), and `outputs_identical` must hold outright.

use crate::scenario::{
    run_scenario_once_full, run_scenario_once_with, BufferDepth, Engine, QueueKind, RunMetrics,
    ScenarioConfig, Transport,
};
use crate::simsweep::{CacheMode, SweepOptions};
use crate::sweep::SweepGrid;
use ecn_core::ProtectionMode;
use serde::{Deserialize, Serialize};
use simcc::{Cc, CcAlg, CcParams, CongestionController};
use simevent::{CalendarQueue, EventQueue, HybridQueue, QueueBackend, SimDuration, SimTime};
use std::time::Instant;

/// One kernel microbenchmark line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelWorkload {
    /// Events held in flight.
    pub pending: u64,
    /// Events popped during measurement.
    pub popped_events: u64,
    /// Reference binary-heap throughput.
    pub heap_events_per_sec: f64,
    /// Fast-backend throughput (calendar for churn, hybrid wheel for
    /// cancel-heavy).
    pub fast_events_per_sec: f64,
    /// fast / heap.
    pub speedup: f64,
}

/// The two kernel workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSection {
    /// Hold-and-churn schedule/pop workload (calendar queue fast path).
    pub churn: KernelWorkload,
    /// Cancel-and-rearm timer workload (hybrid timer-wheel fast path).
    pub cancel_heavy: KernelWorkload,
}

/// One congestion controller's `on_ack` hot-path measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CcWorkload {
    /// Controller label (`reno`, `dctcp`, `cubic`, `bbr`, `prague`).
    pub controller: String,
    /// ACK hook sequences per wall-second (median of interleaved samples).
    pub ops_per_sec: f64,
    /// This controller's throughput relative to Reno's from the same
    /// interleaved sampling pass — the gated metric (load noise cancels in
    /// the ratio the way it does for the kernel speedups).
    pub vs_reno: f64,
}

/// The congestion-controller microbenchmark section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CcSection {
    /// ACK hook sequences executed per sample per controller.
    pub ops: u64,
    /// One line per `simcc` controller, in `CcAlg::ALL` order.
    pub controllers: Vec<CcWorkload>,
}

/// Packet-arena allocation accounting on the measured DCTCP point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolSection {
    /// Packets inserted into the pool over the point (pooled run).
    pub packets: u64,
    /// Heap allocations the pooled run performed for packet storage — slab
    /// growth only; steady state recycles slots.
    pub pooled_heap_allocs: u64,
    /// Heap allocations the reference (seed) model performed: one Box per
    /// packet.
    pub reference_heap_allocs: u64,
    /// Pooled heap allocations per packet (slab growth amortized away).
    pub pooled_allocs_per_packet: f64,
    /// Pool inserts per wall-second, pooled run.
    pub pooled_inserts_per_sec: f64,
    /// Pool inserts per wall-second, reference run.
    pub reference_inserts_per_sec: f64,
    /// High-water mark of simultaneously live packets.
    pub high_water: u64,
}

/// End-to-end engine comparison on the hot-host DCTCP point: the same
/// simulation run on the fast engine (arena + wheel + batching + SoA flow
/// state) and the reference engine (seed allocation model, binary-heap
/// scheduler, full-scan bookkeeping). The point is sized so per-host flow
/// concurrency is realistic — that is where the seed's per-event endpoint
/// scans actually cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndToEndSection {
    /// Hosts in the hot-point cluster.
    pub hosts: u64,
    /// Wall seconds, fast engine.
    pub fast_seconds: f64,
    /// Wall seconds, reference engine.
    pub reference_seconds: f64,
    /// reference / fast — the headline end-to-end speedup.
    pub engine_speedup: f64,
    /// Scheduler events processed, fast engine.
    pub fast_events: u64,
    /// Scheduler events processed, reference engine.
    pub reference_events: u64,
    /// Events per wall-second, fast engine.
    pub fast_events_per_sec: f64,
    /// Events per wall-second, reference engine.
    pub reference_events_per_sec: f64,
}

/// Scheduler events per delivered packet on the measured DCTCP point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSection {
    /// Packets inserted into the pool over the point.
    pub packets: u64,
    /// Scheduler events processed, fast engine.
    pub fast_events: u64,
    /// Events per packet, fast engine (batched transmitter + cancelled
    /// timers).
    pub fast_events_per_packet: f64,
    /// Scheduler events processed, reference engine (spurious timer fires
    /// included).
    pub reference_events: u64,
    /// Events per packet, reference engine.
    pub reference_events_per_packet: f64,
}

/// The standard-point-set wall-clock section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSection {
    /// Points in the set.
    pub points: u64,
    /// Serial sweep on the reference engine (seed allocation model,
    /// binary-heap scheduler, spurious timers).
    pub reference_seconds: f64,
    /// Serial sweep on the fast engine.
    pub fast_seconds: f64,
    /// Parallel sweep on the fast engine, one worker per core.
    pub parallel_seconds: f64,
    /// reference / fast: the end-to-end single-thread speedup of the
    /// arena + wheel + batching overhaul.
    pub engine_speedup: f64,
    /// fast / parallel: orchestrator scaling on the same point set.
    pub parallel_speedup: f64,
    /// End-to-end events per wall-second, fast engine serial.
    pub fast_events_per_sec: f64,
    /// End-to-end events per wall-second, reference engine serial.
    pub reference_events_per_sec: f64,
    /// Serial == parallel AND fast == reference metrics.
    pub outputs_identical: bool,
    /// Simulation events processed, reference engine.
    pub reference_events: u64,
    /// Simulation events processed, fast engine.
    pub fast_events: u64,
    /// Peak pending events, reference engine.
    pub reference_peak_pending: u64,
    /// Peak pending events, fast engine.
    pub fast_peak_pending: u64,
}

/// The whole report — the `BENCH_7.json` schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// What this report measures.
    pub description: String,
    /// Kernel microbenchmarks.
    pub kernel: KernelSection,
    /// Congestion-controller `on_ack` microbenchmarks.
    pub cc: CcSection,
    /// Hot-host end-to-end engine comparison.
    pub end_to_end: EndToEndSection,
    /// Packet-arena allocation accounting.
    pub pool: PoolSection,
    /// Events per delivered packet.
    pub link: LinkSection,
    /// Standard-point-set wall clock.
    pub sweep_fig2_shallow: SweepSection,
}

/// Per-metric regression tolerances, as fractions (0.10 = 10%).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Allowed wall-clock increase on lower-is-better metrics.
    pub wall_clock_frac: f64,
    /// Allowed loss on higher-is-better metrics (events/sec, speedups).
    pub throughput_frac: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            wall_clock_frac: 0.25,
            throughput_frac: 0.10,
        }
    }
}

/// One gated metric outside its tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Dotted metric path, e.g. `kernel.churn.fast_events_per_sec`.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Measured value.
    pub current: f64,
    /// The bound the measured value crossed.
    pub limit: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.4} vs baseline {:.4} (limit {:.4})",
            self.metric, self.current, self.baseline, self.limit
        )
    }
}

/// Compare a measured report against the baseline. Returns every gated
/// metric outside its tolerance; empty means the gate passes.
pub fn compare(current: &BenchReport, baseline: &BenchReport, tol: &Tolerance) -> Vec<Violation> {
    let mut v = Vec::new();

    // Higher is better: must not fall more than throughput_frac below
    // the baseline.
    let mut higher = |metric: &str, cur: f64, base: f64| {
        let limit = base * (1.0 - tol.throughput_frac);
        // Non-finite on either side means a corrupt report — fail, don't pass.
        if !cur.is_finite() || !limit.is_finite() || cur < limit {
            v.push(Violation {
                metric: metric.to_string(),
                baseline: base,
                current: cur,
                limit,
            });
        }
    };
    // Kernel microbenchmarks gate the *speedup ratio*, not absolute
    // events/sec: both arms of each workload are sampled interleaved on the
    // same machine, so the ratio cancels load noise that swings the raw
    // throughputs by tens of percent run to run. Absolute numbers stay in
    // the report for trend reading.
    higher(
        "kernel.churn.speedup",
        current.kernel.churn.speedup,
        baseline.kernel.churn.speedup,
    );
    higher(
        "kernel.cancel_heavy.speedup",
        current.kernel.cancel_heavy.speedup,
        baseline.kernel.cancel_heavy.speedup,
    );
    // Controller on_ack cost, gated as the interleaved vs-Reno ratio for the
    // same noise-cancellation reason — but with the looser wall-clock slack:
    // a 1M-op arithmetic loop is short enough that the measured ratio still
    // swings several percent run to run (observed ~8% on CUBIC's cbrt-heavy
    // path), and the regressions this line exists to catch — an allocation
    // or a scan growing onto the per-ACK path — cost integer factors, not
    // percents. A controller missing from the current report fails its
    // baseline line outright (NaN never passes).
    for base_cc in &baseline.cc.controllers {
        let cur = current
            .cc
            .controllers
            .iter()
            .find(|c| c.controller == base_cc.controller)
            .map_or(f64::NAN, |c| c.vs_reno);
        let limit = base_cc.vs_reno * (1.0 - tol.wall_clock_frac);
        if !cur.is_finite() || !limit.is_finite() || cur < limit {
            v.push(Violation {
                metric: format!("cc.{}.vs_reno", base_cc.controller),
                baseline: base_cc.vs_reno,
                current: cur,
                limit,
            });
        }
    }
    // The end-to-end speedup divides two *sequential* wall-clock runs, so
    // load noise does not cancel the way it does for the interleaved kernel
    // samples — gate it with the loose wall-clock tolerance instead.
    let e2e_base = baseline.end_to_end.engine_speedup;
    let e2e_cur = current.end_to_end.engine_speedup;
    let e2e_limit = e2e_base * (1.0 - tol.wall_clock_frac);
    if !e2e_cur.is_finite() || !e2e_limit.is_finite() || e2e_cur < e2e_limit {
        v.push(Violation {
            metric: "end_to_end.engine_speedup".to_string(),
            baseline: e2e_base,
            current: e2e_cur,
            limit: e2e_limit,
        });
    }

    // Lower is better: must not rise more than wall_clock_frac above the
    // baseline.
    let mut lower = |metric: &str, cur: f64, base: f64| {
        let limit = base * (1.0 + tol.wall_clock_frac);
        if !cur.is_finite() || !limit.is_finite() || cur > limit {
            v.push(Violation {
                metric: metric.to_string(),
                baseline: base,
                current: cur,
                limit,
            });
        }
    };
    lower(
        "sweep_fig2_shallow.fast_seconds",
        current.sweep_fig2_shallow.fast_seconds,
        baseline.sweep_fig2_shallow.fast_seconds,
    );
    lower(
        "pool.pooled_allocs_per_packet",
        current.pool.pooled_allocs_per_packet,
        baseline.pool.pooled_allocs_per_packet,
    );
    lower(
        "link.fast_events_per_packet",
        current.link.fast_events_per_packet,
        baseline.link.fast_events_per_packet,
    );

    // Hard invariant, no tolerance: serial/parallel and pooled/reference
    // outputs agree.
    if !current.sweep_fig2_shallow.outputs_identical {
        v.push(Violation {
            metric: "sweep_fig2_shallow.outputs_identical".to_string(),
            baseline: 1.0,
            current: 0.0,
            limit: 1.0,
        });
    }
    v
}

// ----- measurement -----------------------------------------------------------

/// Deterministic 64-bit LCG (MMIX constants) for microbench jitter.
struct Lcg(u64);

impl Lcg {
    fn next_below(&mut self, bound: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

fn churn<Q: QueueBackend<u64>>(mut q: Q, pending: usize, events: u64) -> f64 {
    let mut rng = Lcg(0x9E37_79B9_7F4A_7C15);
    for i in 0..pending {
        q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i as u64);
    }
    let start = Instant::now();
    for _ in 0..events {
        let (at, v) = q.pop().expect("queue held non-empty");
        q.schedule(
            at + SimDuration::from_nanos(rng.next_below(1_000_000) + 1),
            v,
        );
    }
    events as f64 / start.elapsed().as_secs_f64()
}

fn cancel_heavy<Q: QueueBackend<u64>>(mut q: Q, pending: usize, events: u64) -> f64 {
    let mut rng = Lcg(0x2545_F491_4F6C_DD1D);
    for i in 0..pending {
        q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i as u64);
    }
    let start = Instant::now();
    for _ in 0..events {
        let (at, v) = q.pop().expect("queue held non-empty");
        let h =
            q.schedule_cancellable(at + SimDuration::from_nanos(rng.next_below(500_000) + 1), v);
        q.cancel(h);
        q.schedule(
            at + SimDuration::from_nanos(rng.next_below(1_000_000) + 1),
            v,
        );
    }
    events as f64 / start.elapsed().as_secs_f64()
}

fn gate_calendar(pending: usize) -> CalendarQueue<u64> {
    let buckets = (pending / 2).next_power_of_two();
    let shift = (22u32.saturating_sub(buckets.trailing_zeros())).max(1);
    CalendarQueue::with_geometry(shift, buckets)
}

const GATE_KERNEL_SAMPLES: usize = 3;

/// ACK hook sequences per controller per sample in the cc microbench.
const GATE_CC_OPS: u64 = 1_000_000;

/// Drive one controller through the sender's per-ACK hook sequence
/// `GATE_CC_OPS` times: `on_ack` + `on_ce_feedback` on every ACK (the hooks
/// the sender calls unconditionally), an RTT sample and a guarded ECN
/// reduction once per ~window. Deterministic — no RNG, fixed CE cadence.
fn cc_on_ack(alg: CcAlg) -> f64 {
    let p = CcParams {
        mss: 1448.0,
        init_cwnd: 10.0 * 1448.0,
        init_ssthresh: (1u64 << 20) as f64,
        dctcp_g: 1.0 / 16.0,
    };
    let mut cc = Cc::new(alg, &p);
    let mut now = 0u64;
    let mut ack = 0u64;
    let start = Instant::now();
    for i in 0..GATE_CC_OPS {
        now += 12_000;
        ack += 1448;
        cc.on_ack(&p, 1448, now);
        cc.on_ce_feedback(&p, 1448, i % 97 == 0, ack, ack + 64 * 1448);
        if i % 64 == 63 {
            cc.on_rtt_sample(&p, 200_000 + (i % 7) * 10_000, now, false);
            cc.on_ece(&p);
        }
    }
    std::hint::black_box(cc.cwnd());
    GATE_CC_OPS as f64 / start.elapsed().as_secs_f64()
}

/// Measure every controller's ACK-path throughput, sampling the controllers
/// round-robin so machine-load noise hits all of them alike, and reduce to
/// per-controller medians plus vs-Reno ratios.
fn cc_section() -> CcSection {
    let mut runs: Vec<Vec<f64>> = vec![Vec::new(); CcAlg::ALL.len()];
    for _ in 0..GATE_KERNEL_SAMPLES {
        for (i, &alg) in CcAlg::ALL.iter().enumerate() {
            runs[i].push(cc_on_ack(alg));
        }
    }
    let medians: Vec<f64> = runs.into_iter().map(median).collect();
    let reno = medians[0];
    CcSection {
        ops: GATE_CC_OPS,
        controllers: CcAlg::ALL
            .iter()
            .zip(&medians)
            .map(|(alg, &m)| CcWorkload {
                controller: alg.label().to_string(),
                ops_per_sec: m,
                vs_reno: m / reno,
            })
            .collect(),
    }
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    v[v.len() / 2]
}

fn kernel_workload(
    pending: usize,
    events: u64,
    heap_bench: impl Fn() -> f64,
    fast_bench: impl Fn() -> f64,
) -> KernelWorkload {
    let mut heap_runs = Vec::new();
    let mut fast_runs = Vec::new();
    for _ in 0..GATE_KERNEL_SAMPLES {
        heap_runs.push(heap_bench());
        fast_runs.push(fast_bench());
    }
    let heap = median(heap_runs);
    let fast = median(fast_runs);
    KernelWorkload {
        pending: pending as u64,
        popped_events: events,
        heap_events_per_sec: heap,
        fast_events_per_sec: fast,
        speedup: fast / heap,
    }
}

/// The gate's standard point set: the Fig. 2 shallow grid at tiny scale,
/// single seed per point so the set stays CI-cheap. 19 points (one DropTail
/// baseline plus 2 transports × 3 queues × 3 delays).
pub fn gate_grid(seed: u64) -> SweepGrid {
    let mut grid = SweepGrid::tiny();
    grid.config.seed = seed;
    grid.config.seed_count = 1;
    grid
}

fn gate_points(seed: u64) -> (ScenarioConfig, Vec<(Transport, QueueKind, u64)>) {
    let grid = gate_grid(seed);
    let mut points = vec![(Transport::Tcp, QueueKind::DropTail, 500)];
    for &transport in &grid.transports {
        for queue in [
            QueueKind::Red(ProtectionMode::Default),
            QueueKind::Red(ProtectionMode::AckSyn),
            QueueKind::SimpleMarking,
        ] {
            for &delay_us in &grid.target_delays_us {
                points.push((transport, queue, delay_us));
            }
        }
    }
    (grid.config, points)
}

/// Run the standard point set through the orchestrator with `jobs` workers
/// (cache disabled — the gate measures execution, never cache hits).
/// Returns (wall seconds, metrics, total events, peak pending).
fn run_gate_sweep(seed: u64, jobs: usize, engine: Engine) -> (f64, Vec<RunMetrics>, u64, u64) {
    let (cfg, points) = gate_points(seed);
    let opts = SweepOptions {
        jobs,
        cache: CacheMode::Disabled,
    };
    let start = Instant::now();
    let (results, _) = crate::simsweep::run_points(&points, &opts, |&(transport, queue, delay)| {
        let (m, report) = run_scenario_once_with(
            &cfg,
            transport,
            queue,
            BufferDepth::Shallow,
            SimDuration::from_micros(delay),
            engine,
        );
        (m, report.events, report.peak_pending as u64)
    });
    let wall = start.elapsed().as_secs_f64();
    let mut metrics = Vec::with_capacity(results.len());
    let mut events = 0u64;
    let mut peak = 0u64;
    for (m, ev, pk) in results {
        events += ev;
        peak = peak.max(pk);
        metrics.push(m);
    }
    (wall, metrics, events, peak)
}

/// The hot-host configuration for the end-to-end/pool/link sections: a
/// 32-host cluster with four map waves, so each host juggles dozens of
/// concurrent shuffle flows. At gate-grid scale (4 hosts, a handful of
/// flows) the seed's per-event endpoint scans and Box-per-packet model are
/// in the noise; at this scale they dominate, which is exactly the regime
/// the overhaul targets.
pub fn hot_host_config(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::tiny();
    cfg.racks = 2;
    cfg.hosts_per_rack = 16;
    cfg.input_bytes_per_node = 8_000_000;
    cfg.map_waves = 4;
    cfg.seed = seed;
    cfg
}

/// One steady-state DCTCP run (threshold marking, shallow buffers) of the
/// hot-host point on the given engine.
fn dctcp_point(
    seed: u64,
    engine: Engine,
) -> (f64, RunMetrics, netsim::RunReport, netpacket::PoolStats) {
    let cfg = hot_host_config(seed);
    let start = Instant::now();
    let (m, report, pool) = run_scenario_once_full(
        &cfg,
        Transport::Dctcp,
        QueueKind::SimpleMarking,
        BufferDepth::Shallow,
        SimDuration::from_micros(500),
        engine,
        simtrace::TraceHandle::null(),
    );
    (start.elapsed().as_secs_f64(), m, report, pool)
}

/// Measure the full gate report: kernel microbenchmarks, the pool/link
/// sections on the DCTCP point, and the standard point set serial reference
/// vs serial fast vs parallel fast.
pub fn measure(seed: u64) -> BenchReport {
    eprintln!("[bench_gate] kernel microbench (churn, calendar vs heap)...");
    let churn_w = kernel_workload(
        65_536,
        300_000,
        || churn(EventQueue::new(), 65_536, 300_000),
        || churn(gate_calendar(65_536), 65_536, 300_000),
    );
    eprintln!(
        "  heap {:.2}M ev/s, calendar {:.2}M ev/s, speedup {:.2}x",
        churn_w.heap_events_per_sec / 1e6,
        churn_w.fast_events_per_sec / 1e6,
        churn_w.speedup,
    );
    eprintln!("[bench_gate] kernel microbench (cancel-heavy, wheel vs heap)...");
    let cancel_w = kernel_workload(
        65_536,
        300_000,
        || cancel_heavy(EventQueue::new(), 65_536, 300_000),
        || cancel_heavy(HybridQueue::new(), 65_536, 300_000),
    );
    eprintln!(
        "  heap {:.2}M ev/s, wheel {:.2}M ev/s, speedup {:.2}x",
        cancel_w.heap_events_per_sec / 1e6,
        cancel_w.fast_events_per_sec / 1e6,
        cancel_w.speedup,
    );

    eprintln!("[bench_gate] congestion-controller on_ack microbench...");
    let cc = cc_section();
    for w in &cc.controllers {
        eprintln!(
            "  {:<8} {:.2}M ops/s ({:.2}x vs reno)",
            w.controller,
            w.ops_per_sec / 1e6,
            w.vs_reno,
        );
    }

    eprintln!("[bench_gate] hot-host DCTCP point, pooled fast engine...");
    let (fast_pt_s, fast_pt_m, fast_pt_rep, fast_pool) = dctcp_point(seed, Engine::Fast);
    eprintln!(
        "  {:.3}s, {} packets, {} heap allocs, {} events",
        fast_pt_s, fast_pool.inserts, fast_pool.heap_allocs, fast_pt_rep.events
    );
    eprintln!("[bench_gate] hot-host DCTCP point, reference engine...");
    let (ref_pt_s, ref_pt_m, ref_pt_rep, ref_pool) = dctcp_point(seed, Engine::Reference);
    eprintln!(
        "  {:.3}s, {} packets, {} heap allocs, {} events",
        ref_pt_s, ref_pool.inserts, ref_pool.heap_allocs, ref_pt_rep.events
    );
    eprintln!("  end-to-end engine speedup: {:.2}x", ref_pt_s / fast_pt_s);
    let point_identical = fast_pt_m == ref_pt_m;

    eprintln!("[bench_gate] standard point set, serial reference engine...");
    let (ref_s, ref_metrics, ref_events, ref_peak) = run_gate_sweep(seed, 1, Engine::Reference);
    eprintln!("  {ref_s:.2}s, {ref_events} events");
    eprintln!("[bench_gate] standard point set, serial fast engine...");
    let (serial_s, serial_metrics, serial_events, serial_peak) =
        run_gate_sweep(seed, 1, Engine::Fast);
    eprintln!("  {serial_s:.2}s, {serial_events} events");
    eprintln!("[bench_gate] standard point set, parallel fast engine (all cores)...");
    let (par_s, par_metrics, par_events, _par_peak) = run_gate_sweep(seed, 0, Engine::Fast);
    eprintln!("  {par_s:.2}s, {par_events} events");

    let identical =
        serial_metrics == par_metrics && serial_metrics == ref_metrics && point_identical;
    if !identical {
        eprintln!("[bench_gate] WARNING: serial/parallel or fast/reference outputs differ!");
    }

    let packets = fast_pool.inserts;
    BenchReport {
        description: "Hot-path netbench gate: scheduler kernel microbenchmarks (calendar churn, \
                      timer-wheel cancel-heavy) vs the reference binary heap; per-controller \
                      simcc on_ack hot-path microbenchmarks gated on the vs-Reno ratio; a \
                      hot-host DCTCP point run end to end on both engines with packet-arena \
                      allocation accounting and events-per-packet; and the Fig. 2 shallow \
                      standard point set run serially on the reference engine (seed allocation \
                      model + heap scheduler), serially on the fast engine, and on one worker \
                      per core. outputs_identical asserts serial == parallel AND fast == \
                      reference metrics on every point."
            .to_string(),
        kernel: KernelSection {
            churn: churn_w,
            cancel_heavy: cancel_w,
        },
        cc,
        end_to_end: EndToEndSection {
            hosts: hot_host_config(seed).hosts() as u64,
            fast_seconds: fast_pt_s,
            reference_seconds: ref_pt_s,
            engine_speedup: ref_pt_s / fast_pt_s,
            fast_events: fast_pt_rep.events,
            reference_events: ref_pt_rep.events,
            fast_events_per_sec: fast_pt_rep.events as f64 / fast_pt_s,
            reference_events_per_sec: ref_pt_rep.events as f64 / ref_pt_s,
        },
        pool: PoolSection {
            packets,
            pooled_heap_allocs: fast_pool.heap_allocs,
            reference_heap_allocs: ref_pool.heap_allocs,
            pooled_allocs_per_packet: fast_pool.heap_allocs as f64 / packets.max(1) as f64,
            pooled_inserts_per_sec: packets as f64 / fast_pt_s,
            reference_inserts_per_sec: ref_pool.inserts as f64 / ref_pt_s,
            high_water: fast_pool.high_water as u64,
        },
        link: LinkSection {
            packets,
            fast_events: fast_pt_rep.events,
            fast_events_per_packet: fast_pt_rep.events as f64 / packets.max(1) as f64,
            reference_events: ref_pt_rep.events,
            reference_events_per_packet: ref_pt_rep.events as f64 / ref_pool.inserts.max(1) as f64,
        },
        sweep_fig2_shallow: SweepSection {
            points: serial_metrics.len() as u64,
            reference_seconds: ref_s,
            fast_seconds: serial_s,
            parallel_seconds: par_s,
            engine_speedup: ref_s / serial_s,
            parallel_speedup: serial_s / par_s,
            fast_events_per_sec: serial_events as f64 / serial_s,
            reference_events_per_sec: ref_events as f64 / ref_s,
            outputs_identical: identical,
            reference_events: ref_events,
            fast_events: serial_events,
            reference_peak_pending: ref_peak,
            fast_peak_pending: serial_peak,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        BenchReport {
            description: "test".into(),
            kernel: KernelSection {
                churn: KernelWorkload {
                    pending: 1024,
                    popped_events: 1000,
                    heap_events_per_sec: 1.0e6,
                    fast_events_per_sec: 3.0e6,
                    speedup: 3.0,
                },
                cancel_heavy: KernelWorkload {
                    pending: 1024,
                    popped_events: 1000,
                    heap_events_per_sec: 0.8e6,
                    fast_events_per_sec: 2.8e6,
                    speedup: 3.5,
                },
            },
            cc: CcSection {
                ops: 1000,
                controllers: CcAlg::ALL
                    .iter()
                    .map(|alg| CcWorkload {
                        controller: alg.label().to_string(),
                        ops_per_sec: 50.0e6,
                        vs_reno: 1.0,
                    })
                    .collect(),
            },
            end_to_end: EndToEndSection {
                hosts: 32,
                fast_seconds: 0.4,
                reference_seconds: 1.2,
                engine_speedup: 3.0,
                fast_events: 1_800_000,
                reference_events: 1_800_000,
                fast_events_per_sec: 4.5e6,
                reference_events_per_sec: 1.5e6,
            },
            pool: PoolSection {
                packets: 100_000,
                pooled_heap_allocs: 32,
                reference_heap_allocs: 100_000,
                pooled_allocs_per_packet: 0.00032,
                pooled_inserts_per_sec: 2.0e6,
                reference_inserts_per_sec: 1.0e6,
                high_water: 64,
            },
            link: LinkSection {
                packets: 100_000,
                fast_events: 250_000,
                fast_events_per_packet: 2.5,
                reference_events: 420_000,
                reference_events_per_packet: 4.2,
            },
            sweep_fig2_shallow: SweepSection {
                points: 19,
                reference_seconds: 4.0,
                fast_seconds: 1.0,
                parallel_seconds: 0.5,
                engine_speedup: 4.0,
                parallel_speedup: 2.0,
                fast_events_per_sec: 1.0e6,
                reference_events_per_sec: 0.5e6,
                outputs_identical: true,
                reference_events: 1_200_000,
                fast_events: 1_000_000,
                reference_peak_pending: 100,
                fast_peak_pending: 100,
            },
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report();
        assert!(compare(&r, &r, &Tolerance::default()).is_empty());
    }

    #[test]
    fn small_noise_within_tolerance_passes() {
        let base = report();
        let mut cur = report();
        cur.kernel.churn.fast_events_per_sec *= 0.95; // -5% < 10%
        cur.sweep_fig2_shallow.fast_seconds *= 1.05; // +5% < 10%
        cur.sweep_fig2_shallow.engine_speedup *= 0.95;
        cur.link.fast_events_per_packet *= 1.05;
        assert!(compare(&cur, &base, &Tolerance::default()).is_empty());
    }

    #[test]
    fn inflated_baseline_fails_the_gate() {
        // The acceptance scenario: a baseline whose metrics claim 20% more
        // than we can measure must trip the gate.
        let cur = report();
        let mut base = report();
        base.kernel.churn.speedup *= 1.2;
        base.kernel.cancel_heavy.speedup *= 1.2;
        base.end_to_end.engine_speedup *= 1.5;
        base.sweep_fig2_shallow.fast_seconds /= 1.4;
        let v = compare(&cur, &base, &Tolerance::default());
        let metrics: Vec<&str> = v.iter().map(|x| x.metric.as_str()).collect();
        assert!(metrics.contains(&"kernel.churn.speedup"));
        assert!(metrics.contains(&"kernel.cancel_heavy.speedup"));
        assert!(metrics.contains(&"end_to_end.engine_speedup"));
        assert!(metrics.contains(&"sweep_fig2_shallow.fast_seconds"));
    }

    #[test]
    fn wall_clock_regression_fails() {
        let base = report();
        let mut cur = report();
        cur.sweep_fig2_shallow.fast_seconds = base.sweep_fig2_shallow.fast_seconds * 1.4;
        let v = compare(&cur, &base, &Tolerance::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].metric, "sweep_fig2_shallow.fast_seconds");
        assert!(v[0].to_string().contains("fast_seconds"));
    }

    #[test]
    fn per_packet_alloc_regression_fails() {
        // The arena's whole point: a pooled run that starts heap-allocating
        // per packet (or scheduling extra events per packet) trips the gate.
        let base = report();
        let mut cur = report();
        cur.pool.pooled_allocs_per_packet = 0.5;
        cur.link.fast_events_per_packet = base.link.fast_events_per_packet * 1.3;
        let v = compare(&cur, &base, &Tolerance::default());
        let metrics: Vec<&str> = v.iter().map(|x| x.metric.as_str()).collect();
        assert!(metrics.contains(&"pool.pooled_allocs_per_packet"));
        assert!(metrics.contains(&"link.fast_events_per_packet"));
    }

    #[test]
    fn controller_ack_path_regression_fails() {
        let base = report();
        let mut cur = report();
        // Prague's on_ack grows 30% slower relative to Reno: outside the
        // 25% cc ratio tolerance.
        cur.cc.controllers.last_mut().unwrap().vs_reno = 0.7;
        let v = compare(&cur, &base, &Tolerance::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].metric, "cc.prague.vs_reno");
    }

    #[test]
    fn missing_controller_fails_its_baseline_line() {
        let base = report();
        let mut cur = report();
        cur.cc.controllers.retain(|c| c.controller != "bbr");
        let v = compare(&cur, &base, &Tolerance::default());
        assert!(v.iter().any(|x| x.metric == "cc.bbr.vs_reno"), "{v:?}");
    }

    #[test]
    fn divergent_outputs_fail_unconditionally() {
        let base = report();
        let mut cur = report();
        cur.sweep_fig2_shallow.outputs_identical = false;
        let v = compare(&cur, &base, &Tolerance::default());
        assert!(v
            .iter()
            .any(|x| x.metric == "sweep_fig2_shallow.outputs_identical"));
    }

    #[test]
    fn report_json_roundtrip() {
        let r = report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // Schema check: the BENCH_7.json top-level keys.
        assert!(json.contains("\"kernel\""));
        assert!(json.contains("\"cc\""));
        assert!(json.contains("\"vs_reno\""));
        assert!(json.contains("\"pool\""));
        assert!(json.contains("\"link\""));
        assert!(json.contains("\"sweep_fig2_shallow\""));
        assert!(json.contains("\"cancel_heavy\""));
        assert!(json.contains("\"engine_speedup\""));
    }

    #[test]
    fn gate_grid_is_single_seed() {
        let g = gate_grid(7);
        assert_eq!(g.config.seed, 7);
        assert_eq!(g.config.seed_count, 1);
        let (_, points) = gate_points(7);
        assert_eq!(points.len(), 1 + 2 * 3 * 3, "baseline + 2x3x3 grid");
    }
}
