//! Per-node and cluster-wide goodput accounting.

use netpacket::NodeId;
use serde::{Deserialize, Serialize};
use simevent::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Counts application payload bytes delivered to each node over time, and
/// turns them into the paper's "average throughput per node" (Fig. 3 metric).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThroughputMeter {
    per_node: BTreeMap<NodeId, u64>,
    total_bytes: u64,
    first_delivery: Option<SimTime>,
    last_delivery: Option<SimTime>,
}

impl ThroughputMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` of payload delivered at `node`.
    pub fn record(&mut self, node: NodeId, bytes: u64, now: SimTime) {
        if bytes == 0 {
            return;
        }
        *self.per_node.entry(node).or_insert(0) += bytes;
        self.total_bytes += bytes;
        if self.first_delivery.is_none() {
            self.first_delivery = Some(now);
        }
        self.last_delivery = Some(now);
    }

    /// Total payload bytes delivered cluster-wide.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Payload bytes delivered to one node.
    pub fn node_bytes(&self, node: NodeId) -> u64 {
        self.per_node.get(&node).copied().unwrap_or(0)
    }

    /// Nodes that received anything.
    pub fn active_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Cluster goodput in bits/s over `duration`.
    pub fn cluster_bps(&self, duration: SimDuration) -> f64 {
        if duration == SimDuration::ZERO {
            return 0.0;
        }
        self.total_bytes as f64 * 8.0 / duration.as_secs_f64()
    }

    /// The paper's Fig. 3 metric: mean goodput per receiving node, bits/s.
    pub fn mean_node_bps(&self, duration: SimDuration) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.cluster_bps(duration) / self.per_node.len() as f64
    }

    /// Span between first and last delivery.
    pub fn active_span(&self) -> SimDuration {
        match (self.first_delivery, self.last_delivery) {
            (Some(a), Some(b)) => b.since(a),
            _ => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter() {
        let m = ThroughputMeter::new();
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.cluster_bps(SimDuration::from_secs(1)), 0.0);
        assert_eq!(m.mean_node_bps(SimDuration::from_secs(1)), 0.0);
        assert_eq!(m.active_span(), SimDuration::ZERO);
    }

    #[test]
    fn accumulates_per_node() {
        let mut m = ThroughputMeter::new();
        m.record(NodeId(1), 1000, SimTime::from_secs(1));
        m.record(NodeId(2), 3000, SimTime::from_secs(2));
        m.record(NodeId(1), 500, SimTime::from_secs(3));
        assert_eq!(m.total_bytes(), 4500);
        assert_eq!(m.node_bytes(NodeId(1)), 1500);
        assert_eq!(m.node_bytes(NodeId(2)), 3000);
        assert_eq!(m.node_bytes(NodeId(3)), 0);
        assert_eq!(m.active_nodes(), 2);
        assert_eq!(m.active_span(), SimDuration::from_secs(2));
    }

    #[test]
    fn zero_byte_records_ignored() {
        let mut m = ThroughputMeter::new();
        m.record(NodeId(1), 0, SimTime::from_secs(1));
        assert_eq!(m.active_nodes(), 0);
        assert_eq!(m.active_span(), SimDuration::ZERO);
    }

    #[test]
    fn throughput_math() {
        let mut m = ThroughputMeter::new();
        m.record(NodeId(1), 125_000, SimTime::from_secs(1)); // 1 Mbit
        m.record(NodeId(2), 125_000, SimTime::from_secs(1));
        let bps = m.cluster_bps(SimDuration::from_secs(2));
        assert!((bps - 1_000_000.0).abs() < 1.0, "bps = {bps}");
        let per_node = m.mean_node_bps(SimDuration::from_secs(2));
        assert!((per_node - 500_000.0).abs() < 1.0);
    }
}
