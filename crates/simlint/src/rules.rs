//! The lint rules: SL001–SL012.
//!
//! Each rule is a pure function over a file's token stream plus its
//! workspace-relative path. The rules encode the simulator's **determinism
//! contract** (see DESIGN.md): simulation results must be a function of the
//! scenario and the seed, and of nothing else.
//!
//! SL001–SL006 are flat pattern matches over the token stream; SL007–SL012
//! additionally consult the [`ScopeMap`] (brace-matched item context) and
//! per-file name tables (which locals/fields are hash-ordered collections,
//! which are `f64` accumulators), so they can tell a `RefCell` *field of
//! simulation state* from a `RefCell` local in a helper.

use crate::lexer::{Token, TokenKind};
use crate::scope::ScopeMap;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable diagnostic code (`SL001` ... `SL012`).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Set when a `simlint.toml` waiver covers this finding.
    pub waived: bool,
}

/// Crate directories whose code *is* the simulation: wall-clock time and
/// ambient entropy are banned here outright. `experiments` is deliberately
/// absent — measuring real elapsed time in the harness is legitimate.
const SIM_CRATES: &[&str] = &[
    "simevent",
    "simtrace",
    "simcc",
    "netpacket",
    "tcpstack",
    "core",
    "netsim",
    "mrsim",
    "workload",
    "simmetrics",
];

/// Crates where default-hasher collections are banned (simulation state and
/// anything that feeds report output, whose iteration order must be stable).
const HASH_ORDER_CRATES: &[&str] = &[
    "simevent",
    "simtrace",
    "simcc",
    "netpacket",
    "tcpstack",
    "core",
    "netsim",
    "mrsim",
    "workload",
    "simmetrics",
    "experiments",
];

/// Narrow numeric types for SL005: casting a time/byte counter into one of
/// these silently truncates at datacenter scale (a 10 s run is 1e10 ns —
/// already past `u32`).
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// The crate directory name from a workspace-relative path
/// (`crates/netsim/src/...` → `netsim`).
fn crate_dir(path: &str) -> Option<&str> {
    let mut parts = path.split('/');
    if parts.next()? != "crates" {
        return None;
    }
    parts.next()
}

/// True when the path is test, bench, example, or fixture code — exempt from
/// SL004 (panicking on violated expectations is exactly what tests do).
fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|p| matches!(p, "tests" | "benches" | "examples" | "fixtures"))
}

/// Mark every token inside a `#[cfg(test)]`-gated item or a `#[test]`
/// function body. Works on brace balance: after the attribute, everything up
/// to the close of the next `{` block is test code.
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"));
        let is_test_attr = tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("test"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct(']'));
        if is_cfg_test || is_test_attr {
            // Mark from the attribute to the end of the next balanced block.
            // A `#[cfg(test)]` on a braceless item (e.g. `use`) ends at `;`
            // before any `{` — handle that too.
            let start = i;
            let mut j = i;
            let mut depth = 0usize;
            let mut entered = false;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    depth += 1;
                    entered = true;
                } else if tokens[j].is_punct('}') {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        break;
                    }
                } else if tokens[j].is_punct(';') && !entered {
                    break;
                }
                j += 1;
            }
            let end = j.min(tokens.len().saturating_sub(1));
            for m in &mut mask[start..=end] {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// True when token `i` sits inside a `use` declaration. Sound because a
/// `use` declaration always terminates with `;` and `use` cannot appear
/// mid-expression: a `use` ident with no `;` after it before token `i`
/// means `i` is still inside that declaration (group imports included).
fn in_use_statement(tokens: &[Token], i: usize) -> bool {
    for t in tokens[..i].iter().rev() {
        if t.is_punct(';') {
            return false;
        }
        if t.is_ident("use") {
            return true;
        }
    }
    false
}

/// Count top-level commas inside the generic argument list opening at
/// `tokens[open]` (which must be `<`). Returns `None` when the list never
/// closes (macro soup) — callers treat that as "cannot prove a custom
/// hasher", i.e. flag it.
fn generic_arity(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut paren = 0usize;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        // `->` and `=>`: the `>` is not a generics close.
        if (t.is_punct('-') || t.is_punct('='))
            && tokens.get(j + 1).is_some_and(|n| n.is_punct('>'))
        {
            j += 2;
            continue;
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return Some(commas);
            }
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren = paren.saturating_sub(1);
        } else if t.is_punct(',') && depth == 1 && paren == 0 {
            commas += 1;
        } else if t.is_punct(';') && depth == 1 {
            // `[T; N]` inside generics — commas there are still top level
            // for our purpose; nothing to do.
        }
        j += 1;
    }
    None
}

/// Lookback window for SL005: does any of the `n` tokens before `i` name a
/// time or byte quantity?
fn lookback_names_counter(tokens: &[Token], i: usize, n: usize) -> Option<String> {
    let lo = i.saturating_sub(n);
    for t in tokens[lo..i].iter().rev() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let s = t.text.as_str();
        let timeish = s.contains("nanos")
            || s.contains("micros")
            || s.contains("millis")
            || s.ends_with("_ns")
            || s.ends_with("_us")
            || s.ends_with("_ms");
        let byteish = s.contains("bytes") || s == "bps";
        if timeish || byteish {
            return Some(t.text.clone());
        }
    }
    None
}

/// Idents SL006 treats as naming a full packet value. Deliberately exact:
/// `host_buffer_packets`, `PacketRef`, and friends are counters or 8-byte
/// handles, not payloads.
const PACKETISH: &[&str] = &["Packet", "packet", "pkt"];

/// Scan the balanced-paren argument list opening at `tokens[open]` (which
/// must be `(`) for an ident naming a packet payload. A struct-field label
/// (`packet: r`) is skipped — it labels a field holding a cheap handle, not
/// a by-value payload — while a `Packet::...` path still counts (that is an
/// inline construction). Returns the matching ident, or `None` when the
/// argument is clean or the list never closes.
fn packetish_payload(tokens: &[Token], open: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return None;
            }
        } else if t.kind == TokenKind::Ident && PACKETISH.contains(&t.text.as_str()) {
            let is_field_label = tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && !tokens.get(j + 2).is_some_and(|n| n.is_punct(':'));
            if !is_field_label {
                return Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Index of the `>` closing the generic list opening at `tokens[open]`
/// (which must be `<`), skipping `->`/`=>`; `None` when it never closes.
fn generic_close(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if (t.is_punct('-') || t.is_punct('='))
            && tokens.get(j + 1).is_some_and(|n| n.is_punct('>'))
        {
            j += 2;
            continue;
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Types whose very presence in a simulation state type hides mutation from
/// the single-owner event loop (SL008). `Atomic*` is matched by prefix.
const INTERIOR_MUT: &[&str] = &[
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "Mutex",
    "RwLock",
];

/// Methods whose call on a hash-ordered collection visits it in hash order
/// (SL007).
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Names declared in this file with a `HashMap`/`HashSet` type — directly
/// (`m: HashMap<...>`, including through a path prefix), via a file-local
/// `type` alias, or by `let`-binding a constructor (`let mut m =
/// HashMap::new()`). SL007 flags iteration over these names. A custom
/// hasher does **not** exempt a name: a fixed hasher makes iteration
/// deterministic (SL002's concern) but the order is still arbitrary, which
/// is exactly what SL007 exists to surface.
fn hash_typed_names(tokens: &[Token]) -> Vec<String> {
    let mut types: Vec<&str> = vec!["HashMap", "HashSet"];
    for i in 0..tokens.len() {
        // `type LocMap = [path::]HashMap<...>`
        if tokens[i].is_ident("type")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            let end = (i + 10).min(tokens.len());
            for j in i + 3..end {
                let t = &tokens[j];
                if t.kind == TokenKind::Ident {
                    if types.contains(&t.text.as_str()) {
                        types.push(tokens[i + 1].text.as_str());
                        break;
                    }
                } else if !t.is_punct(':') {
                    break;
                }
            }
        }
    }
    let mut names = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        // `name : [&][mut] [path::]HashType` — a field, param, or local
        // annotation. The `:` must not be a path separator on either side.
        if t.kind == TokenKind::Ident
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && !(i > 0 && tokens[i - 1].is_punct(':'))
        {
            let end = (i + 10).min(tokens.len());
            for n in &tokens[i + 2..end] {
                if n.kind == TokenKind::Ident {
                    if types.contains(&n.text.as_str()) {
                        names.push(t.text.clone());
                        break;
                    }
                    // `mut` and lowercase path segments (`std`,
                    // `collections`) may precede the type; any other
                    // capitalized ident is a different concrete type.
                    if n.text != "mut" && n.text.chars().next().is_some_and(char::is_uppercase) {
                        break;
                    }
                } else if !(n.is_punct(':') || n.is_punct('&')) {
                    break;
                }
            }
        }
        // `let [mut] name = [path::]HashType::...`
        if t.is_ident("let") {
            let mut k = i + 1;
            if tokens.get(k).is_some_and(|n| n.is_ident("mut")) {
                k += 1;
            }
            if tokens.get(k).is_some_and(|n| n.kind == TokenKind::Ident)
                && tokens.get(k + 1).is_some_and(|n| n.is_punct('='))
            {
                let end = (k + 10).min(tokens.len());
                for j in k + 2..end {
                    let n = &tokens[j];
                    if n.kind == TokenKind::Ident {
                        if types.contains(&n.text.as_str()) {
                            names.push(tokens[k].text.clone());
                            break;
                        }
                    } else if !n.is_punct(':') {
                        break;
                    }
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Names declared `f64` in this file (`x: f64` annotations and
/// `let mut x = 1.0` float-literal bindings) — SL009's accumulator table.
fn f64_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && !(i > 0 && tokens[i - 1].is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("f64"))
        {
            names.push(t.text.clone());
        }
        if t.is_ident("let") && tokens.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            let is_float = |n: &Token| {
                n.kind == TokenKind::Number && (n.text.contains('.') || n.text.ends_with("f64"))
            };
            if tokens
                .get(i + 2)
                .is_some_and(|n| n.kind == TokenKind::Ident)
                && tokens.get(i + 3).is_some_and(|n| n.is_punct('='))
                && tokens.get(i + 4).is_some_and(is_float)
            {
                names.push(tokens[i + 2].text.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// SL007's justification scan: a sort call or BTree collection within a
/// 30-token window around `i` counts as evidence the author made the
/// iteration order deliberate (`collect()` + `sort()`, or rebuilding into a
/// BTreeMap).
fn sorted_nearby(tokens: &[Token], i: usize) -> bool {
    let lo = i.saturating_sub(30);
    let hi = (i + 30).min(tokens.len());
    tokens[lo..hi].iter().any(|t| {
        t.kind == TokenKind::Ident && (t.text.starts_with("sort") || t.text.contains("BTree"))
    })
}

/// SL011: does the first top-level argument of the call opening at
/// `tokens[open]` (`(`) compute with a bare `-` (not `->`), with no clamp
/// (`max` / `saturating_sub` / `checked_sub`) in sight?
fn first_arg_unclamped_subtraction(tokens: &[Token], open: usize) -> bool {
    let mut depth = 0usize;
    let mut minus = false;
    let mut clamped = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                break;
            }
        } else if t.is_punct(',') && depth == 1 {
            break;
        } else if t.is_punct('-') && !tokens.get(j + 1).is_some_and(|n| n.is_punct('>')) {
            minus = true;
        } else if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "max" | "saturating_sub" | "checked_sub")
        {
            clamped = true;
        }
        j += 1;
    }
    minus && !clamped
}

/// Run every rule over one file. `path` must be workspace-relative with
/// forward slashes.
pub fn check_file(path: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    let krate = crate_dir(path);
    let in_sim = krate.is_some_and(|c| SIM_CRATES.contains(&c));
    let in_hash_scope = krate.is_some_and(|c| HASH_ORDER_CRATES.contains(&c));
    // SL009's scope: code that computes reported numbers.
    let in_metrics = matches!(krate, Some("simmetrics") | Some("experiments"));
    let test_path = is_test_path(path);
    let test_mask = test_region_mask(tokens);
    let scope = ScopeMap::build(tokens);
    let hash_names = if in_sim && !test_path {
        hash_typed_names(tokens)
    } else {
        Vec::new()
    };
    let f64_accs = if in_metrics && !test_path {
        f64_names(tokens)
    } else {
        Vec::new()
    };

    let mut push = |line: u32, code: &'static str, message: String| {
        out.push(Finding {
            file: path.to_string(),
            line,
            code,
            message,
            waived: false,
        });
    };

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // SL008: interior mutability declared inside a simulation state
        // type. A single-owner event loop is what makes runs replayable;
        // a RefCell/Atomic field lets state mutate behind a shared
        // reference, invisibly to the scheduler's ordering.
        if in_sim
            && !test_path
            && !test_mask[i]
            && scope.in_type_def(i)
            && (INTERIOR_MUT.contains(&t.text.as_str()) || t.text.starts_with("Atomic"))
            && !in_use_statement(tokens, i)
        {
            push(
                t.line,
                "SL008",
                format!(
                    "`{}` field in a simulation state type: interior mutability \
                     hides writes from the single-owner event loop; hold plain \
                     owned state (or waive with a proof it never affects results)",
                    t.text
                ),
            );
        }
        // SL009: the trigger ident is an arbitrary name from the f64
        // table, so it is checked outside the name match below.
        if !f64_accs.is_empty()
            && !test_mask[i]
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('+'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('='))
            && f64_accs.iter().any(|n| n == &t.text)
        {
            push(
                t.line,
                "SL009",
                format!(
                    "`{} +=` accumulates in f64: float addition is \
                     order-sensitive, so summation order leaks into reported \
                     numbers; accumulate in integers (u64/u128, like \
                     simmetrics' histogram) and convert once at the end",
                    t.text
                ),
            );
        }
        match t.text.as_str() {
            // SL001: wall-clock time sources in simulation crates.
            "Instant" | "SystemTime" if in_sim => {
                push(
                    t.line,
                    "SL001",
                    format!(
                        "`{}` in simulation crate `{}`: simulated time must come \
                         from SimTime, never the wall clock",
                        t.text,
                        krate.unwrap_or("?")
                    ),
                );
            }
            // SL002: default-hasher collections where iteration order leaks
            // into simulation state or reports.
            "HashMap" | "HashSet" if in_hash_scope => {
                if in_use_statement(tokens, i) {
                    continue; // imports are fine; usage sites are checked
                }
                let required = if t.text == "HashMap" { 2 } else { 1 };
                let custom_hasher = tokens
                    .get(i + 1)
                    .filter(|n| n.is_punct('<'))
                    .and_then(|_| generic_arity(tokens, i + 1))
                    .is_some_and(|commas| commas >= required);
                if !custom_hasher {
                    push(
                        t.line,
                        "SL002",
                        format!(
                            "`{}` with the default (randomized) hasher: iteration \
                             order is nondeterministic; use BTreeMap/BTreeSet or a \
                             fixed BuildHasher",
                            t.text
                        ),
                    );
                }
            }
            // SL003: ambient entropy anywhere in the workspace.
            "thread_rng" | "from_entropy" => {
                push(
                    t.line,
                    "SL003",
                    format!(
                        "`{}`: all randomness must flow from an explicitly seeded \
                         SimRng so runs are reproducible",
                        t.text
                    ),
                );
            }
            // SL004: unwrap/expect in non-test library code.
            "unwrap" | "expect" if !test_path && !test_mask[i] => {
                let is_method_call = i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_method_call {
                    push(
                        t.line,
                        "SL004",
                        format!(
                            "`.{}()` in library code: return a Result or document \
                             the invariant with a simlint.toml waiver",
                            t.text
                        ),
                    );
                }
            }
            // SL005: lossy `as` casts of time/byte counters. Test code is
            // exempt: its values are small constants by construction.
            "as" if !test_path && !test_mask[i] => {
                let Some(next) = tokens.get(i + 1) else {
                    continue;
                };
                if next.kind == TokenKind::Ident && NARROW_TYPES.contains(&next.text.as_str()) {
                    if let Some(counter) = lookback_names_counter(tokens, i, 6) {
                        push(
                            t.line,
                            "SL005",
                            format!(
                                "`{}` cast to `{}` can truncate: time/byte counters \
                                 must stay in 64-bit (or use try_into with a checked \
                                 contract)",
                                counter, next.text
                            ),
                        );
                    }
                }
            }
            // SL006: per-packet heap traffic outside the pool API. Packet
            // storage on the hot path belongs in `PacketPool`; a `Box::new`
            // or growable-buffer push of a packet payload is a per-packet
            // allocation the arena was built to eliminate.
            "Box" if in_sim && !test_path && !test_mask[i] => {
                // `Box::new(` — and the turbofish spelling
                // `Box::<T>::new(`, which the original adjacency check
                // missed (the generics sit between the path separators).
                let path_sep = |j: usize| {
                    tokens.get(j).is_some_and(|n| n.is_punct(':'))
                        && tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                };
                if !path_sep(i + 1) {
                    continue;
                }
                let mut j = i + 3;
                if tokens.get(j).is_some_and(|n| n.is_punct('<')) {
                    match generic_close(tokens, j) {
                        Some(close) if path_sep(close + 1) => j = close + 3,
                        _ => continue,
                    }
                }
                let is_box_new = tokens.get(j).is_some_and(|n| n.is_ident("new"))
                    && tokens.get(j + 1).is_some_and(|n| n.is_punct('('));
                if is_box_new {
                    if let Some(what) = packetish_payload(tokens, j + 1) {
                        push(
                            t.line,
                            "SL006",
                            format!(
                                "`Box::new({what})` heap-allocates per packet: route \
                                 packet storage through PacketPool (the pool's \
                                 reference mode is the only sanctioned per-packet Box)"
                            ),
                        );
                    }
                }
            }
            "push" | "push_back" if in_sim && !test_path && !test_mask[i] => {
                let is_method_call = i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_method_call {
                    if let Some(what) = packetish_payload(tokens, i + 1) {
                        push(
                            t.line,
                            "SL006",
                            format!(
                                "`.{}({what})` moves a packet-sized payload into a \
                                 growable buffer: pass PacketRef handles from the \
                                 pool, or waive with the buffer's amortization \
                                 contract in simlint.toml",
                                t.text
                            ),
                        );
                    }
                }
            }
            // SL007: hash-order iteration in simulation crates. The name
            // table holds everything declared HashMap/HashSet in this file;
            // visiting one in hash order without a sort/BTree nearby puts
            // an arbitrary (even if fixed-hasher deterministic) order on
            // the hot path.
            "iter" | "iter_mut" | "keys" | "values" | "values_mut" | "drain" | "into_iter"
            | "retain"
                if in_sim && !test_path && !test_mask[i] && !hash_names.is_empty() =>
            {
                debug_assert!(HASH_ITER_METHODS.contains(&t.text.as_str()));
                let receiver = (i >= 2
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')))
                .then(|| &tokens[i - 2])
                .filter(|r| r.kind == TokenKind::Ident && hash_names.contains(&r.text));
                if let Some(r) = receiver {
                    if !sorted_nearby(tokens, i) {
                        push(
                            t.line,
                            "SL007",
                            format!(
                                "`{}.{}()` in fn `{}` visits a hash-ordered collection: \
                                 iteration order is arbitrary; sort the result, use a \
                                 BTree collection, or waive with an order-insensitivity \
                                 argument",
                                r.text,
                                t.text,
                                scope.enclosing_fn(i).unwrap_or("?")
                            ),
                        );
                    }
                }
            }
            // SL007, `for _ in map` form (method-less iteration).
            "in" if in_sim && !test_path && !test_mask[i] && !hash_names.is_empty() => {
                let mut j = i + 1;
                while tokens
                    .get(j)
                    .is_some_and(|n| n.is_punct('&') || n.is_ident("mut"))
                {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|n| n.is_ident("self"))
                    && tokens.get(j + 1).is_some_and(|n| n.is_punct('.'))
                {
                    j += 2;
                }
                let direct_loop = tokens
                    .get(j)
                    .is_some_and(|n| n.kind == TokenKind::Ident && hash_names.contains(&n.text))
                    && tokens.get(j + 1).is_some_and(|n| n.is_punct('{'));
                if direct_loop && !sorted_nearby(tokens, i) {
                    push(
                        t.line,
                        "SL007",
                        format!(
                            "`for .. in {}` in fn `{}` visits a hash-ordered collection: \
                             iteration order is arbitrary; sort the result, use a BTree \
                             collection, or waive with an order-insensitivity argument",
                            tokens[j].text,
                            scope.enclosing_fn(i).unwrap_or("?")
                        ),
                    );
                }
            }
            // SL008, ordering half: Relaxed atomics give no happens-before
            // edge at all — if an atomic sneaks into a sim crate, Relaxed
            // is the reddest flag.
            "Relaxed"
                if in_sim
                    && !test_path
                    && !test_mask[i]
                    && i >= 2
                    && tokens[i - 1].is_punct(':')
                    && tokens[i - 2].is_punct(':') =>
            {
                push(
                    t.line,
                    "SL008",
                    "`Ordering::Relaxed` in a simulation crate: relaxed atomics order \
                     nothing; simulation state must be plainly owned by the event loop"
                        .to_string(),
                );
            }
            // SL008, static-mut half: a `static mut` is global interior
            // mutability with extra steps.
            "static"
                if in_sim
                    && !test_path
                    && !test_mask[i]
                    && tokens.get(i + 1).is_some_and(|n| n.is_ident("mut")) =>
            {
                push(
                    t.line,
                    "SL008",
                    "`static mut` in a simulation crate: global mutable state survives \
                     across runs and breaks run-to-run purity; thread state through the \
                     simulation structs"
                        .to_string(),
                );
            }
            // SL010, wall-clock half: SL001 owns the sim crates; this arm
            // covers the rest of the workspace (harness, linter), where
            // wall-clock reads are measurement-only and each site must be
            // waived with its justification.
            "Instant" | "SystemTime"
                if !in_sim && krate.is_some() && !test_path && !test_mask[i] =>
            {
                push(
                    t.line,
                    "SL010",
                    format!(
                        "`{}` outside the simulation crates: wall-clock reads are \
                         measurement-only; keep them out of result data and waive each \
                         site with its purpose",
                        t.text
                    ),
                );
            }
            // SL010, RNG half: every random stream must fork from SimRng so
            // seeds reproduce runs; constructing a generator anywhere else
            // creates an unseeded (or separately seeded) side channel.
            "SmallRng" | "StdRng" | "seed_from_u64" | "from_seed" | "from_rng" | "from_os_rng"
                if path != "crates/simevent/src/rng.rs" && !test_path && !test_mask[i] =>
            {
                // `SimRng::seed_from_u64(..)` is the blessed wrapper itself.
                let blessed = i >= 3
                    && tokens[i - 1].is_punct(':')
                    && tokens[i - 2].is_punct(':')
                    && tokens[i - 3].is_ident("SimRng");
                if blessed {
                    continue;
                }
                push(
                    t.line,
                    "SL010",
                    format!(
                        "`{}` constructs an RNG outside simevent::rng: all randomness \
                         must fork from a scenario-seeded SimRng stream",
                        t.text
                    ),
                );
            }
            // SL012: the packet pool owns every sanctioned unsafe block.
            "unsafe" if path != "crates/netpacket/src/pool.rs" => {
                let ctx = scope
                    .enclosing_fn(i)
                    .map(|f| format!(" in fn `{f}`"))
                    .unwrap_or_default();
                push(
                    t.line,
                    "SL012",
                    format!(
                        "`unsafe`{ctx} outside netpacket::pool: the pool is the one \
                         audited home for unsafe packet storage; new blocks need a \
                         simlint.toml waiver with a safety argument"
                    ),
                );
            }
            // SL011: scheduling at a computed timestamp containing a bare
            // subtraction — the classic way to schedule into the past.
            // (`fn schedule...` definitions and clamped args are skipped.)
            s if s.starts_with("schedule")
                && in_sim
                && !test_path
                && !test_mask[i]
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                && !(i > 0 && tokens[i - 1].is_ident("fn"))
                && first_arg_unclamped_subtraction(tokens, i + 1) =>
            {
                push(
                    t.line,
                    "SL011",
                    format!(
                        "`{s}(..)` first argument computes a timestamp with `-`: \
                         subtraction can land before `now` and violate the \
                         no-past-scheduling invariant; clamp with `.max(now)` or \
                         `saturating_sub` before scheduling"
                    ),
                );
            }
            _ => {}
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn codes(path: &str, src: &str) -> Vec<&'static str> {
        check_file(path, &lex(src))
            .into_iter()
            .map(|f| f.code)
            .collect()
    }

    #[test]
    fn sl001_flags_instant_in_sim_crate_only() {
        let src = "use std::time::Instant;";
        assert_eq!(codes("crates/netsim/src/x.rs", src), vec!["SL001"]);
        // Outside the sim crates the wall clock is SL010's business.
        assert_eq!(codes("crates/experiments/src/x.rs", src), vec!["SL010"]);
    }

    #[test]
    fn sl002_default_hasher_flagged_custom_ok() {
        assert_eq!(
            codes(
                "crates/core/src/x.rs",
                "let m: HashMap<u64, u64> = HashMap::new();"
            ),
            vec!["SL002", "SL002"]
        );
        let custom = "type S = HashSet<u64, BuildHasherDefault<SeqHasher>>;";
        assert!(codes("crates/simevent/src/x.rs", custom).is_empty());
        let custom_map = "type M = HashMap<u64, u64, BuildHasherDefault<SeqHasher>>;";
        assert!(codes("crates/core/src/x.rs", custom_map).is_empty());
    }

    #[test]
    fn sl002_use_line_exempt() {
        assert!(codes("crates/core/src/x.rs", "use std::collections::HashSet;").is_empty());
        assert!(codes("crates/core/src/x.rs", "pub use std::collections::HashMap;").is_empty());
    }

    #[test]
    fn sl003_everywhere() {
        assert_eq!(
            codes("crates/experiments/src/x.rs", "let mut r = thread_rng();"),
            vec!["SL003"]
        );
        // `SmallRng` construction outside simevent::rng additionally
        // trips SL010.
        assert_eq!(
            codes("crates/core/src/x.rs", "let r = SmallRng::from_entropy();"),
            vec!["SL010", "SL003"]
        );
    }

    #[test]
    fn sl004_library_only() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(codes("crates/core/src/x.rs", src), vec!["SL004"]);
        assert!(codes("crates/core/tests/x.rs", src).is_empty());
        assert!(codes("crates/core/benches/x.rs", src).is_empty());
    }

    #[test]
    fn sl004_cfg_test_region_exempt() {
        let src = "fn lib(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { Some(1).unwrap(); }\n}";
        assert!(codes("crates/core/src/x.rs", src).is_empty());
        let mixed = "fn lib(x: Option<u8>) { x.expect(\"set\"); }\n\
                     #[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }";
        assert_eq!(codes("crates/core/src/x.rs", mixed), vec!["SL004"]);
    }

    #[test]
    fn sl004_ignores_unwrap_or_and_field_names() {
        assert!(codes(
            "crates/core/src/x.rs",
            "x.unwrap_or(1); x.unwrap_or_default();"
        )
        .is_empty());
        assert!(codes("crates/core/src/x.rs", "struct S { expect: u8 }").is_empty());
    }

    #[test]
    fn sl005_narrow_counter_cast() {
        assert_eq!(
            codes("crates/core/src/x.rs", "let x = t.as_nanos() as u32;"),
            vec!["SL005"]
        );
        assert_eq!(
            codes("crates/netsim/src/x.rs", "let b = total_bytes as f32;"),
            vec!["SL005"]
        );
        // 64-bit targets are fine; unrelated identifiers are fine.
        assert!(codes("crates/core/src/x.rs", "let x = t.as_nanos() as u64;").is_empty());
        assert!(codes("crates/core/src/x.rs", "let i = idx as u32;").is_empty());
    }

    #[test]
    fn sl006_flags_boxed_and_pushed_packets() {
        assert_eq!(
            codes("crates/netpacket/src/x.rs", "let b = Box::new(packet);"),
            vec!["SL006"]
        );
        assert_eq!(
            codes("crates/tcpstack/src/x.rs", "self.outbox.push(pkt);"),
            vec!["SL006"]
        );
        assert_eq!(
            codes(
                "crates/core/src/x.rs",
                "self.queue.push_back((packet, now));"
            ),
            vec!["SL006"]
        );
        // Inline construction counts: `Packet::...` is not a field label.
        assert_eq!(
            codes("crates/tcpstack/src/x.rs", "out.push(Packet::tcp(1, 2));"),
            vec!["SL006"]
        );
    }

    #[test]
    fn sl006_skips_handles_labels_and_non_sim_code() {
        // Struct-field labels carry an 8-byte PacketRef, not a payload.
        assert!(codes(
            "crates/netsim/src/x.rs",
            "pending.push((done, Event::Arrive { dev, packet: r }));"
        )
        .is_empty());
        // Counters that merely contain "packet" are not payloads.
        assert!(codes(
            "crates/netsim/src/x.rs",
            "let q = Box::new(DropTail::new(spec.host_buffer_packets));"
        )
        .is_empty());
        // Non-packetish pushes and non-sim crates are out of scope.
        assert!(codes("crates/core/src/x.rs", "out.push(p);").is_empty());
        assert!(codes("crates/experiments/src/x.rs", "v.push(packet);").is_empty());
        // Test code is exempt.
        assert!(codes("crates/core/tests/x.rs", "v.push(packet);").is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// Instant HashMap thread_rng .unwrap()\nlet s = \"SystemTime\";";
        assert!(codes("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn sl006_turbofish_and_multiline_builder() {
        // The turbofish spelling the adjacency check used to miss.
        assert_eq!(
            codes(
                "crates/netpacket/src/x.rs",
                "let b = Box::<Packet>::new(pkt);"
            ),
            vec!["SL006"]
        );
        // Builder-style call split across lines: the lexer is line-agnostic,
        // so the payload scan must cross them.
        let multi = "let b = Box::new(\n    wrap(packet),\n);";
        assert_eq!(codes("crates/netsim/src/x.rs", multi), vec!["SL006"]);
        // Non-packet turbofish payloads stay clean.
        assert!(codes("crates/netsim/src/x.rs", "let b = Box::<u64>::new(7);").is_empty());
    }

    #[test]
    fn sl007_hash_iteration_needs_sort_or_btree() {
        let src = "struct S { m: HashMap<u64, u64, BuildHasherDefault<H>> }\n\
                   impl S { fn f(&self) { for v in self.m.values() { consume(v); } } }";
        assert_eq!(codes("crates/netsim/src/x.rs", src), vec!["SL007"]);
        // A sort in the same statement neighborhood is the justification.
        let sorted = "struct S { m: HashMap<u64, u64, BuildHasherDefault<H>> }\n\
                      impl S { fn f(&self) -> Vec<u64> {\n\
                        let mut v: Vec<u64> = self.m.keys().copied().collect();\n\
                        v.sort(); v } }";
        assert!(codes("crates/netsim/src/x.rs", sorted).is_empty());
        // `for .. in &self.map` (method-less) fires too.
        let forin = "struct S { m: HashSet<u64, BuildHasherDefault<H>> }\n\
                     impl S { fn f(&self) { for v in &self.m { consume(v); } } }";
        assert_eq!(codes("crates/tcpstack/src/x.rs", forin), vec!["SL007"]);
        // Vec iteration and non-sim crates are out of scope.
        assert!(codes(
            "crates/netsim/src/x.rs",
            "fn f(v: &Vec<u64>) { for x in v.iter() { consume(x); } }"
        )
        .is_empty());
        assert!(codes("crates/experiments/src/x.rs", src).is_empty());
    }

    #[test]
    fn sl008_interior_mutability_in_state_types() {
        assert_eq!(
            codes("crates/tcpstack/src/x.rs", "struct S { c: Cell<u64> }"),
            vec!["SL008"]
        );
        assert_eq!(
            codes("crates/netsim/src/x.rs", "static mut DROPS: u64 = 0;"),
            vec!["SL008"]
        );
        assert_eq!(
            codes(
                "crates/netsim/src/x.rs",
                "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }"
            ),
            vec!["SL008"]
        );
        // A local RefCell in a fn body is not simulation state.
        assert!(codes(
            "crates/tcpstack/src/x.rs",
            "fn f() { let scratch = RefCell::new(0u64); }"
        )
        .is_empty());
        // Imports and non-sim crates stay clean.
        assert!(codes("crates/tcpstack/src/x.rs", "use std::cell::RefCell;").is_empty());
        assert!(codes("crates/experiments/src/x.rs", "struct S { c: Cell<u64> }").is_empty());
    }

    #[test]
    fn sl009_f64_accumulation_in_metrics_code() {
        let src = "struct A { total: f64 }\n\
                   impl A { fn add(&mut self, x: f64) { self.total += x; } }";
        assert_eq!(codes("crates/simmetrics/src/x.rs", src), vec!["SL009"]);
        assert_eq!(codes("crates/experiments/src/x.rs", src), vec!["SL009"]);
        // Only metrics/claims crates are in scope.
        assert!(codes("crates/netsim/src/x.rs", src).is_empty());
        // Integer accumulation is the blessed pattern.
        assert!(codes(
            "crates/simmetrics/src/x.rs",
            "struct A { n: u64 } impl A { fn f(&mut self) { self.n += 1; } }"
        )
        .is_empty());
        // `let mut acc = 0.0` locals count as f64 accumulators.
        let local = "fn mean(xs: &[f64]) -> f64 {\n\
                     let mut acc = 0.0; for x in xs { acc += x; } acc }";
        assert_eq!(codes("crates/experiments/src/x.rs", local), vec!["SL009"]);
    }

    #[test]
    fn sl010_wall_clock_and_rng_blessed_homes() {
        assert_eq!(
            codes("crates/experiments/src/x.rs", "let t = Instant::now();"),
            vec!["SL010"]
        );
        assert_eq!(
            codes(
                "crates/netsim/src/x.rs",
                "let r = SmallRng::seed_from_u64(1);"
            ),
            vec!["SL010", "SL010"]
        );
        // The one allowed construction site.
        assert!(codes(
            "crates/simevent/src/rng.rs",
            "let r = SmallRng::seed_from_u64(1);"
        )
        .is_empty());
        // The SimRng wrapper itself is the blessed API.
        assert!(codes(
            "crates/workload/src/x.rs",
            "let r = SimRng::seed_from_u64(9);"
        )
        .is_empty());
        // Tests may measure wall time.
        assert!(codes("crates/experiments/tests/x.rs", "let t = Instant::now();").is_empty());
    }

    #[test]
    fn sl011_subtracted_schedule_timestamp() {
        assert_eq!(
            codes(
                "crates/simevent/src/x.rs",
                "sched.schedule_at(now - jitter, ev);"
            ),
            vec!["SL011"]
        );
        // Clamped computations and plain additions are fine.
        assert!(codes(
            "crates/simevent/src/x.rs",
            "sched.schedule_at((now - jitter).max(now), ev);"
        )
        .is_empty());
        assert!(codes(
            "crates/simevent/src/x.rs",
            "sched.schedule_at(now + delay, ev);"
        )
        .is_empty());
        // A `-` in a *later* argument is not a timestamp.
        assert!(codes(
            "crates/simevent/src/x.rs",
            "sched.schedule_at(now, total - done);"
        )
        .is_empty());
        // Definitions and non-sim crates are skipped.
        assert!(codes(
            "crates/simevent/src/x.rs",
            "fn schedule_at(&mut self, at: SimTime) {}"
        )
        .is_empty());
        assert!(codes(
            "crates/experiments/src/x.rs",
            "sched.schedule_at(now - jitter, ev);"
        )
        .is_empty());
    }

    #[test]
    fn sl012_unsafe_outside_pool() {
        let src = "fn peek() { unsafe { danger() } }";
        assert_eq!(codes("crates/tcpstack/src/x.rs", src), vec!["SL012"]);
        // Unlike most rules, tests are NOT exempt: unsafe is unsafe there too.
        assert_eq!(codes("crates/tcpstack/tests/x.rs", src), vec!["SL012"]);
        // The pool is the audited home.
        assert!(codes("crates/netpacket/src/pool.rs", src).is_empty());
        // The message names the enclosing fn (scope pass at work).
        let f = check_file("crates/core/src/x.rs", &lex(src));
        assert!(f[0].message.contains("in fn `peek`"), "{}", f[0].message);
    }
}
