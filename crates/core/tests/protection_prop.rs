//! Property tests tying [`ecn_core::ProtectionMode`] to the packet
//! classification in `netpacket`: across *arbitrary* flag combinations and
//! payloads, each mode's `protects` predicate must coincide with the class
//! the paper defines it by — `Default` protects nothing, `EceBit` protects
//! exactly the ECE carriers, `AckSyn` protects exactly the pure-ACK / SYN /
//! SYN-ACK classes.

use ecn_core::ProtectionMode;
use netpacket::{EcnCodepoint, FlowId, NodeId, Packet, PacketId, PacketKind, SackBlocks, TcpFlags};
use proptest::prelude::*;
use simevent::SimTime;

fn packet(bits: u8, payload: u32, ecn: EcnCodepoint) -> Packet {
    Packet {
        id: PacketId(0),
        flow: FlowId(0),
        src: NodeId(0),
        dst: NodeId(1),
        seq: 0,
        ack: 0,
        payload,
        flags: TcpFlags::from_bits(bits),
        ecn,
        sack: SackBlocks::EMPTY,
        sent_at: SimTime::ZERO,
    }
}

/// All four codepoints, index-selected so the stub's integer strategies can
/// drive the choice.
fn codepoint(i: u8) -> EcnCodepoint {
    match i % 4 {
        0 => EcnCodepoint::NotEct,
        1 => EcnCodepoint::Ect0,
        2 => EcnCodepoint::Ect1,
        _ => EcnCodepoint::Ce,
    }
}

proptest! {
    /// `Default` early-drops every packet it is consulted about, whatever
    /// the header says.
    #[test]
    fn default_never_protects(bits in 0u8..=255, payload in 0u32..=3000, ecn in 0u8..=3) {
        let p = packet(bits, payload, codepoint(ecn));
        prop_assert!(!ProtectionMode::Default.protects(&p));
    }

    /// `EceBit` protects a packet iff its TCP header carries ECE — the
    /// predicate is exactly `has_ece`, nothing else in the packet matters.
    #[test]
    fn ece_bit_is_exactly_has_ece(bits in 0u8..=255, payload in 0u32..=3000, ecn in 0u8..=3) {
        let p = packet(bits, payload, codepoint(ecn));
        prop_assert_eq!(
            ProtectionMode::EceBit.protects(&p),
            p.has_ece(),
            "flags {:?} payload {}",
            p.flags,
            p.payload
        );
    }

    /// `AckSyn` protects a packet iff `netpacket` classifies it as a pure
    /// ACK, SYN or SYN-ACK — the two crates must agree on the class
    /// boundary (payload-bearing ACKs, FINs and RSTs stay droppable).
    #[test]
    fn ack_syn_is_exactly_the_control_classes(bits in 0u8..=255, payload in 0u32..=3000, ecn in 0u8..=3) {
        let p = packet(bits, payload, codepoint(ecn));
        let control = matches!(
            PacketKind::of(&p),
            PacketKind::PureAck | PacketKind::Syn | PacketKind::SynAck
        );
        prop_assert_eq!(
            ProtectionMode::AckSyn.protects(&p),
            control,
            "flags {:?} payload {} kind {:?}",
            p.flags,
            p.payload,
            PacketKind::of(&p)
        );
    }

    /// On the control classes the paper discusses, `AckSyn` is a strict
    /// superset of `EceBit`: any ECE-protected pure ACK / SYN / SYN-ACK is
    /// also ACK+SYN-protected.
    #[test]
    fn ack_syn_covers_ece_bit_on_control(bits in 0u8..=255, ecn in 0u8..=3) {
        let p = packet(bits, 0, codepoint(ecn));
        let control = matches!(
            PacketKind::of(&p),
            PacketKind::PureAck | PacketKind::Syn | PacketKind::SynAck
        );
        if control && ProtectionMode::EceBit.protects(&p) {
            prop_assert!(ProtectionMode::AckSyn.protects(&p));
        }
    }
}
