//! Plain-text rendering and JSON persistence of figure data.

use crate::figures::FigurePanel;
use crate::sweep::SweepResults;
use std::fmt::Write as _;
use std::path::Path;

/// Render a figure panel as an aligned text table: series down the side,
/// target delays across the top, the normalised metric in the cells.
pub fn render_panel(panel: &FigurePanel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} ==", panel.id, panel.title);
    let _ = writeln!(out, "   (1.0 = {})", panel.baseline_desc);
    if let Some((label, v)) = &panel.reference {
        let _ = writeln!(out, "   dashed reference: {label} = {v:.3}");
    }
    let delays: Vec<u64> = panel
        .series
        .first()
        .map(|s| s.cells.iter().map(|c| c.delay_us).collect())
        .unwrap_or_default();
    let label_w = panel
        .series
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(8)
        .max("series".len());
    let _ = write!(out, "{:<label_w$}", "series");
    for d in &delays {
        let _ = write!(out, " {:>9}", format!("{d}us"));
    }
    out.push('\n');
    for s in &panel.series {
        let _ = write!(out, "{:<label_w$}", s.label);
        for c in &s.cells {
            let _ = write!(out, " {:>9.3}", c.value);
        }
        out.push('\n');
    }
    out
}

/// Persist raw sweep results as JSON.
pub fn write_sweep_json(res: &SweepResults, path: &Path) -> std::io::Result<()> {
    write_json(res, path)
}

/// Persist any serialisable report as JSON. Serialisation failures surface
/// as `InvalidData` I/O errors rather than panics, so callers can report the
/// offending path.
pub fn write_json<T: serde::Serialize>(value: &T, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{FigureCell, FigureSeries};
    use crate::scenario::BufferDepth;

    fn panel() -> FigurePanel {
        FigurePanel {
            id: "Fig9z".into(),
            title: "Test panel".into(),
            depth: BufferDepth::Shallow,
            baseline_desc: "unit".into(),
            reference: Some(("dash".into(), 0.9)),
            series: vec![FigureSeries {
                label: "tcp-ecn red[ece-bit]".into(),
                cells: vec![
                    FigureCell {
                        delay_us: 100,
                        value: 1.25,
                    },
                    FigureCell {
                        delay_us: 500,
                        value: 0.875,
                    },
                ],
            }],
        }
    }

    #[test]
    fn renders_aligned_table() {
        let txt = render_panel(&panel());
        assert!(txt.contains("Fig9z"));
        assert!(txt.contains("100us"));
        assert!(txt.contains("500us"));
        assert!(txt.contains("1.250"));
        assert!(txt.contains("0.875"));
        assert!(txt.contains("dash = 0.900"));
    }

    #[test]
    fn empty_panel_renders() {
        let mut p = panel();
        p.series.clear();
        let txt = render_panel(&p);
        assert!(txt.contains("series"));
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("ecn_repro_test");
        let path = dir.join("panel.json");
        write_json(&panel(), &path).unwrap();
        let back: FigurePanel =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, panel());
        let _ = std::fs::remove_dir_all(dir);
    }
}
