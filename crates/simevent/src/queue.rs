//! Stable priority queue of timestamped events.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event plus the instant it fires and a monotone sequence number that makes
/// same-instant events pop in the order they were scheduled (FIFO), which is
/// what keeps whole simulations deterministic.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Scheduling order, used as a tie-break.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, at equal
        // times, the first-scheduled) event is at the top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue.
///
/// Events are popped in nondecreasing time order; events scheduled for the
/// same instant are popped in scheduling order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, scheduled_total: 0 }
    }

    /// An empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(cap), next_seq: 0, scheduled_total: 0 }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|se| (se.at, se.event))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|se| se.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 'c');
        q.schedule(SimTime::from_nanos(10), 'a');
        q.schedule(SimTime::from_nanos(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), 5u64);
        q.schedule(SimTime::from_nanos(1), 1u64);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(SimTime::from_nanos(3), 3u64);
        q.schedule(SimTime::from_nanos(2), 2u64);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(42));
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        for i in 0..10u64 {
            q.schedule(SimTime::ZERO + SimDuration::from_nanos(i), i);
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.scheduled_total(), 10);
        q.pop();
        assert_eq!(q.len(), 9);
        assert_eq!(q.scheduled_total(), 10);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    proptest! {
        /// Pops are globally ordered by (time, insertion order), for any
        /// interleaving of schedules.
        #[test]
        fn pops_sorted_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt, "time order violated");
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO tie-break violated");
                    }
                }
                last = Some((t, idx));
            }
        }

        /// Interleaved pop/schedule never yields an event earlier than one
        /// already popped (given schedules are never in the past).
        #[test]
        fn interleaved_monotone(ops in prop::collection::vec((0u64..1000, any::<bool>()), 1..200)) {
            let mut q = EventQueue::new();
            let mut clock = SimTime::ZERO;
            for (dt, pop) in ops {
                if pop {
                    if let Some((t, _)) = q.pop() {
                        prop_assert!(t >= clock);
                        clock = t;
                    }
                } else {
                    q.schedule(clock + SimDuration::from_nanos(dt), ());
                }
            }
        }
    }
}
