//! `simsweep` — the parallel sweep orchestrator with content-addressed
//! result caching.
//!
//! Every experiment in this repo is a grid of *independent, deterministically
//! seeded* simulation points. This module turns that independence into two
//! wins without giving up byte-identical output:
//!
//! 1. **Parallelism** — points are evaluated on a bounded worker pool
//!    ([`SweepOptions::jobs`], CLI `--jobs N`). Results are merged back in
//!    the caller's point order, so the output vector — and any JSON rendered
//!    from it — is identical no matter how many workers ran or how they were
//!    scheduled.
//! 2. **Content-addressed caching** — each point's result is persisted under
//!    a key derived from *everything that determines the result*: the full
//!    point configuration (including the seed) plus the crate version, all
//!    serialized to canonical JSON and hashed (FNV-1a 64). A re-run with the
//!    same configuration loads the cached value and executes nothing; any
//!    change to the configuration, seed or crate version changes the key and
//!    forces re-execution. Cache entries store the full key JSON alongside
//!    the value, so a (vanishingly unlikely) hash collision is detected and
//!    treated as a miss rather than returning the wrong point.
//!
//! The determinism argument for cache reuse rests on the value types being
//! JSON-roundtrip-exact: `RunMetrics` and friends hold `f64`s serialized in
//! shortest-roundtrip form, so a value read back from the cache is
//! bit-identical to the freshly computed one, and aggregate reports built
//! from cached points are byte-identical to cold-run reports (enforced by
//! `tests/orchestrator.rs`).

use rayon::prelude::*;
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bumped whenever the cache entry layout (not the cached values) changes;
/// part of every cache key, so stale-layout entries simply miss.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// Where (and whether) point results are cached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMode {
    /// Never read or write the cache: every point executes (`--no-cache`).
    Disabled,
    /// Content-addressed entries under this directory.
    Dir(PathBuf),
}

impl CacheMode {
    /// The repo's standard cache location, `results/.cache/`.
    pub fn default_dir() -> CacheMode {
        CacheMode::Dir(PathBuf::from("results").join(".cache"))
    }
}

/// How a sweep executes: worker count and cache policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Point-result cache policy.
    pub cache: CacheMode,
}

impl Default for SweepOptions {
    /// Parallel on all cores, no cache — the pure-library behaviour
    /// (`sweep()` keeps its historical contract of always executing).
    fn default() -> Self {
        SweepOptions {
            jobs: 0,
            cache: CacheMode::Disabled,
        }
    }
}

/// What a [`run_points`] call actually did, for logs and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Points that ran a simulation.
    pub executed: usize,
    /// Points served from the content-addressed cache.
    pub cached: usize,
}

/// Canonical JSON of the full cache key for `key`: the caller's key wrapped
/// in an envelope carrying the crate version and cache schema version, so
/// version bumps invalidate without deleting anything.
pub fn key_json<K: Serialize>(key: &K) -> String {
    let env = Value::Obj(vec![
        ("schema".into(), Value::U64(u64::from(CACHE_SCHEMA_VERSION))),
        (
            "crate_version".into(),
            Value::Str(env!("CARGO_PKG_VERSION").into()),
        ),
        ("key".into(), key.to_value()),
    ]);
    serde_json::to_string(&env).expect("cache keys serialize")
}

/// FNV-1a 64-bit over the canonical key JSON — the cache entry's address.
pub fn key_hash(json: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in json.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn entry_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("{hash:016x}.json"))
}

// A persisted point result is an object `{"key": <full key JSON>, "value":
// <result>}`: the full key is stored so lookups verify content, not just the
// 64-bit address. Built by hand over `serde::Value` because the vendored
// serde derive does not cover generic structs.

fn cache_lookup<R: Deserialize>(dir: &Path, key_json: &str) -> Option<R> {
    let path = entry_path(dir, key_hash(key_json));
    let text = std::fs::read_to_string(path).ok()?;
    let tree: Value = serde_json::from_str(&text).ok()?;
    match tree.get("key")? {
        Value::Str(stored) if stored == key_json => {}
        _ => return None,
    }
    R::from_value(tree.get("value")?).ok()
}

fn cache_store<R: Serialize>(dir: &Path, key_json: &str, value: &R) {
    let entry = Value::Obj(vec![
        ("key".into(), Value::Str(key_json.to_string())),
        ("value".into(), value.to_value()),
    ]);
    let Ok(json) = serde_json::to_string_pretty(&entry) else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    // Write-then-rename so concurrent writers (parallel workers, or two
    // processes sharing results/.cache) never expose a torn entry. The tmp
    // name carries the pid so two processes cannot collide on it; two
    // workers in one process never race (one key executes at most once).
    let final_path = entry_path(dir, key_hash(key_json));
    let tmp = final_path.with_extension(format!("tmp.{}", std::process::id()));
    if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, &final_path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Evaluate `keys` through `eval` on a worker pool, returning results in
/// input order plus execution stats.
///
/// Each key is first looked up in the content-addressed cache (when
/// enabled); hits skip `eval` entirely. Misses execute and are persisted.
/// The result vector's order is the key order regardless of worker
/// scheduling, so output built from it is deterministic.
pub fn run_points<K, R, F>(keys: &[K], opts: &SweepOptions, eval: F) -> (Vec<R>, SweepStats)
where
    K: Serialize + Sync,
    R: Serialize + Deserialize + Send,
    F: Fn(&K) -> R + Sync,
{
    let executed = AtomicUsize::new(0);
    let cached = AtomicUsize::new(0);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(opts.jobs)
        .build()
        .expect("thread pool");
    let idxs: Vec<usize> = (0..keys.len()).collect();
    let results: Vec<R> = pool.install(|| {
        idxs.into_par_iter()
            .map(|i| {
                let kj = key_json(&keys[i]);
                if let CacheMode::Dir(dir) = &opts.cache {
                    if let Some(v) = cache_lookup::<R>(dir, &kj) {
                        cached.fetch_add(1, Ordering::Relaxed);
                        return v;
                    }
                }
                let v = eval(&keys[i]);
                executed.fetch_add(1, Ordering::Relaxed);
                if let CacheMode::Dir(dir) = &opts.cache {
                    cache_store(dir, &kj, &v);
                }
                v
            })
            .collect()
    });
    (
        results,
        SweepStats {
            executed: executed.load(Ordering::Relaxed),
            cached: cached.load(Ordering::Relaxed),
        },
    )
}

// The worker-pool contract: everything a point evaluation owns must be able
// to move to a worker thread. These compile-time checks pin the bound here,
// next to the pool that relies on it (netsim and simevent carry matching
// assertions at the types' definitions).
#[allow(dead_code)]
fn _points_are_send() {
    fn is_send<T: Send>() {}
    is_send::<crate::scenario::ScenarioConfig>();
    is_send::<crate::scenario::RunMetrics>();
    is_send::<netsim::Network>();
    is_send::<simtrace::TraceHandle>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;
    use std::sync::atomic::AtomicU64;

    #[derive(Serialize)]
    struct Key {
        x: u64,
        seed: u64,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Val {
        y: u64,
        f: f64,
    }

    fn eval(k: &Key) -> Val {
        Val {
            y: k.x * 10 + k.seed,
            f: 0.1 + k.x as f64 / 3.0,
        }
    }

    fn tmp_cache(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simsweep_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn keys() -> Vec<Key> {
        (0..17).map(|x| Key { x, seed: 7 }).collect()
    }

    #[test]
    fn parallel_order_matches_serial() {
        let serial = SweepOptions {
            jobs: 1,
            cache: CacheMode::Disabled,
        };
        let parallel = SweepOptions {
            jobs: 4,
            cache: CacheMode::Disabled,
        };
        let (a, sa) = run_points(&keys(), &serial, eval);
        let (b, sb) = run_points(&keys(), &parallel, eval);
        assert_eq!(a, b, "merge order must not depend on worker count");
        assert_eq!(sa.executed, 17);
        assert_eq!(sb.executed, 17);
        assert_eq!(sa.cached + sb.cached, 0);
    }

    #[test]
    fn warm_cache_executes_nothing() {
        let dir = tmp_cache("warm");
        let opts = SweepOptions {
            jobs: 2,
            cache: CacheMode::Dir(dir.clone()),
        };
        let (cold, s1) = run_points(&keys(), &opts, eval);
        assert_eq!((s1.executed, s1.cached), (17, 0));
        let (warm, s2) = run_points(&keys(), &opts, eval);
        assert_eq!((s2.executed, s2.cached), (0, 17), "warm rerun runs nothing");
        assert_eq!(cold, warm, "cached values identical to computed ones");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn seed_is_part_of_the_key() {
        let dir = tmp_cache("seed");
        let opts = SweepOptions {
            jobs: 1,
            cache: CacheMode::Dir(dir.clone()),
        };
        let (_, s1) = run_points(&keys(), &opts, eval);
        assert_eq!(s1.executed, 17);
        let reseeded: Vec<Key> = (0..17).map(|x| Key { x, seed: 8 }).collect();
        let (_, s2) = run_points(&reseeded, &opts, eval);
        assert_eq!(s2.executed, 17, "a different seed must miss the cache");
        assert_eq!(s2.cached, 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn disabled_cache_always_executes() {
        let dir = tmp_cache("disabled");
        let warm = SweepOptions {
            jobs: 1,
            cache: CacheMode::Dir(dir.clone()),
        };
        run_points(&keys(), &warm, eval);
        let off = SweepOptions {
            jobs: 1,
            cache: CacheMode::Disabled,
        };
        let (_, s) = run_points(&keys(), &off, eval);
        assert_eq!(
            (s.executed, s.cached),
            (17, 0),
            "--no-cache bypasses a warm cache"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn collision_detected_as_miss() {
        let dir = tmp_cache("collision");
        std::fs::create_dir_all(&dir).unwrap();
        let k = Key { x: 3, seed: 7 };
        let kj = key_json(&k);
        // Plant an entry at this key's address whose stored key differs —
        // what a 64-bit hash collision would look like on disk.
        let bogus = Value::Obj(vec![
            ("key".into(), Value::Str("something else".into())),
            ("value".into(), Val { y: 999, f: 9.9 }.to_value()),
        ]);
        std::fs::write(
            entry_path(&dir, key_hash(&kj)),
            serde_json::to_string(&bogus).unwrap(),
        )
        .unwrap();
        let opts = SweepOptions {
            jobs: 1,
            cache: CacheMode::Dir(dir.clone()),
        };
        let (vals, s) = run_points(&[k], &opts, eval);
        assert_eq!(s.executed, 1, "mismatched stored key must re-execute");
        assert_eq!(vals[0].y, 37);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn key_hash_is_stable_fnv1a() {
        // Published FNV-1a test vectors; the on-disk address scheme must
        // never drift silently.
        assert_eq!(key_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(key_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(key_hash("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn eval_runs_on_worker_threads() {
        // Smoke-check that jobs > 1 actually routes through the pool: the
        // closure observes at least one distinct worker thread id when
        // available parallelism permits (on a single-core host the stub
        // degrades to the sequential path, which is also correct).
        let seen = AtomicU64::new(0);
        let opts = SweepOptions {
            jobs: 4,
            cache: CacheMode::Disabled,
        };
        let (_, s) = run_points(&keys(), &opts, |k| {
            seen.fetch_add(1, Ordering::Relaxed);
            eval(k)
        });
        assert_eq!(seen.load(Ordering::Relaxed), 17);
        assert_eq!(s.executed, 17);
    }
}
