//! [`WorkloadApp`]: couples any [`TrafficModel`] to a live
//! [`netsim::Network`] with FCT and coflow instrumentation on every flow.
//!
//! This generalises the Terasort-only hookup in `netsim::apps` / `mrsim`:
//! the model decides *what* to send and the harness uniformly records *how
//! long it took* — per-flow completion times into a
//! [`simmetrics::FctCollector`] and group completions into a
//! [`crate::CoflowSet`].

use crate::coflow::{CoflowSet, CoflowSummary};
use crate::model::{FlowSpec, Launcher, TrafficModel};
use netpacket::FlowId;
use netsim::{Application, Network};
use simevent::SimTime;
use simmetrics::{FctCollector, FctSummary, FlowClass, IdealFct};
use std::collections::BTreeMap;
use tcpstack::TcpConfig;

/// Bit 63 is [`netsim::PairApp`]'s secondary-application namespace.
const RESERVED_TOKEN_BIT: u64 = 1 << 63;

/// Book-keeping for one flow the harness issued.
#[derive(Debug, Clone, Copy)]
struct Issued {
    class: FlowClass,
    bytes: u64,
    started: SimTime,
    coflow: Option<u64>,
}

/// The [`Launcher`] a [`WorkloadApp`] hands its model: a live network plus
/// the instrumentation maps.
struct Driver<'a> {
    net: &'a mut Network,
    tcp: &'a TcpConfig,
    issued: &'a mut BTreeMap<FlowId, Issued>,
    coflows: &'a mut CoflowSet,
    flows_issued: &'a mut u64,
}

impl Launcher for Driver<'_> {
    fn start_flow(&mut self, spec: FlowSpec, now: SimTime) -> FlowId {
        let flow = self
            .net
            .add_flow(spec.src, spec.dst, spec.bytes, self.tcp.clone(), now);
        self.issued.insert(
            flow,
            Issued {
                class: spec.class,
                bytes: spec.bytes,
                started: now,
                coflow: spec.coflow,
            },
        );
        if let Some(g) = spec.coflow {
            self.coflows.register(g, now);
        }
        *self.flows_issued += 1;
        flow
    }

    fn set_timer(&mut self, at: SimTime, token: u64) {
        assert_eq!(
            token & RESERVED_TOKEN_BIT,
            0,
            "token bit 63 is reserved for PairApp"
        );
        self.net.schedule_app_timer(at, token);
    }

    fn seal_coflow(&mut self, group: u64) {
        self.coflows.seal(group);
    }

    fn num_hosts(&self) -> u32 {
        self.net.num_hosts() as u32
    }
}

/// Runs a [`TrafficModel`] as a [`netsim::Application`], recording every
/// flow's completion time (split mice/elephants) and every coflow's
/// completion time.
#[derive(Debug)]
pub struct WorkloadApp<M> {
    /// The traffic generator.
    pub model: M,
    tcp: TcpConfig,
    issued: BTreeMap<FlowId, Issued>,
    fct: FctCollector,
    coflows: CoflowSet,
    flows_issued: u64,
}

impl<M: TrafficModel> WorkloadApp<M> {
    /// Couple `model` to flows using transport `tcp`; FCTs are normalised
    /// into slowdowns against `ideal`.
    pub fn new(model: M, tcp: TcpConfig, ideal: IdealFct) -> Self {
        tcp.validate();
        WorkloadApp {
            model,
            tcp,
            issued: BTreeMap::new(),
            fct: FctCollector::new(ideal),
            coflows: CoflowSet::new(),
            flows_issued: 0,
        }
    }

    /// Per-flow completion-time statistics recorded so far.
    pub fn fct(&self) -> &FctCollector {
        &self.fct
    }

    /// The mice/elephants/overall FCT summary.
    pub fn fct_summary(&self) -> FctSummary {
        self.fct.summary()
    }

    /// Coflow (group) completion-time summary.
    pub fn coflow_summary(&self) -> CoflowSummary {
        self.coflows.summary()
    }

    /// Flows issued so far.
    pub fn flows_issued(&self) -> u64 {
        self.flows_issued
    }

    /// Flows issued but not yet completed.
    pub fn flows_in_flight(&self) -> usize {
        self.issued.len()
    }

    fn driver<'a>(&'a mut self, net: &'a mut Network) -> (&'a mut M, Driver<'a>) {
        (
            &mut self.model,
            Driver {
                net,
                tcp: &self.tcp,
                issued: &mut self.issued,
                coflows: &mut self.coflows,
                flows_issued: &mut self.flows_issued,
            },
        )
    }
}

impl<M: TrafficModel> Application for WorkloadApp<M> {
    fn on_start(&mut self, net: &mut Network, now: SimTime) {
        let (model, mut driver) = self.driver(net);
        model.on_start(&mut driver, now);
    }

    fn on_flow_complete(&mut self, flow: FlowId, net: &mut Network, now: SimTime) {
        let Some(rec) = self.issued.remove(&flow) else {
            return; // not ours (e.g. the other half of a PairApp)
        };
        self.fct
            .record(rec.class, rec.bytes, now.since(rec.started));
        if let Some(g) = rec.coflow {
            self.coflows.complete_one(g, now);
        }
        let (model, mut driver) = self.driver(net);
        model.on_flow_complete(flow, &mut driver, now);
    }

    fn on_timer(&mut self, token: u64, net: &mut Network, now: SimTime) {
        let (model, mut driver) = self.driver(net);
        model.on_timer(token, &mut driver, now);
    }

    fn done(&self, _net: &Network) -> bool {
        self.model.done() && self.issued.is_empty()
    }
}
