//! Benchmark regression gate: measure the standard point set, emit
//! `BENCH_7.json`, compare against the committed baseline, exit nonzero on
//! regression.
//!
//! Usage:
//!   `bench_gate [--out PATH] [--baseline PATH] [--seed N]`
//!       measure, write `--out` (default `BENCH_7.json`), compare against
//!       `--baseline` (default `BENCH_7_baseline.json`); exit 1 on any
//!       metric outside tolerance, 2 on IO/usage errors.
//!   `bench_gate --write-baseline [--baseline PATH] [--seed N]`
//!       measure and (re)write the baseline instead of comparing — run this
//!       on the reference machine when a deliberate perf change lands.
//!   `bench_gate --compare-only CURRENT [--baseline PATH]`
//!       skip measurement; compare an existing report file (used by tests
//!       and for post-hoc analysis of CI artifacts).
//!
//! Tolerances: wall-clock and per-packet metrics may regress ≤25%,
//! ratio metrics (kernel speedups, end-to-end engine speedup) ≤10%;
//! output divergence (serial vs parallel, fast vs reference) fails
//! outright. See `experiments::gate`.

use experiments::gate::{compare, measure, BenchReport, Tolerance};
use experiments::report::write_json;
use std::path::{Path, PathBuf};

fn die(msg: &str) -> ! {
    eprintln!("[bench_gate] {msg}");
    std::process::exit(2);
}

fn load_report(path: &Path) -> BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| die(&format!("cannot parse {}: {e}", path.display())))
}

fn main() {
    let mut out = PathBuf::from("BENCH_7.json");
    let mut baseline_path = PathBuf::from("BENCH_7_baseline.json");
    let mut compare_only: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut seed = 20170905u64;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => die("--out needs a path"),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = PathBuf::from(p),
                None => die("--baseline needs a path"),
            },
            "--compare-only" => match it.next() {
                Some(p) => compare_only = Some(PathBuf::from(p)),
                None => die("--compare-only needs a report path"),
            },
            "--write-baseline" => write_baseline = true,
            "--seed" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => seed = s,
                _ => die("--seed needs an unsigned integer value"),
            },
            other => die(&format!(
                "unknown argument {other}; supported: --out PATH --baseline PATH \
                 --compare-only PATH --write-baseline --seed N"
            )),
        }
    }

    let current = match &compare_only {
        Some(path) => load_report(path),
        None => {
            let report = measure(seed);
            let target = if write_baseline { &baseline_path } else { &out };
            if let Err(e) = write_json(&report, target) {
                die(&format!("cannot write {}: {e}", target.display()));
            }
            eprintln!("[bench_gate] wrote {}", target.display());
            if write_baseline {
                eprintln!("[bench_gate] baseline refreshed; not comparing");
                return;
            }
            report
        }
    };

    let baseline = load_report(&baseline_path);
    let violations = compare(&current, &baseline, &Tolerance::default());
    println!("== bench gate vs {} ==", baseline_path.display());
    println!(
        "end-to-end ({} hosts): reference {:.2}s, fast {:.2}s ({:.2}x, {:.2}M ev/s)",
        current.end_to_end.hosts,
        current.end_to_end.reference_seconds,
        current.end_to_end.fast_seconds,
        current.end_to_end.engine_speedup,
        current.end_to_end.fast_events_per_sec / 1e6,
    );
    println!(
        "sweep: {} points, reference {:.2}s, fast {:.2}s ({:.2}x), parallel {:.2}s, \
         outputs identical: {}",
        current.sweep_fig2_shallow.points,
        current.sweep_fig2_shallow.reference_seconds,
        current.sweep_fig2_shallow.fast_seconds,
        current.sweep_fig2_shallow.engine_speedup,
        current.sweep_fig2_shallow.parallel_seconds,
        current.sweep_fig2_shallow.outputs_identical,
    );
    println!(
        "kernel: churn {:.2}M ev/s (baseline {:.2}M), cancel-heavy {:.2}M ev/s (baseline {:.2}M, {:.2}x vs heap)",
        current.kernel.churn.fast_events_per_sec / 1e6,
        baseline.kernel.churn.fast_events_per_sec / 1e6,
        current.kernel.cancel_heavy.fast_events_per_sec / 1e6,
        baseline.kernel.cancel_heavy.fast_events_per_sec / 1e6,
        current.kernel.cancel_heavy.speedup,
    );
    let cc_line: Vec<String> = current
        .cc
        .controllers
        .iter()
        .map(|w| {
            format!(
                "{} {:.1}M ops/s ({:.2}x)",
                w.controller,
                w.ops_per_sec / 1e6,
                w.vs_reno
            )
        })
        .collect();
    println!("cc on_ack: {}", cc_line.join(", "));
    println!(
        "pool: {} packets, {} pooled heap allocs (reference {}), {:.2}M inserts/s",
        current.pool.packets,
        current.pool.pooled_heap_allocs,
        current.pool.reference_heap_allocs,
        current.pool.pooled_inserts_per_sec / 1e6,
    );
    println!(
        "link: {:.2} events/packet fast vs {:.2} reference",
        current.link.fast_events_per_packet, current.link.reference_events_per_packet,
    );
    if violations.is_empty() {
        println!("PASS: all gated metrics within tolerance");
        return;
    }
    println!("FAIL: {} metric(s) regressed:", violations.len());
    for v in &violations {
        println!("  {v}");
    }
    std::process::exit(1);
}
