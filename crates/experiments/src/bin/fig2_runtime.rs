//! Reproduce Figure 2: Hadoop runtime vs RED target delay, shallow (2a) and
//! deep (2b) buffers, normalised to DropTail with shallow buffers.
//!
//! Usage: `fig2_runtime [--tiny] [--fresh]`

use experiments::cli::sweep_from_args;
use experiments::figures::fig2;
use experiments::report::render_panel;

fn main() {
    let res = sweep_from_args();
    for panel in fig2(&res) {
        println!("{}", render_panel(&panel));
    }
}
