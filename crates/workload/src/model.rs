//! The [`TrafficModel`] trait: a deterministic, seed-driven traffic
//! generator, decoupled from the network it runs on.

use netpacket::{FlowId, NodeId};
use simevent::SimTime;
use simmetrics::FlowClass;

/// Flows at or below this many bytes are classed as mice. 100 kB is the
/// customary datacenter-transport cut: partition-aggregate responses and RPCs
/// sit well below it, shuffle/backup transfers well above.
pub const MOUSE_MAX_BYTES: u64 = 100_000;

/// Size class of a `bytes`-long flow under the [`MOUSE_MAX_BYTES`] cut.
pub fn class_of(bytes: u64) -> FlowClass {
    if bytes <= MOUSE_MAX_BYTES {
        FlowClass::Mouse
    } else {
        FlowClass::Elephant
    }
}

/// What a traffic model asks the harness to transfer: one TCP flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Application bytes to transfer.
    pub bytes: u64,
    /// Size class under which the flow's FCT is recorded.
    pub class: FlowClass,
    /// Optional coflow this flow belongs to (incast round, shuffle wave,
    /// RPC request...); group completion times are tracked per coflow.
    pub coflow: Option<u64>,
}

/// The harness-side services a [`TrafficModel`] drives: starting flows and
/// arming timers. Implemented by [`crate::WorkloadApp`]'s driver over a live
/// [`netsim::Network`]; tests can implement it with a mock.
pub trait Launcher {
    /// Start a flow now. The returned id is the one later passed to
    /// [`TrafficModel::on_flow_complete`].
    fn start_flow(&mut self, spec: FlowSpec, now: SimTime) -> FlowId;
    /// Ask for [`TrafficModel::on_timer`] to fire at `at` with `token`.
    /// Tokens are private to the model; bit 63 is reserved by
    /// [`netsim::PairApp`]'s convention and must stay clear.
    fn set_timer(&mut self, at: SimTime, token: u64);
    /// Declare that a coflow group will get no more member flows; the group
    /// finishes when its last registered flow completes.
    fn seal_coflow(&mut self, group: u64);
    /// Hosts in the cluster, for models that size themselves to the network.
    fn num_hosts(&self) -> u32;
}

/// A deterministic traffic generator: arrival process plus flow-size
/// distribution, seeded explicitly so two same-seed runs issue an identical
/// flow sequence.
///
/// The contract mirrors [`netsim::Application`], but models never see the
/// [`netsim::Network`] directly — only a [`Launcher`] — so the harness can
/// interpose flow-completion-time instrumentation on every flow (see
/// [`crate::WorkloadApp`]) and models stay trivially unit-testable.
pub trait TrafficModel {
    /// Called once at t=0: issue initial flows / arm initial timers.
    fn on_start(&mut self, l: &mut dyn Launcher, now: SimTime);
    /// Called when a flow this model started completes (last byte acked).
    fn on_flow_complete(&mut self, flow: FlowId, l: &mut dyn Launcher, now: SimTime);
    /// Called for every timer armed via [`Launcher::set_timer`].
    fn on_timer(&mut self, token: u64, l: &mut dyn Launcher, now: SimTime);
    /// True when the workload has issued everything and seen it complete.
    fn done(&self) -> bool;
}

#[cfg(test)]
pub(crate) mod mock {
    use super::*;

    /// A launcher that records requests without a network — for unit tests.
    #[derive(Debug, Default)]
    pub struct MockLauncher {
        pub flows: Vec<FlowSpec>,
        pub timers: Vec<(SimTime, u64)>,
        pub sealed: Vec<u64>,
        pub hosts: u32,
        next_id: u64,
    }

    impl MockLauncher {
        pub fn new(hosts: u32) -> Self {
            MockLauncher {
                hosts,
                ..Default::default()
            }
        }
    }

    impl Launcher for MockLauncher {
        fn start_flow(&mut self, spec: FlowSpec, _now: SimTime) -> FlowId {
            self.flows.push(spec);
            self.next_id += 1;
            FlowId(self.next_id)
        }

        fn set_timer(&mut self, at: SimTime, token: u64) {
            self.timers.push((at, token));
        }

        fn seal_coflow(&mut self, group: u64) {
            self.sealed.push(group);
        }

        fn num_hosts(&self) -> u32 {
            self.hosts
        }
    }
}
