//! CoDel (Controlled Delay, Nichols & Jacobson) with ECN and the paper's
//! protection modes — demonstrating that the non-ECT early-drop pathology,
//! and its fix, are properties of *any* ECN-enabled AQM, not just RED.

use crate::ProtectionMode;
use netpacket::{
    packet_event, ConservationCheck, EnqueueOutcome, Packet, PacketKind, QueueDiscipline,
    QueueStats,
};
use serde::{Deserialize, Serialize};
use simevent::{SimDuration, SimTime};
use simtrace::{EventKind, TraceHandle, NO_QUEUE};
use std::collections::VecDeque;

/// Configuration for [`CoDel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoDelConfig {
    /// Physical buffer depth in packets.
    pub capacity_packets: u64,
    /// Target sojourn time (classic default 5 ms; the experiments drive it
    /// from the paper's target-delay axis).
    pub target: SimDuration,
    /// Sliding estimation window (classic default 100 ms).
    pub interval: SimDuration,
    /// When true, ECT packets are CE-marked instead of dropped.
    pub ecn: bool,
    /// Which non-ECT packets escape the drop (the paper's contribution,
    /// applied to CoDel).
    pub protection: ProtectionMode,
}

impl CoDelConfig {
    /// Classic CoDel parameters over a given buffer, ECN off.
    pub fn classic(capacity_packets: u64) -> Self {
        CoDelConfig {
            capacity_packets,
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
            ecn: false,
            protection: ProtectionMode::Default,
        }
    }

    /// Validate.
    pub fn validate(&self) {
        assert!(self.capacity_packets > 0, "capacity must be positive");
        assert!(self.target > SimDuration::ZERO, "target must be positive");
        assert!(
            self.interval > SimDuration::ZERO,
            "interval must be positive"
        );
    }
}

/// CoDel: head-of-line sojourn-time AQM.
///
/// Unlike RED, CoDel decides at **dequeue** time, based on how long the head
/// packet actually queued. Consequently its early drops are recorded against
/// `stats.dropped_early` at dequeue: the conservation identity is
/// `enqueued == dequeued + dropped_early + resident`.
///
/// ECN semantics mirror the paper's problem statement: when the control law
/// wants to signal, ECT packets are CE-marked and delivered; non-ECT packets
/// are dropped — unless exempted by the configured [`ProtectionMode`].
#[derive(Debug)]
pub struct CoDel {
    cfg: CoDelConfig,
    queue: VecDeque<(Packet, SimTime)>,
    bytes: u64,
    stats: QueueStats,
    first_above: Option<SimTime>,
    dropping: bool,
    drop_next: SimTime,
    count: u32,
    conserve: ConservationCheck,
    trace: TraceHandle,
    trace_q: u32,
}

impl CoDel {
    /// Build the queue.
    pub fn new(cfg: CoDelConfig) -> Self {
        cfg.validate();
        CoDel {
            cfg,
            queue: VecDeque::new(),
            bytes: 0,
            stats: QueueStats::default(),
            first_above: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            count: 0,
            conserve: ConservationCheck::default(),
            trace: TraceHandle::null(),
            trace_q: NO_QUEUE,
        }
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> &CoDelConfig {
        &self.cfg
    }

    /// True while the control law is in its dropping/marking state.
    pub fn in_dropping_state(&self) -> bool {
        self.dropping
    }

    fn control_interval(&self) -> SimDuration {
        // interval / sqrt(count)
        let div = (self.count.max(1) as f64).sqrt();
        self.cfg.interval.mul_f64(1.0 / div)
    }

    fn pop_raw(&mut self) -> Option<(Packet, SimTime)> {
        let (p, t) = self.queue.pop_front()?;
        self.bytes -= p.wire_bytes() as u64;
        Some((p, t))
    }

    /// Is the head packet's sojourn persistently above target?
    /// Returns (packet, ok_to_signal), or None when empty.
    fn dodeque(&mut self, now: SimTime) -> Option<(Packet, bool)> {
        let (p, enq) = self.pop_raw()?;
        let sojourn = now.since(enq);
        if sojourn < self.cfg.target {
            self.first_above = None;
            return Some((p, false));
        }
        match self.first_above {
            None => {
                self.first_above = Some(now + self.cfg.interval);
                Some((p, false))
            }
            Some(fa) => Some((p, now >= fa)),
        }
    }

    /// Apply the congestion signal to `p`: returns the packet to deliver
    /// (marked or protected) or `None` if it was dropped.
    fn signal(&mut self, mut p: Packet, now: SimTime) -> Option<Packet> {
        if self.cfg.ecn && p.is_ect() {
            p.ecn = p.ecn.marked();
            self.stats.marked.bump(PacketKind::of(&p));
            if self.trace.is_enabled() {
                self.trace
                    .emit(packet_event(EventKind::Marked, now, self.trace_q, &p));
            }
            return Some(p);
        }
        if self.cfg.ecn && self.cfg.protection.protects(&p) {
            return Some(p); // the paper's modification, applied to CoDel
        }
        self.stats.dropped_early.bump(PacketKind::of(&p));
        self.conserve.on_drop_resident(p.wire_bytes());
        if self.trace.is_enabled() {
            // CoDel's early drop happens at dequeue time (head drop), so the
            // event's stamp is the dequeue decision, not the arrival.
            self.trace
                .emit(packet_event(EventKind::DroppedEarly, now, self.trace_q, &p));
        }
        None
    }

    /// The CoDel control-law dequeue loop. Returns the packet to deliver;
    /// the caller records delivery stats exactly once.
    fn dequeue_inner(&mut self, now: SimTime) -> Option<Packet> {
        loop {
            let Some((p, ok)) = self.dodeque(now) else {
                // The queue drained empty: the congestion episode is over.
                // `first_above` must not survive the idle period — a stale
                // deadline would make the first above-target sojourn of the
                // *next* episode satisfy `now >= first_above` immediately,
                // entering the dropping state without waiting the full
                // interval the control law requires.
                self.first_above = None;
                self.dropping = false;
                return None;
            };
            if self.dropping {
                if !ok {
                    self.dropping = false;
                    return Some(p);
                }
                if now >= self.drop_next {
                    self.count += 1;
                    self.drop_next += self.control_interval();
                    match self.signal(p, now) {
                        Some(delivered) => return Some(delivered),
                        None => continue, // dropped: pull the next packet
                    }
                }
                return Some(p);
            }
            if ok {
                // Enter the dropping state. Resume at a rate informed by the
                // recent history (classic CoDel count reuse).
                self.dropping = true;
                self.count = if self.count > 2
                    && now.since(self.drop_next) < self.cfg.interval.saturating_mul(8)
                {
                    self.count - 2
                } else {
                    1
                };
                self.drop_next = now + self.control_interval();
                match self.signal(p, now) {
                    Some(delivered) => return Some(delivered),
                    None => continue,
                }
            }
            return Some(p);
        }
    }
}

impl QueueDiscipline for CoDel {
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome {
        let kind = PacketKind::of(&packet);
        if self.queue.len() as u64 >= self.cfg.capacity_packets {
            self.stats.dropped_full.bump(kind);
            if self.trace.is_enabled() {
                self.trace.emit(packet_event(
                    EventKind::DroppedFull,
                    now,
                    self.trace_q,
                    &packet,
                ));
            }
            return EnqueueOutcome::DroppedFull;
        }
        if self.trace.is_enabled() {
            self.trace.emit(packet_event(
                EventKind::Enqueued,
                now,
                self.trace_q,
                &packet,
            ));
        }
        let bytes = packet.wire_bytes();
        self.bytes += bytes as u64;
        self.queue.push_back((packet, now));
        self.conserve.on_admit(bytes);
        self.stats
            .on_enqueue(kind, bytes, false, self.queue.len() as u64, self.bytes);
        self.debug_verify_conservation();
        EnqueueOutcome::Enqueued
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let delivered = self.dequeue_inner(now);
        if let Some(p) = &delivered {
            self.conserve.on_deliver(p.wire_bytes());
            self.stats.on_dequeue(PacketKind::of(p), p.wire_bytes());
            if self.trace.is_enabled() {
                self.trace
                    .emit(packet_event(EventKind::Dequeued, now, self.trace_q, p));
            }
        }
        self.debug_verify_conservation();
        delivered
    }

    fn len_packets(&self) -> u64 {
        self.queue.len() as u64
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn capacity_packets(&self) -> u64 {
        self.cfg.capacity_packets
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn snapshot_kinds(&self) -> [u64; 6] {
        let mut kinds = [0u64; 6];
        for (p, _) in &self.queue {
            kinds[PacketKind::of(p).index()] += 1;
        }
        kinds
    }

    fn name(&self) -> String {
        format!(
            "CoDel[{}](target={},cap={},ecn={})",
            self.cfg.protection.label(),
            self.cfg.target,
            self.cfg.capacity_packets,
            self.cfg.ecn
        )
    }

    fn debug_verify_conservation(&self) {
        self.conserve
            .verify("CoDel", &self.stats, self.queue.len() as u64, self.bytes);
    }

    fn set_trace(&mut self, trace: TraceHandle, queue: u32) {
        self.trace = trace;
        self.trace_q = queue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpacket::{EcnCodepoint, FlowId, NodeId, PacketId, TcpFlags};

    fn data(id: u64, ecn: EcnCodepoint) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload: 1460,
            flags: TcpFlags::ACK,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    fn ack(id: u64, flags: TcpFlags) -> Packet {
        Packet {
            payload: 0,
            ecn: EcnCodepoint::NotEct,
            flags,
            ..data(id, EcnCodepoint::NotEct)
        }
    }

    fn cfg(ecn: bool, protection: ProtectionMode) -> CoDelConfig {
        CoDelConfig {
            capacity_packets: 1000,
            target: SimDuration::from_micros(500),
            interval: SimDuration::from_millis(10),
            ecn,
            protection,
        }
    }

    /// Drain with a fixed per-packet service time, starting at `t0`.
    fn drain_all(q: &mut CoDel, t0: SimTime, service: SimDuration) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut t = t0;
        while let Some(p) = q.dequeue(t) {
            out.push(p);
            t += service;
        }
        out
    }

    #[test]
    fn short_sojourn_no_signal() {
        let mut q = CoDel::new(cfg(true, ProtectionMode::Default));
        for i in 0..10 {
            q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::from_micros(i));
        }
        // Service immediately: sojourn ~ 0.
        let out = drain_all(
            &mut q,
            SimTime::from_micros(20),
            SimDuration::from_micros(1),
        );
        assert_eq!(out.len(), 10);
        assert_eq!(q.stats().marked.total(), 0);
        assert_eq!(q.stats().dropped_early.total(), 0);
    }

    #[test]
    fn persistent_delay_marks_ect() {
        let mut q = CoDel::new(cfg(true, ProtectionMode::Default));
        for i in 0..200 {
            q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::from_micros(i));
        }
        // Start serving 50 ms later (sojourn >> target) and slowly (so the
        // "above target for a full interval" condition holds).
        let out = drain_all(
            &mut q,
            SimTime::from_millis(50),
            SimDuration::from_micros(200),
        );
        assert_eq!(out.len(), 200, "ECN CoDel marks, never drops ECT");
        assert!(q.stats().marked.total() > 0, "persistent delay must mark");
        assert_eq!(q.stats().dropped_early.total(), 0);
    }

    #[test]
    fn persistent_delay_drops_non_ect_in_default_mode() {
        let mut q = CoDel::new(cfg(true, ProtectionMode::Default));
        for i in 0..100 {
            q.enqueue(data(2 * i, EcnCodepoint::Ect0), SimTime::from_micros(i));
            q.enqueue(ack(2 * i + 1, TcpFlags::ACK), SimTime::from_micros(i));
        }
        let out = drain_all(
            &mut q,
            SimTime::from_millis(50),
            SimDuration::from_micros(200),
        );
        let s = q.stats();
        assert!(
            s.dropped_early.get(PacketKind::PureAck) > 0,
            "CoDel+ECN drops ACKs too"
        );
        assert_eq!(
            s.dropped_early.get(PacketKind::Data),
            0,
            "ECT data is marked instead"
        );
        assert!(out.len() < 200);
    }

    #[test]
    fn ack_syn_protection_applies_to_codel() {
        let mut q = CoDel::new(cfg(true, ProtectionMode::AckSyn));
        for i in 0..100 {
            q.enqueue(data(2 * i, EcnCodepoint::Ect0), SimTime::from_micros(i));
            q.enqueue(ack(2 * i + 1, TcpFlags::ACK), SimTime::from_micros(i));
        }
        let out = drain_all(
            &mut q,
            SimTime::from_millis(50),
            SimDuration::from_micros(200),
        );
        assert_eq!(out.len(), 200, "protection must save every ACK");
        assert_eq!(q.stats().dropped_early.total(), 0);
        assert!(q.stats().marked.total() > 0);
    }

    #[test]
    fn without_ecn_codel_drops_everything_selected() {
        let mut q = CoDel::new(cfg(false, ProtectionMode::Default));
        for i in 0..100 {
            q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::from_micros(i));
        }
        drain_all(
            &mut q,
            SimTime::from_millis(50),
            SimDuration::from_micros(200),
        );
        assert!(q.stats().dropped_early.total() > 0);
        assert_eq!(q.stats().marked.total(), 0);
    }

    #[test]
    fn conservation_with_dequeue_drops() {
        let mut q = CoDel::new(cfg(true, ProtectionMode::Default));
        let offered = 300u64;
        for i in 0..offered {
            let p = if i % 3 == 0 {
                ack(i, TcpFlags::ACK)
            } else {
                data(i, EcnCodepoint::Ect0)
            };
            let _ = q.enqueue(p, SimTime::from_micros(i));
        }
        drain_all(
            &mut q,
            SimTime::from_millis(50),
            SimDuration::from_micros(300),
        );
        let s = q.stats();
        assert_eq!(
            s.enqueued.total(),
            s.dequeued.total() + s.dropped_early.total(),
            "CoDel invariant: enqueued = dequeued + dropped-at-dequeue"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn drop_rate_escalates_with_persistent_congestion() {
        // Feed two phases of equal size under persistent delay; the control
        // law's sqrt schedule must signal more often in the second phase.
        let mut q = CoDel::new(cfg(true, ProtectionMode::Default));
        for i in 0..400 {
            q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::from_micros(i));
        }
        let mut t = SimTime::from_millis(50);
        let service = SimDuration::from_micros(300);
        let mut first_half = 0;
        let mut second_half = 0;
        for i in 0..400 {
            let before = q.stats().marked.total();
            if q.dequeue(t).is_none() {
                break;
            }
            let marked = q.stats().marked.total() > before;
            if marked {
                if i < 200 {
                    first_half += 1;
                } else {
                    second_half += 1;
                }
            }
            t += service;
        }
        assert!(
            second_half > first_half,
            "marking must escalate: {first_half} then {second_half}"
        );
    }

    #[test]
    fn idle_gap_does_not_leak_first_above() {
        // Regression for the stale-interval bug: `first_above` armed during
        // one congestion episode survived the queue draining empty, so after
        // an idle gap the first above-target sojourn compared against the old
        // deadline and signalled immediately instead of waiting a full
        // interval. Two episodes separated by idle; the first post-idle
        // dequeue must not signal.
        let mut q = CoDel::new(cfg(true, ProtectionMode::Default));
        // Episode 1: sojourns far above target, but drained before the
        // full-interval condition is met — `first_above` gets armed, then
        // the queue empties.
        for i in 0..10 {
            q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::from_micros(i));
        }
        let out = drain_all(
            &mut q,
            SimTime::from_millis(50),
            SimDuration::from_micros(200),
        );
        assert_eq!(out.len(), 10);
        assert_eq!(
            q.stats().marked.total(),
            0,
            "episode 1 is shorter than an interval: no signal yet"
        );
        assert!(q.is_empty());
        // Long idle, then episode 2 opens with a single above-target sojourn.
        let resume = SimTime::from_millis(1000);
        q.enqueue(data(100, EcnCodepoint::Ect0), resume);
        let first = q
            .dequeue(resume + SimDuration::from_millis(1))
            .expect("queue is non-empty");
        assert_eq!(
            first.ecn,
            EcnCodepoint::Ect0,
            "first post-idle dequeue must not be CE-marked"
        );
        assert_eq!(q.stats().marked.total(), 0);
        assert_eq!(q.stats().dropped_early.total(), 0);
        assert!(
            !q.in_dropping_state(),
            "one above-target sojourn is not persistent congestion"
        );
    }

    #[test]
    fn count_resets_to_one_across_long_idle() {
        // Sibling idle-state hazard: on exit-via-empty, `drop_next` stays
        // frozen at the old episode. The count-reuse guard compares
        // `now.since(drop_next)` against `interval * 8`; `SimTime::since`
        // saturates, so across a long idle gap the guard must take the reset
        // branch and the new episode restarts at count = 1 — a full-interval
        // signalling cadence, not the old escalated rate. Pin that.
        let interval = SimDuration::from_millis(10);
        let mut q = CoDel::new(cfg(true, ProtectionMode::Default));
        // Episode 1: persistent congestion escalates the count well past the
        // reuse threshold (same drive as drop_rate_escalates_...).
        for i in 0..400 {
            q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::from_micros(i));
        }
        let mut marks_1 = Vec::new();
        let mut t = SimTime::from_millis(50);
        loop {
            let before = q.stats().marked.total();
            if q.dequeue(t).is_none() {
                break;
            }
            if q.stats().marked.total() > before {
                marks_1.push(t);
            }
            t += SimDuration::from_micros(300);
        }
        assert!(marks_1.len() >= 4, "episode 1 must escalate the count");
        let last_gap = marks_1[marks_1.len() - 1].since(marks_1[marks_1.len() - 2]);
        assert!(
            last_gap < interval,
            "escalated cadence must be faster than one interval, got {last_gap}"
        );
        assert!(q.is_empty());
        // Long idle (far beyond interval * 8 past the frozen drop_next).
        let resume = SimTime::from_millis(5000);
        for i in 0..200 {
            q.enqueue(
                data(1000 + i, EcnCodepoint::Ect0),
                resume + SimDuration::from_micros(i),
            );
        }
        let mut marks_2 = Vec::new();
        let mut t = resume + SimDuration::from_millis(50);
        loop {
            let before = q.stats().marked.total();
            if q.dequeue(t).is_none() {
                break;
            }
            if q.stats().marked.total() > before {
                marks_2.push(t);
            }
            t += SimDuration::from_micros(300);
        }
        assert!(marks_2.len() >= 2, "episode 2 must re-enter dropping");
        let first_gap = marks_2[1].since(marks_2[0]);
        assert!(
            first_gap >= interval,
            "count must reset to 1 after long idle: first cadence gap \
             {first_gap} is shorter than the full interval"
        );
    }

    #[test]
    fn tail_drop_on_full_buffer() {
        let mut q = CoDel::new(CoDelConfig {
            capacity_packets: 4,
            ..cfg(true, ProtectionMode::AckSyn)
        });
        for i in 0..4 {
            assert!(q
                .enqueue(data(i, EcnCodepoint::Ect0), SimTime::ZERO)
                .accepted());
        }
        assert_eq!(
            q.enqueue(data(9, EcnCodepoint::Ect0), SimTime::ZERO),
            EnqueueOutcome::DroppedFull
        );
    }

    #[test]
    fn classic_config_validates() {
        CoDelConfig::classic(100).validate();
        let q = CoDel::new(CoDelConfig::classic(100));
        assert!(q.name().contains("CoDel"));
        assert!(!q.in_dropping_state());
    }
}
