//! Cluster topology specification.

use crate::link::LinkSpec;
use ecn_core::QdiscSpec;
use serde::{Deserialize, Serialize};

/// A two-tier Hadoop-style cluster:
///
/// ```text
///                 ┌──────┐
///                 │ core │
///                 └─┬──┬─┘
///        uplink ┌───┘  └───┐
///           ┌───┴──┐   ┌───┴──┐
///           │ ToR0 │   │ ToR1 │        (one per rack)
///           └┬─┬─┬─┘   └┬─┬─┬─┘
///  host link h h h      h h h          (hosts_per_rack each)
/// ```
///
/// All **switch egress ports** (ToR down-ports, ToR up-ports, core
/// down-ports) run `switch_qdisc` — this is where the paper's AQMs live.
/// Host NICs run a plain deep DropTail (`host_buffer_packets`): end hosts
/// are not where the paper intervenes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of racks (each gets a ToR switch).
    pub racks: u32,
    /// Hosts per rack.
    pub hosts_per_rack: u32,
    /// Host ↔ ToR link (both directions).
    pub host_link: LinkSpec,
    /// ToR ↔ core link (both directions). Typically faster (oversubscription
    /// control).
    pub uplink: LinkSpec,
    /// Queue discipline for every switch egress port.
    pub switch_qdisc: QdiscSpec,
    /// Host NIC buffer depth in packets (always DropTail).
    pub host_buffer_packets: u64,
    /// Seed for all stochastic components (AQM randomness).
    pub seed: u64,
}

impl ClusterSpec {
    /// Total hosts in the cluster.
    pub fn total_hosts(&self) -> u32 {
        self.racks * self.hosts_per_rack
    }

    /// Rack index of a host.
    pub fn rack_of(&self, host: u32) -> u32 {
        host / self.hosts_per_rack
    }

    /// Validate the spec.
    pub fn validate(&self) {
        assert!(self.racks >= 1, "need at least one rack");
        assert!(self.hosts_per_rack >= 1, "need at least one host per rack");
        assert!(self.host_buffer_packets >= 1);
        self.host_link.validate();
        self.uplink.validate();
    }

    /// A small single-rack cluster, handy for tests: `n` hosts behind one ToR.
    pub fn single_rack(n: u32, host_link: LinkSpec, switch_qdisc: QdiscSpec, seed: u64) -> Self {
        ClusterSpec {
            racks: 1,
            hosts_per_rack: n,
            host_link,
            uplink: host_link, // unused with one rack, but must be valid
            switch_qdisc,
            host_buffer_packets: 1000,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec {
            racks: 2,
            hosts_per_rack: 8,
            host_link: LinkSpec::gbps(1, 5),
            uplink: LinkSpec::gbps(10, 5),
            switch_qdisc: QdiscSpec::DropTail {
                capacity_packets: 100,
            },
            host_buffer_packets: 1000,
            seed: 1,
        }
    }

    #[test]
    fn host_counting_and_racks() {
        let s = spec();
        s.validate();
        assert_eq!(s.total_hosts(), 16);
        assert_eq!(s.rack_of(0), 0);
        assert_eq!(s.rack_of(7), 0);
        assert_eq!(s.rack_of(8), 1);
        assert_eq!(s.rack_of(15), 1);
    }

    #[test]
    fn single_rack_helper() {
        let s = ClusterSpec::single_rack(
            4,
            LinkSpec::gbps(1, 2),
            QdiscSpec::DropTail {
                capacity_packets: 50,
            },
            9,
        );
        s.validate();
        assert_eq!(s.total_hosts(), 4);
        assert_eq!(s.rack_of(3), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn zero_racks_rejected() {
        let mut s = spec();
        s.racks = 0;
        s.validate();
    }
}
