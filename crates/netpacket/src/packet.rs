//! The simulated packet.

use crate::{EcnCodepoint, TcpFlags};
use serde::{Deserialize, Serialize};
use simevent::SimTime;
use std::fmt;

/// Bytes of combined IP + TCP header we charge every segment for. The paper
/// describes ACKs as "short (typically 150 bytes)"; with options and framing
/// overhead a pure ACK in our model is [`Packet::ACK_BYTES`].
pub const TCP_HEADER_BYTES: u32 = 66;

/// Identifies a host or switch in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies one TCP connection (one direction-pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Globally unique packet identity (for tracing and latency bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketId(pub u64);

/// SACK option blocks carried on an ACK: up to three half-open `[start,
/// end)` ranges of out-of-order data the receiver holds (RFC 2018 allows
/// 3–4; we model 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SackBlocks {
    blocks: [(u64, u64); 3],
    len: u8,
}

impl SackBlocks {
    /// No SACK information.
    pub const EMPTY: SackBlocks = SackBlocks {
        blocks: [(0, 0); 3],
        len: 0,
    };

    /// Append a block; silently ignored beyond capacity or if empty.
    pub fn push(&mut self, start: u64, end: u64) {
        if start >= end || (self.len as usize) >= self.blocks.len() {
            return;
        }
        self.blocks[self.len as usize] = (start, end);
        self.len += 1;
    }

    /// The carried blocks.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.blocks[..self.len as usize].iter().copied()
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no blocks are carried.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A simulated TCP/IP packet.
///
/// The model is packet-level, like NS-2: payload bytes are counted, not
/// carried. Sequence and acknowledgement numbers are in bytes, as in real TCP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique identity.
    pub id: PacketId,
    /// Connection this packet belongs to.
    pub flow: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// First payload byte's sequence number (or the SYN/FIN sequence slot).
    pub seq: u64,
    /// Cumulative acknowledgement number; meaningful when `flags` has ACK.
    pub ack: u64,
    /// Payload bytes carried (0 for pure ACK / SYN / FIN).
    pub payload: u32,
    /// TCP flag byte, including ECE/CWR (paper Table I).
    pub flags: TcpFlags,
    /// IP-header ECN field (paper Table II).
    pub ecn: EcnCodepoint,
    /// SACK option blocks (meaningful on ACKs when SACK is negotiated).
    pub sack: SackBlocks,
    /// Instant the packet left the sending host's TCP (for end-to-end latency).
    pub sent_at: SimTime,
}

impl Packet {
    /// Wire size of a pure ACK in our model — the paper calls ACKs "short
    /// (typically 150 bytes)"; we charge header-only segments a round 150 B
    /// to match (header + link framing + typical options/padding).
    pub const ACK_BYTES: u32 = 150;

    /// Total bytes the packet occupies on the wire and in buffers.
    ///
    /// Data segments: header + payload. Header-only segments (pure ACK, SYN,
    /// SYN-ACK, FIN): the paper's 150-byte short packet.
    pub fn wire_bytes(&self) -> u32 {
        if self.payload == 0 {
            Self::ACK_BYTES
        } else {
            TCP_HEADER_BYTES + self.payload
        }
    }

    /// True when the packet carries no payload but has ACK set and is not a
    /// SYN/FIN/RST — i.e. the "pure ACK" the paper's problem revolves around.
    pub fn is_pure_ack(&self) -> bool {
        self.payload == 0
            && self.flags.contains(TcpFlags::ACK)
            && !self
                .flags
                .intersects(TcpFlags::SYN | TcpFlags::FIN | TcpFlags::RST)
    }

    /// True for the initial SYN (no ACK bit).
    pub fn is_syn(&self) -> bool {
        self.flags.contains(TcpFlags::SYN) && !self.flags.contains(TcpFlags::ACK)
    }

    /// True for the SYN-ACK reply.
    pub fn is_syn_ack(&self) -> bool {
        self.flags.contains(TcpFlags::SYN) && self.flags.contains(TcpFlags::ACK)
    }

    /// True when the TCP header carries the ECE (ECN-Echo) flag — the set the
    /// paper's first proposal protects from early drop.
    pub fn has_ece(&self) -> bool {
        self.flags.contains(TcpFlags::ECE)
    }

    /// True when the IP header says the transport is ECN-capable.
    pub fn is_ect(&self) -> bool {
        self.ecn.is_ect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(flags: TcpFlags, payload: u32, ecn: EcnCodepoint) -> Packet {
        Packet {
            id: PacketId(1),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload,
            flags,
            ecn,
            sack: SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn pure_ack_classification() {
        let ack = base(TcpFlags::ACK, 0, EcnCodepoint::NotEct);
        assert!(ack.is_pure_ack());
        assert!(!ack.is_syn());
        assert!(!ack.is_syn_ack());

        let data = base(TcpFlags::ACK, 1460, EcnCodepoint::Ect0);
        assert!(
            !data.is_pure_ack(),
            "segments with payload are not pure ACKs"
        );

        let syn_ack = base(TcpFlags::SYN | TcpFlags::ACK, 0, EcnCodepoint::NotEct);
        assert!(!syn_ack.is_pure_ack());
        assert!(syn_ack.is_syn_ack());

        let fin_ack = base(TcpFlags::FIN | TcpFlags::ACK, 0, EcnCodepoint::NotEct);
        assert!(!fin_ack.is_pure_ack());
    }

    #[test]
    fn syn_classification() {
        let syn = base(TcpFlags::ecn_setup_syn(), 0, EcnCodepoint::NotEct);
        assert!(syn.is_syn());
        assert!(!syn.is_syn_ack());
        assert!(syn.has_ece(), "ECN-negotiating SYN carries ECE");
    }

    #[test]
    fn wire_bytes_short_packets_are_150() {
        // The paper: "ACK packets are short (typically 150 bytes)".
        let ack = base(TcpFlags::ACK, 0, EcnCodepoint::NotEct);
        assert_eq!(ack.wire_bytes(), 150);
        let syn = base(TcpFlags::SYN, 0, EcnCodepoint::NotEct);
        assert_eq!(syn.wire_bytes(), 150);
    }

    #[test]
    fn wire_bytes_data() {
        let data = base(TcpFlags::ACK, 1460, EcnCodepoint::Ect0);
        assert_eq!(data.wire_bytes(), 1460 + TCP_HEADER_BYTES);
    }

    #[test]
    fn ect_and_ece_accessors() {
        let p = base(TcpFlags::ACK | TcpFlags::ECE, 0, EcnCodepoint::NotEct);
        assert!(p.has_ece());
        assert!(
            !p.is_ect(),
            "pure ACKs are Non-ECT even when echoing congestion"
        );
        let d = base(TcpFlags::ACK, 1460, EcnCodepoint::Ce);
        assert!(d.is_ect());
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(FlowId(9).to_string(), "f9");
    }
}
