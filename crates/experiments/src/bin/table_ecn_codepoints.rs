//! Print the paper's Tables I and II (ECN codepoints) straight from the
//! packet model, so the constants in code are auditable against the paper.

fn main() {
    print!("{}", experiments::figures::table1());
    println!();
    print!("{}", experiments::figures::table2());
}
