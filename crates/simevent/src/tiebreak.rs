//! Same-timestamp tie-break policy for event queues.
//!
//! Every queue backend orders pops by `(time, tie)` where `tie` is derived
//! from the monotone schedule sequence number and the event's *lane*: a
//! packed `(dest, src)` pair naming the entity that will handle the event
//! and the entity that produced it. Under [`TieBreak::Fifo`] the tie key
//! *is* the sequence number, so same-instant events pop in the order they
//! were scheduled — the production default the whole determinism contract
//! is written against.
//!
//! [`TieBreak::Permuted`] reorders same-instant events *across destination
//! entities* by a seeded pseudo-random rank, while ordering events for the
//! same destination canonically by `(src, schedule order)`. That models a
//! sharded engine (ROADMAP item 2) exactly: shards have no global order at
//! an instant (the seeded rank is one arbitrary interleaving), but every
//! shard merges its incoming same-timestamp messages deterministically by
//! source channel — per-source FIFO, sources in a fixed canonical order.
//! The `(src, seq)` sub-key is seed-invariant, so one destination's event
//! order never depends on how *other* entities' same-instant work was
//! interleaved upstream. Physically contending events (two packets reaching
//! one port at one instant) therefore keep one pinned order across every
//! seed; only genuinely concurrent cross-entity work is permuted.
//!
//! `simverify` re-runs pinned scenarios under several permutation seeds:
//! any metrics or trace divergence means some handler depends on
//! cross-entity same-timestamp order — an order-dependence bug that would
//! silently break sharded execution.

/// How same-timestamp events are ordered relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Global schedule order (FIFO). The production default.
    #[default]
    Fifo,
    /// Seeded pseudo-random rank over destination entities; canonical
    /// `(src, schedule order)` within a destination.
    Permuted(u64),
}

/// Pack a `(dest, src)` entity pair into the `lane` argument of the
/// scheduling APIs. `dest` is the entity that will handle the event, `src`
/// the entity whose handler produced it; both are small per-run indices
/// (devices, plus reserved lanes for the application and samplers).
#[inline]
pub fn pack_lane(dest: u16, src: u16) -> u64 {
    (u64::from(dest) << 16) | u64::from(src)
}

/// SplitMix64 finalizer: a bijection on `u64` with strong avalanche.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TieBreak {
    /// Map a schedule sequence number and packed lane to the tie key used in
    /// `(time, tie)` ordering.
    ///
    /// `Fifo` ignores the lane and returns `seq` — the identity, so ordering
    /// is bit-identical to the historical `(time, seq)` contract. `Permuted`
    /// packs `[dest_rank:16][src:16][seq:32]`: destinations sort by a
    /// seed-dependent hash rank, one destination's events sort canonically
    /// by `(src, seq)`. Supports 2³² events and 2¹⁶ entities per run
    /// (debug-asserted; the pinned simverify grids are orders of magnitude
    /// below both).
    #[inline]
    pub fn key(self, seq: u64, lane: u64) -> u64 {
        match self {
            TieBreak::Fifo => seq,
            TieBreak::Permuted(seed) => {
                debug_assert!(
                    seq < (1 << 32),
                    "permuted tie-break supports at most 2^32 events per run"
                );
                debug_assert!(
                    lane < (1 << 32),
                    "lane must be pack_lane(dest, src) with 16-bit entities"
                );
                let dest = lane >> 16;
                let src = lane & 0xffff;
                let dest_rank = mix(dest ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 48;
                (dest_rank << 48) | (src << 32) | (seq & 0xffff_ffff)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn fifo_is_identity() {
        for seq in [0u64, 1, 7, u64::MAX] {
            assert_eq!(TieBreak::Fifo.key(seq, pack_lane(3, 1)), seq);
            assert_eq!(TieBreak::Fifo.key(seq, pack_lane(99, 7)), seq);
        }
    }

    #[test]
    fn permuted_keys_are_unique_per_seq() {
        // Uniqueness backstop: no two events may collide, or the (time, tie)
        // order would stop being total. Low 32 bits carry seq, so keys are
        // distinct whatever the lanes hash to.
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let tb = TieBreak::Permuted(seed);
            let keys: BTreeSet<u64> = (0..10_000u64)
                .map(|s| tb.key(s, pack_lane((s % 7) as u16, (s % 3) as u16)))
                .collect();
            assert_eq!(keys.len(), 10_000, "collision under seed {seed}");
        }
    }

    #[test]
    fn permuted_preserves_fifo_within_a_lane() {
        for seed in [0u64, 1, 7] {
            let tb = TieBreak::Permuted(seed);
            for dest in 0..4u16 {
                for src in 0..4u16 {
                    let lane = pack_lane(dest, src);
                    for seq in 0..50u64 {
                        assert!(
                            tb.key(seq, lane) < tb.key(seq + 1, lane),
                            "same-lane FIFO broken (seed {seed}, dest {dest}, src {src})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn within_dest_order_is_canonical_across_seeds() {
        // The deterministic-merge property: for one destination, the order
        // of same-instant events is (src, seq) under EVERY seed. This is
        // what pins physically contending events (same port, same instant)
        // to one order while cross-entity order is permuted.
        let events: Vec<(u64, u16)> = vec![(0, 9), (1, 2), (2, 9), (3, 0), (4, 2), (5, 1)];
        let order = |seed: u64| {
            let tb = TieBreak::Permuted(seed);
            let mut evs = events.clone();
            evs.sort_by_key(|&(seq, src)| tb.key(seq, pack_lane(7, src)));
            evs
        };
        let want = order(0);
        for seed in 1..50u64 {
            assert_eq!(
                order(seed),
                want,
                "within-dest order moved under seed {seed}"
            );
        }
        // And that canonical order is (src asc, seq asc), not schedule order.
        let srcs: Vec<u16> = want.iter().map(|&(_, s)| s).collect();
        assert_eq!(srcs, vec![0, 1, 2, 2, 9, 9]);
    }

    #[test]
    fn permuted_reorders_across_dests() {
        // With 16 destinations some pair must invert relative to schedule
        // order, otherwise Permuted degenerates into Fifo.
        let tb = TieBreak::Permuted(1);
        let inverted = (0..16u64).any(|i| {
            tb.key(i, pack_lane(i as u16, 0)) > tb.key(i + 1, pack_lane(((i + 1) % 16) as u16, 0))
        });
        assert!(inverted, "Permuted(1) preserved global FIFO across dests");
    }

    #[test]
    fn distinct_seeds_give_distinct_dest_orders() {
        let order = |seed: u64| {
            let tb = TieBreak::Permuted(seed);
            let mut dests: Vec<u16> = (0..32).collect();
            dests.sort_by_key(|&d| tb.key(0, pack_lane(d, 0)));
            dests
        };
        assert_ne!(order(1), order(2));
        assert_eq!(order(1), order(1), "same seed, same order");
    }
}
