//! Flow-completion-time instrumentation for workload generators.
//!
//! The datacenter-transport literature reports flow completion times (FCT)
//! and *slowdowns* — FCT normalised by the completion time the same flow
//! would see on an idle network — split by flow size class (latency-bound
//! "mice" vs throughput-bound "elephants"). [`FctCollector`] records one
//! sample per completed flow and [`FctCollector::summary`] reduces them to
//! the p50/p95/p99 statistics the `workloads` experiment bin reports.
//!
//! Everything here is exact (sorted sample vectors, not histogram buckets):
//! workload runs complete at most tens of thousands of flows, and the
//! acceptance test for the workload subsystem demands *byte-identical*
//! summaries across same-seed runs, which exact integer arithmetic plus a
//! fixed reduction order gives us for free.

use serde::{Deserialize, Serialize};
use simevent::SimDuration;

/// Size class of a flow, for splitting FCT statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowClass {
    /// Short latency-sensitive flow (requests, responses, control traffic).
    Mouse,
    /// Bulk throughput-driven transfer.
    Elephant,
}

impl FlowClass {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FlowClass::Mouse => "mice",
            FlowClass::Elephant => "elephants",
        }
    }

    /// Both classes.
    pub const ALL: [FlowClass; 2] = [FlowClass::Mouse, FlowClass::Elephant];
}

/// The idle-network completion-time model used to turn an FCT into a
/// slowdown: one base RTT (connection setup + first-byte latency) plus the
/// flow's serialisation time at the bottleneck line rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdealFct {
    /// Unloaded round-trip time between the endpoints.
    pub base_rtt: SimDuration,
    /// Bottleneck line rate along the path, bits per second.
    pub bottleneck_bps: u64,
}

impl IdealFct {
    /// Best-case completion time for a `bytes`-long flow.
    pub fn fct(&self, bytes: u64) -> SimDuration {
        // Floor at 1 ns so the slowdown ratio is always defined.
        (self.base_rtt + SimDuration::transmission(bytes, self.bottleneck_bps))
            .max(SimDuration::from_nanos(1))
    }

    /// Slowdown of a measured FCT: `measured / ideal`, ≥ 0.
    pub fn slowdown(&self, bytes: u64, measured: SimDuration) -> f64 {
        measured.as_nanos() as f64 / self.fct(bytes).as_nanos() as f64
    }
}

/// One recorded flow completion.
#[derive(Debug, Clone, Copy)]
struct FctSample {
    bytes: u64,
    fct_ns: u64,
}

/// Records per-flow completion times, split by [`FlowClass`], and reduces
/// them to percentile summaries.
#[derive(Debug, Clone)]
pub struct FctCollector {
    ideal: IdealFct,
    samples: [Vec<FctSample>; 2],
}

impl FctCollector {
    /// A collector normalising against the given ideal-FCT model.
    pub fn new(ideal: IdealFct) -> Self {
        FctCollector {
            ideal,
            samples: [Vec::new(), Vec::new()],
        }
    }

    /// The ideal model this collector normalises with.
    pub fn ideal(&self) -> IdealFct {
        self.ideal
    }

    /// Record one completed flow.
    pub fn record(&mut self, class: FlowClass, bytes: u64, fct: SimDuration) {
        self.samples[class as usize].push(FctSample {
            bytes,
            fct_ns: fct.as_nanos(),
        });
    }

    /// Completed flows recorded so far (both classes).
    pub fn count(&self) -> u64 {
        self.samples.iter().map(|s| s.len() as u64).sum()
    }

    /// Completed flows of one class.
    pub fn count_class(&self, class: FlowClass) -> u64 {
        self.samples[class as usize].len() as u64
    }

    /// Reduce to the summary the workload experiments report.
    pub fn summary(&self) -> FctSummary {
        let mice = class_summary(&self.samples[FlowClass::Mouse as usize], &self.ideal);
        let elephants = class_summary(&self.samples[FlowClass::Elephant as usize], &self.ideal);
        let mut all_samples: Vec<FctSample> = Vec::with_capacity(self.count() as usize);
        for s in &self.samples {
            all_samples.extend_from_slice(s);
        }
        let all = class_summary(&all_samples, &self.ideal);
        FctSummary {
            all,
            mice,
            elephants,
        }
    }
}

/// Percentile statistics for one flow class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassFctSummary {
    /// Completed flows.
    pub flows: u64,
    /// Total bytes those flows transferred.
    pub bytes: u64,
    /// Mean FCT, microseconds.
    pub fct_mean_us: f64,
    /// Median FCT, microseconds.
    pub fct_p50_us: f64,
    /// 95th-percentile FCT, microseconds.
    pub fct_p95_us: f64,
    /// 99th-percentile FCT, microseconds.
    pub fct_p99_us: f64,
    /// Largest FCT, microseconds.
    pub fct_max_us: f64,
    /// Mean slowdown (FCT / ideal FCT).
    pub slowdown_mean: f64,
    /// Median slowdown.
    pub slowdown_p50: f64,
    /// 95th-percentile slowdown.
    pub slowdown_p95: f64,
    /// 99th-percentile slowdown.
    pub slowdown_p99: f64,
}

/// The full mice/elephants/overall FCT report of one workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FctSummary {
    /// Every completed flow.
    pub all: ClassFctSummary,
    /// Mice only.
    pub mice: ClassFctSummary,
    /// Elephants only.
    pub elephants: ClassFctSummary,
}

/// Linear-interpolation percentile over a sorted slice (the "linear" /
/// numpy-default definition: rank `q·(n-1)` interpolated between neighbours).
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile must be in [0,1]");
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let rank = q * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

fn class_summary(samples: &[FctSample], ideal: &IdealFct) -> ClassFctSummary {
    if samples.is_empty() {
        return ClassFctSummary {
            flows: 0,
            bytes: 0,
            fct_mean_us: 0.0,
            fct_p50_us: 0.0,
            fct_p95_us: 0.0,
            fct_p99_us: 0.0,
            fct_max_us: 0.0,
            slowdown_mean: 0.0,
            slowdown_p50: 0.0,
            slowdown_p95: 0.0,
            slowdown_p99: 0.0,
        };
    }
    let mut fcts: Vec<f64> = samples.iter().map(|s| s.fct_ns as f64 / 1e3).collect();
    let mut slowdowns: Vec<f64> = samples
        .iter()
        .map(|s| ideal.slowdown(s.bytes, SimDuration::from_nanos(s.fct_ns)))
        .collect();
    fcts.sort_by(f64::total_cmp);
    slowdowns.sort_by(f64::total_cmp);
    let n = samples.len() as f64;
    ClassFctSummary {
        flows: samples.len() as u64,
        bytes: samples.iter().map(|s| s.bytes).sum(),
        fct_mean_us: fcts.iter().sum::<f64>() / n,
        fct_p50_us: percentile_sorted(&fcts, 0.50),
        fct_p95_us: percentile_sorted(&fcts, 0.95),
        fct_p99_us: percentile_sorted(&fcts, 0.99),
        fct_max_us: fcts.last().copied().unwrap_or(0.0),
        slowdown_mean: slowdowns.iter().sum::<f64>() / n,
        slowdown_p50: percentile_sorted(&slowdowns, 0.50),
        slowdown_p95: percentile_sorted(&slowdowns, 0.95),
        slowdown_p99: percentile_sorted(&slowdowns, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal() -> IdealFct {
        IdealFct {
            base_rtt: SimDuration::from_micros(100),
            bottleneck_bps: 1_000_000_000,
        }
    }

    #[test]
    fn ideal_fct_is_rtt_plus_serialisation() {
        // 125000 bytes at 1 Gbps = 1 ms, plus 100 us RTT.
        assert_eq!(
            ideal().fct(125_000),
            SimDuration::from_micros(1100),
            "1 ms serialisation + 100 us RTT"
        );
        // Zero-byte flow still costs one RTT.
        assert_eq!(ideal().fct(0), SimDuration::from_micros(100));
    }

    #[test]
    fn slowdown_of_ideal_flow_is_one() {
        let i = ideal();
        let sd = i.slowdown(125_000, i.fct(125_000));
        assert!((sd - 1.0).abs() < 1e-12, "slowdown = {sd}");
    }

    #[test]
    fn empty_collector_summarises_to_zeros() {
        let c = FctCollector::new(ideal());
        assert_eq!(c.count(), 0);
        let s = c.summary();
        assert_eq!(s.all.flows, 0);
        assert_eq!(s.mice.fct_p99_us, 0.0);
        assert_eq!(s.elephants.slowdown_p50, 0.0);
    }

    #[test]
    fn classes_split_and_merge() {
        let mut c = FctCollector::new(ideal());
        c.record(FlowClass::Mouse, 1000, SimDuration::from_micros(200));
        c.record(FlowClass::Mouse, 1000, SimDuration::from_micros(400));
        c.record(FlowClass::Elephant, 1_000_000, SimDuration::from_millis(20));
        assert_eq!(c.count(), 3);
        assert_eq!(c.count_class(FlowClass::Mouse), 2);
        let s = c.summary();
        assert_eq!(s.mice.flows, 2);
        assert_eq!(s.elephants.flows, 1);
        assert_eq!(s.all.flows, 3);
        assert_eq!(s.all.bytes, 1_002_000);
        assert_eq!(s.mice.fct_p50_us, 300.0, "median interpolates");
        assert_eq!(s.mice.fct_max_us, 400.0);
    }

    #[test]
    fn percentiles_interpolate_linearly() {
        let xs: Vec<f64> = (1..=5).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 1.0), 5.0);
        assert_eq!(percentile_sorted(&xs, 0.5), 3.0);
        assert_eq!(percentile_sorted(&xs, 0.25), 2.0);
        assert_eq!(percentile_sorted(&xs, 0.125), 1.5);
        assert_eq!(percentile_sorted(&[7.0], 0.99), 7.0, "single sample");
        assert_eq!(percentile_sorted(&[], 0.5), 0.0, "empty");
    }

    #[test]
    fn single_sample_summary_is_that_sample() {
        let mut c = FctCollector::new(ideal());
        c.record(FlowClass::Mouse, 1000, SimDuration::from_micros(250));
        let s = c.summary();
        assert_eq!(s.all.flows, 1);
        // Every percentile of a one-sample distribution is the sample.
        assert_eq!(s.mice.fct_p50_us, 250.0);
        assert_eq!(s.mice.fct_p95_us, 250.0);
        assert_eq!(s.mice.fct_p99_us, 250.0);
        assert_eq!(s.mice.fct_max_us, 250.0);
        assert_eq!(s.mice.fct_mean_us, 250.0);
        assert_eq!(s.mice.slowdown_p50, s.mice.slowdown_mean);
        // The untouched class stays all-zero.
        assert_eq!(s.elephants.flows, 0);
        assert_eq!(s.elephants.fct_max_us, 0.0);
    }

    #[test]
    fn duplicate_samples_collapse_every_percentile() {
        let mut c = FctCollector::new(ideal());
        for _ in 0..1000 {
            c.record(FlowClass::Elephant, 50_000, SimDuration::from_micros(777));
        }
        let s = c.summary();
        for v in [
            s.elephants.fct_p50_us,
            s.elephants.fct_p95_us,
            s.elephants.fct_p99_us,
            s.elephants.fct_max_us,
            s.elephants.fct_mean_us,
        ] {
            assert_eq!(v, 777.0, "all statistics of a constant sample agree");
        }
        assert_eq!(s.elephants.slowdown_p99, s.elephants.slowdown_p50);
    }

    #[test]
    fn percentile_sorted_duplicate_plateau() {
        // A run of duplicates: percentiles inside the plateau return the
        // duplicated value exactly (no interpolation drift).
        let xs = [1.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 9.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 0.5), 5.0);
        assert_eq!(percentile_sorted(&xs, 0.75), 5.0);
        assert_eq!(percentile_sorted(&xs, 1.0), 9.0);
        // Monotone across the plateau edges.
        let qs = [0.0, 0.1, 0.2, 0.5, 0.8, 0.9, 1.0];
        for w in qs.windows(2) {
            assert!(percentile_sorted(&xs, w[0]) <= percentile_sorted(&xs, w[1]));
        }
    }

    #[test]
    fn summary_is_deterministic() {
        let build = || {
            let mut c = FctCollector::new(ideal());
            for i in 0..100u64 {
                let class = if i % 7 == 0 {
                    FlowClass::Elephant
                } else {
                    FlowClass::Mouse
                };
                c.record(class, 1000 + i * 13, SimDuration::from_micros(150 + i * 3));
            }
            c.summary()
        };
        assert_eq!(build(), build());
    }
}
