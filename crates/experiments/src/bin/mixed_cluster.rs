//! The paper's motivating scenario (§I), quantified: a latency-sensitive
//! service (20 kB request flows every 5 ms) co-located with a Terasort
//! shuffle. Compare what the service experiences under DropTail vs the
//! paper's fixed configurations, on both buffer depths.
//!
//! Usage: `mixed_cluster [--tiny]`

use ecn_core::ProtectionMode;
use experiments::scenario::{BufferDepth, QueueKind, ScenarioConfig, Transport};
use mrsim::{JobSpec, TerasortJob};
use netsim::{jain_fairness, ClusterSpec, LatencyProbes, Network, PairApp, Simulation};
use simevent::SimDuration;
use tcpstack::TcpConfig;

struct Row {
    label: String,
    runtime_s: f64,
    probe_mean_ms: f64,
    probe_p99_ms: f64,
    probes_done: u64,
    fairness: f64,
}

fn run(cfg: &ScenarioConfig, queue: QueueKind, depth: BufferDepth, transport: Transport) -> Row {
    let delay = SimDuration::from_micros(500);
    let spec = ClusterSpec {
        racks: cfg.racks,
        hosts_per_rack: cfg.hosts_per_rack,
        host_link: cfg.host_link,
        uplink: cfg.uplink,
        switch_qdisc: cfg.qdisc(queue, depth, delay),
        host_buffer_packets: 4 * cfg.deep_packets,
        seed: cfg.seed,
    };
    let n = spec.total_hosts();
    let tcp = TcpConfig {
        recv_wnd: 128 << 10,
        sack: false,
        ..TcpConfig::with_ecn(transport.ecn_mode())
    };
    let job = JobSpec {
        input_bytes_per_node: cfg.input_bytes_per_node,
        map_waves: cfg.map_waves,
        map_rate_bps: 100_000_000,
        reduce_rate_bps: 200_000_000,
        tcp: tcp.clone(),
        parallel_copies: 5,
        shuffle_jitter: cfg.shuffle_jitter,
        seed: cfg.seed ^ 0x5EED,
    };
    let terasort = TerasortJob::new(job, n);
    let probes = LatencyProbes::new(n, 20_000, SimDuration::from_millis(5), tcp);
    let net = Network::new(spec);
    let mut sim = Simulation::new(net, PairApp::new(terasort, probes));
    sim.time_limit = cfg.time_limit;
    let report = sim.run();
    assert!(
        report.app_done,
        "{} {}: job must complete",
        queue.label(),
        depth.label()
    );

    let probes = &sim.app.secondary;
    let fcts: Vec<f64> = probes
        .fct_samples()
        .iter()
        .map(|d| d.as_secs_f64())
        .collect();
    Row {
        label: format!(
            "{} {} ({})",
            queue.label(),
            depth.label(),
            transport.label()
        ),
        runtime_s: sim.app.primary.result().runtime.as_secs_f64(),
        probe_mean_ms: probes.fct().mean().as_secs_f64() * 1e3,
        probe_p99_ms: probes.fct().quantile(0.99).as_secs_f64() * 1e3,
        probes_done: probes.completed(),
        fairness: jain_fairness(&fcts),
    }
}

fn main() {
    let cfg = experiments::cli::cli_args().scenario();

    println!("Terasort + 20 kB service probes every 5 ms (the paper's mixed cluster):\n");
    println!(
        "{:<38} {:>9} {:>11} {:>10} {:>7} {:>9}",
        "configuration", "runtime", "probe-mean", "probe-p99", "#done", "fairness"
    );
    let rows = [
        (QueueKind::DropTail, BufferDepth::Shallow, Transport::Tcp),
        (QueueKind::DropTail, BufferDepth::Deep, Transport::Tcp),
        (
            QueueKind::Red(ProtectionMode::Default),
            BufferDepth::Shallow,
            Transport::TcpEcn,
        ),
        (
            QueueKind::Red(ProtectionMode::AckSyn),
            BufferDepth::Shallow,
            Transport::TcpEcn,
        ),
        (
            QueueKind::SimpleMarking,
            BufferDepth::Shallow,
            Transport::Dctcp,
        ),
        (
            QueueKind::SimpleMarking,
            BufferDepth::Deep,
            Transport::Dctcp,
        ),
    ];
    for (q, d, t) in rows {
        let r = run(&cfg, q, d, t);
        println!(
            "{:<38} {:>8.3}s {:>8.2} ms {:>7.2} ms {:>7} {:>9.3}",
            r.label, r.runtime_s, r.probe_mean_ms, r.probe_p99_ms, r.probes_done, r.fairness
        );
    }
    println!(
        "\nDropTail-deep drowns the service in Bufferbloat; marking keeps probe\n\
         completion times flat while the shuffle runs at full speed — the\n\
         'low-latency services on the same infrastructure' goal of §I."
    );
}
