// Fixture: SL002 — default-hasher collections in simulation state.

use std::collections::{HashMap, HashSet}; // use-lines are exempt

pub struct Bad {
    by_flow: HashMap<u64, u64>,     // SL002: default hasher
    seen: HashSet<u64>,             // SL002: default hasher
}

pub struct Fine {
    // Custom fixed hashers are deterministic and allowed.
    by_seq: HashMap<u64, u64, std::hash::BuildHasherDefault<MyHasher>>,
    cancelled: HashSet<u64, std::hash::BuildHasherDefault<MyHasher>>,
    ordered: std::collections::BTreeMap<u64, u64>,
}

pub struct MyHasher;
