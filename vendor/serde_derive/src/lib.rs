//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are not vendored, so this crate parses the derive input
//! token stream by hand. That is tractable because the workspace only derives
//! on plain shapes: non-generic named structs, tuple structs, and enums with
//! unit / newtype / tuple / struct variants, with no `#[serde(...)]`
//! attributes. Anything outside that envelope panics at compile time with a
//! clear message rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skip `#[...]` attribute pairs (including doc comments) starting at `i`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skip `pub` / `pub(crate)` style visibility starting at `i`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advance past a type (or any token run) up to and including the next
/// top-level `,`. Only `<`/`>` need depth tracking — brackets arrive as
/// atomic groups.
fn skip_past_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize, what: &str) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde derive: expected {what}, found {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i, "field name");
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected ':' after field `{name}`, found {other:?}"),
        }
        skip_past_comma(&toks, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_past_comma(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i, "variant name");
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible discriminant and the trailing comma.
        skip_past_comma(&toks, &mut i);
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i, "`struct` or `enum`");
    let name = expect_ident(&toks, &mut i, "type name");
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are not supported by the vendored stub");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde derive: expected `struct` or `enum`, found `{other}`"),
    };
    Item { name, shape }
}

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(clippy::all, clippy::pedantic, unused_variables, unused_mut, unreachable_patterns)]\n";

fn obj_literal(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), ::serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Obj(vec![{}])", entries.join(""))
}

fn obj_reader(name: &str, ctx: &str, fields: &[String], src: &str) -> String {
    // Missing keys read as Null so `Option` fields tolerate absence; every
    // other type reports "expected ..., got Null" with the field path.
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({src}.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                 .map_err(|e| ::serde::Error(format!(\"{ctx}.{f}: {{}}\", e.0)))?,"
            )
        })
        .collect();
    format!("{name} {{ {} }}", inits.join(""))
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => obj_literal(fields, |f| format!("&self.{f}")),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(""))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Obj(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Obj(vec![(\"{vname}\".to_string(), ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(","),
                                items.join("")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(",");
                            let inner = obj_literal(fields, |f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(vec![(\"{vname}\".to_string(), {inner})]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(""))
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let reader = obj_reader(name, name, fields, "v");
            format!(
                "match v {{\n\
                 ::serde::Value::Obj(_) => Ok({reader}),\n\
                 other => Err(::serde::Error(format!(\"expected object for {name}, got {{other:?}}\"))),\n\
                 }}"
            )
        }
        Shape::TupleStruct(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Arr(items) if items.len() == {n} => Ok({name}({})),\n\
                 other => Err(::serde::Error(format!(\"expected {n}-element array for {name}, got {{other:?}}\"))),\n\
                 }}",
                inits.join("")
            )
        }
        Shape::UnitStruct => format!("{{ let _ = v; Ok({name}) }}"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match inner {{\n\
                                 ::serde::Value::Arr(items) if items.len() == {n} => Ok({name}::{vname}({})),\n\
                                 other => Err(::serde::Error(format!(\"expected {n}-element array for {name}::{vname}, got {{other:?}}\"))),\n\
                                 }},",
                                inits.join("")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let ctx = format!("{name}::{vname}");
                            let reader =
                                obj_reader(&format!("{name}::{vname}"), &ctx, fields, "inner");
                            Some(format!("\"{vname}\" => Ok({reader}),"))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 other => Err(::serde::Error(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Obj(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {}\n\
                 other => Err(::serde::Error(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::Error(format!(\"expected string or single-key object for {name}, got {{other:?}}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

/// Derive `serde::Serialize` (tree-model stub).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` (tree-model stub).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
