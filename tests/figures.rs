//! End-to-end figure generation on a reduced grid: panels are well-formed
//! and the normalisation semantics hold.

use ecn_core::ProtectionMode;
use experiments::figures::{fig2, fig3, fig4};
use experiments::report::render_panel;
use experiments::scenario::{BufferDepth, QueueKind, Transport};
use experiments::sweep::{sweep, SweepGrid};

fn tiny_sweep() -> experiments::sweep::SweepResults {
    let mut grid = SweepGrid::tiny();
    grid.transports = vec![Transport::TcpEcn];
    grid.queues = vec![
        QueueKind::Red(ProtectionMode::AckSyn),
        QueueKind::SimpleMarking,
    ];
    grid.target_delays_us = vec![500];
    sweep(&grid)
}

#[test]
fn figures_are_well_formed_and_normalised() {
    let res = tiny_sweep();
    assert!(res.baseline_shallow.completed && res.baseline_deep.completed);

    for (panels, lower_is_better) in [(fig2(&res), true), (fig3(&res), false), (fig4(&res), true)] {
        for panel in panels {
            // 2 series (1 transport x 2 queues), 1 cell each.
            assert_eq!(panel.series.len(), 2, "{}", panel.id);
            for s in &panel.series {
                assert_eq!(s.cells.len(), 1, "{}/{}", panel.id, s.label);
                let v = s.cells[0].value;
                assert!(v.is_finite() && v > 0.0, "{}/{}: {v}", panel.id, s.label);
            }
            // Deep panels carry the dashed reference line.
            match panel.depth {
                BufferDepth::Deep => assert!(panel.reference.is_some(), "{}", panel.id),
                BufferDepth::Shallow => assert!(panel.reference.is_none(), "{}", panel.id),
            }
            // Rendering includes id, delays, and every series label.
            let txt = render_panel(&panel);
            assert!(txt.contains(&panel.id));
            assert!(txt.contains("500us"));
            for s in &panel.series {
                assert!(txt.contains(&s.label));
            }
            let _ = lower_is_better;
        }
    }
}

#[test]
fn claims_computable_from_reduced_sweep() {
    let res = tiny_sweep();
    let c = experiments::claims::claims(&res);
    // ack+syn exists in the grid, so its best-throughput is finite/positive.
    assert!(c.ack_syn_best_throughput > 0.0);
    assert!(c.simple_marking_best_throughput > 0.0);
    // No Red[Default] points at <=200us in this grid: the "tight" metric is
    // the fold identity (+inf), which the renderer must tolerate.
    let rendered = experiments::claims::render_claims(&c);
    assert!(rendered.contains("measured"));
}
