//! The tiny-buffer protection-mode sweep: every core queue discipline at
//! 8–32-packet buffers.
//!
//! Tiny Buffer TCP (PAPERS.md) argues commodity switch ports really run
//! tens-of-packets buffers — exactly the regime where an AQM's early-drop
//! policy on non-ECT control packets should matter most, because a single
//! lost ACK or SYN is a whole RTO against a sub-millisecond queue. The paper
//! established its protection result against RED; this sweep asks whether
//! the direction of effect survives when the AQM is delay-based (CoDel,
//! PIE), curve-based (Curvy RED) or coupled (L4S DualQ):
//!
//! * ACK+SYN protection must never early-drop an ACK (structural, every
//!   AQM);
//! * stock `Default` policy must still show the pathology somewhere in the
//!   grid (otherwise the comparison is vacuous);
//! * per discipline, protection must not *cost* goodput — and in aggregate
//!   it must win it.

use crate::scenario::{
    run_scenario, BufferDepth, QueueKind, RunMetrics, ScenarioConfig, Transport,
};
use ecn_core::ProtectionMode;
use serde::{Deserialize, Serialize};
use simevent::SimDuration;

/// The buffer depths swept, in packets. 8 packets is ~12 kB/port — the Tiny
/// Buffer TCP floor; 32 is still a third of the repo's "shallow" 100.
pub const TINY_BUFFERS: [u64; 3] = [8, 16, 32];

/// The disciplines that take a protection mode — the rows the
/// direction-of-effect gates compare across `Default` vs `AckSyn`.
pub fn modal_kinds(mode: ProtectionMode) -> [QueueKind; 5] {
    [
        QueueKind::Red(mode),
        QueueKind::CoDel(mode),
        QueueKind::CurvyRed(mode),
        QueueKind::Pie(mode),
        QueueKind::DualQ(mode),
    ]
}

/// Family label for a modal discipline, mode stripped: the gate pairs
/// `Default` and `AckSyn` cells of the same family.
fn family(queue: QueueKind) -> &'static str {
    match queue {
        QueueKind::Red(_) => "red",
        QueueKind::RedMimic(_) => "red-mimic",
        QueueKind::CoDel(_) => "codel",
        QueueKind::CurvyRed(_) => "curvy-red",
        QueueKind::Pie(_) => "pie",
        QueueKind::DualQ(_) => "dualq",
        QueueKind::DropTail => "droptail",
        QueueKind::SimpleMarking => "simple-marking",
    }
}

/// The marking target for a given buffer: the sojourn of a half-full queue,
/// so the AQM's operating point actually sits *inside* the tiny buffer. A
/// fixed 500 µs target converts to ~41 packets at 1 Gbps — deeper than the
/// whole 8-packet buffer, which would silently turn every AQM into a
/// DropTail and make the sweep measure nothing.
pub fn tiny_buffer_delay(buffer_packets: u64, cfg: &ScenarioConfig) -> SimDuration {
    let bits = buffer_packets * cfg.mean_packet_bytes as u64 * 8;
    let full_us = bits * 1_000_000 / cfg.host_link.rate_bps;
    SimDuration::from_micros((full_us / 2).max(25))
}

/// One cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TinyBufferPoint {
    /// Switch buffer depth, packets.
    pub buffer_packets: u64,
    /// The discipline under test.
    pub queue: QueueKind,
    /// Averaged metrics for the cell.
    pub metrics: RunMetrics,
}

/// The full tiny-buffer grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TinyBufferResults {
    /// Buffers outermost in [`TINY_BUFFERS`] order, then the modeless
    /// baselines (DropTail, SimpleMarking), then [`modal_kinds`] at
    /// `Default`, then at `AckSyn`.
    pub points: Vec<TinyBufferPoint>,
}

impl TinyBufferResults {
    /// Look up one cell.
    pub fn cell(&self, buffer: u64, queue: QueueKind) -> Option<&RunMetrics> {
        self.points
            .iter()
            .find(|p| p.buffer_packets == buffer && p.queue == queue)
            .map(|p| &p.metrics)
    }
}

/// Run the grid. Like the cc matrix this is a claims gate, not a sweep: it
/// pins its own scenario (the tiny incast point with the port buffer forced
/// down to each [`TINY_BUFFERS`] depth) and takes only the seed from `cfg`.
/// Classic ECN transport throughout — Reno's ACK-clock is the paper's most
/// protection-sensitive sender.
pub fn run_tiny_buffer(cfg: &ScenarioConfig) -> TinyBufferResults {
    let mut points = Vec::new();
    for &buffer in &TINY_BUFFERS {
        let mut c = ScenarioConfig::tiny();
        c.seed = cfg.seed;
        c.shallow_packets = buffer;
        // Tiny jobs on 8-packet buffers are one RTO-tail event away from a
        // goodput inversion; average harder than the figure sweeps do.
        c.seed_count = 3;
        let delay = tiny_buffer_delay(buffer, &c);
        let mut queues = vec![QueueKind::DropTail, QueueKind::SimpleMarking];
        queues.extend(modal_kinds(ProtectionMode::Default));
        queues.extend(modal_kinds(ProtectionMode::AckSyn));
        for queue in queues {
            let metrics = run_scenario(&c, Transport::TcpEcn, queue, BufferDepth::Shallow, delay);
            points.push(TinyBufferPoint {
                buffer_packets: buffer,
                queue,
                metrics,
            });
        }
    }
    TinyBufferResults { points }
}

/// The gated direction-of-effect numbers, distilled from the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TinyBufferClaims {
    /// Per modal family: goodput under `AckSyn` over goodput under
    /// `Default`, each summed across the buffer axis (family label, ratio).
    /// Protection must not cost goodput on any AQM (each ≥ 0.9) — the
    /// paper's result generalising beyond RED.
    pub protection_ratios: Vec<(String, f64)>,
    /// ACK early-drops across every `AckSyn` cell (structural; must be 0).
    pub protected_ack_drops: u64,
    /// SYN/SYN-ACK early-drops across every `AckSyn` cell (must be 0).
    pub protected_handshake_drops: u64,
    /// ACK early-drops across every `Default` cell — the pathology must
    /// still exist at tiny buffers (must be ≥ 1).
    pub default_ack_drops: u64,
    /// Every cell's job finished inside the time limit.
    pub all_completed: bool,
}

/// Distill the grid into the gated claims.
pub fn tiny_buffer_claims(res: &TinyBufferResults) -> TinyBufferClaims {
    let sum_tput = |queue: QueueKind| -> f64 {
        TINY_BUFFERS
            .iter()
            .map(|&b| {
                res.cell(b, queue)
                    .map_or(f64::NAN, |m| m.throughput_per_node_bps)
            })
            .sum()
    };
    let protection_ratios = modal_kinds(ProtectionMode::Default)
        .into_iter()
        .zip(modal_kinds(ProtectionMode::AckSyn))
        .map(|(def, prot)| {
            let d = sum_tput(def);
            let ratio = if d > 0.0 {
                sum_tput(prot) / d
            } else {
                f64::NAN
            };
            (family(def).to_string(), ratio)
        })
        .collect();
    let drops = |mode: ProtectionMode, f: fn(&RunMetrics) -> u64| -> u64 {
        res.points
            .iter()
            .filter(|p| modal_kinds(mode).contains(&p.queue))
            .map(|p| f(&p.metrics))
            .sum()
    };
    TinyBufferClaims {
        protection_ratios,
        protected_ack_drops: drops(ProtectionMode::AckSyn, |m| m.acks_early_dropped),
        protected_handshake_drops: drops(ProtectionMode::AckSyn, |m| m.handshake_early_dropped),
        default_ack_drops: drops(ProtectionMode::Default, |m| m.acks_early_dropped),
        all_completed: res.points.iter().all(|p| p.metrics.completed),
    }
}

/// Direction-of-effect gates, same philosophy as [`crate::claims::check_claims`]:
/// deliberately loose thresholds that catch a regression erasing the
/// pathology or breaking the protection result on any of the modern AQMs.
/// Returns one description per failed gate; empty means the tiny-buffer
/// claims reproduced.
pub fn check_tiny_buffer_claims(c: &TinyBufferClaims) -> Vec<String> {
    let mut failures = Vec::new();
    if c.protection_ratios.len() != modal_kinds(ProtectionMode::Default).len() {
        failures.push(format!(
            "expected one protection ratio per modal AQM, got {}",
            c.protection_ratios.len()
        ));
    }
    for (fam, ratio) in &c.protection_ratios {
        if !ratio.is_finite() || *ratio < 0.9 {
            failures.push(format!(
                "ack+syn protection must not cost goodput on {fam} at tiny buffers: \
                 expected >= 0.9 (measured {ratio:.3})"
            ));
        }
    }
    if let Some(best) = c
        .protection_ratios
        .iter()
        .map(|(_, r)| *r)
        .fold(None, |acc: Option<f64>, r| {
            Some(acc.map_or(r, |a| a.max(r)))
        })
    {
        if !best.is_finite() || best <= 1.0 {
            failures.push(format!(
                "ack+syn protection must win goodput on at least one AQM at tiny \
                 buffers: expected best ratio > 1.0 (measured {best:.3})"
            ));
        }
    }
    if c.protected_ack_drops != 0 {
        failures.push(format!(
            "ack+syn protection must never early-drop an ACK (measured {})",
            c.protected_ack_drops
        ));
    }
    if c.protected_handshake_drops != 0 {
        failures.push(format!(
            "ack+syn protection must never early-drop a SYN/SYN-ACK (measured {})",
            c.protected_handshake_drops
        ));
    }
    if c.default_ack_drops == 0 {
        failures.push(
            "stock Default policy must early-drop ACKs somewhere at tiny buffers \
             (measured 0: the comparison is vacuous)"
                .to_string(),
        );
    }
    if !c.all_completed {
        failures.push("every tiny-buffer cell must finish inside the time limit".to_string());
    }
    failures
}

/// Render the grid, one row per cell.
pub fn render_tiny_buffer(res: &TinyBufferResults) -> String {
    let mut s = String::new();
    s.push_str("== Tiny-buffer protection sweep (TCP-ECN, 8-32 pkt ports) ==\n");
    s.push_str(&format!(
        "{:<7} {:<20} {:>9} {:>11} {:>9} {:>10} {:>9}\n",
        "buffer", "queue", "tput/node", "latency-us", "ack-drop", "full-drop", "timeouts"
    ));
    for p in &res.points {
        s.push_str(&format!(
            "{:<7} {:<20} {:>7.1} M {:>11.1} {:>9} {:>10} {:>9}{}\n",
            p.buffer_packets,
            p.queue.label(),
            p.metrics.throughput_per_node_bps / 1e6,
            p.metrics.mean_latency_s * 1e6,
            p.metrics.acks_early_dropped,
            p.metrics.full_drops,
            p.metrics.timeouts,
            if p.metrics.completed { "" } else { " [DNF]" },
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(tput: f64, ack_drops: u64) -> RunMetrics {
        RunMetrics {
            runtime_s: 1.0,
            throughput_per_node_bps: tput,
            mean_latency_s: 1.0,
            p99_latency_s: 2.0,
            acks_early_dropped: ack_drops,
            handshake_early_dropped: 0,
            data_marked: 0,
            full_drops: 0,
            timeouts: 0,
            fast_retransmits: 0,
            syn_retransmits: 0,
            cc_fallbacks: 0,
            completed: true,
        }
    }

    /// Protection wins everywhere, Default drops ACKs: the healthy shape.
    fn healthy_grid() -> TinyBufferResults {
        let mut points = Vec::new();
        for &b in &TINY_BUFFERS {
            points.push(TinyBufferPoint {
                buffer_packets: b,
                queue: QueueKind::DropTail,
                metrics: metrics(90.0, 0),
            });
            points.push(TinyBufferPoint {
                buffer_packets: b,
                queue: QueueKind::SimpleMarking,
                metrics: metrics(105.0, 0),
            });
            for q in modal_kinds(ProtectionMode::Default) {
                points.push(TinyBufferPoint {
                    buffer_packets: b,
                    queue: q,
                    metrics: metrics(80.0, 7),
                });
            }
            for q in modal_kinds(ProtectionMode::AckSyn) {
                points.push(TinyBufferPoint {
                    buffer_packets: b,
                    queue: q,
                    metrics: metrics(100.0, 0),
                });
            }
        }
        TinyBufferResults { points }
    }

    #[test]
    fn delay_scales_with_buffer() {
        let cfg = ScenarioConfig::tiny();
        let d8 = tiny_buffer_delay(8, &cfg);
        let d32 = tiny_buffer_delay(32, &cfg);
        assert!(d8 < d32);
        // Half of 8 x 1526 B at 1 Gbps is ~49 us — inside the buffer.
        assert!(d8 >= SimDuration::from_micros(25));
        assert!(d8 <= SimDuration::from_micros(60), "{d8}");
    }

    #[test]
    fn healthy_grid_passes_every_gate() {
        let c = tiny_buffer_claims(&healthy_grid());
        assert_eq!(c.protection_ratios.len(), 5);
        for (fam, r) in &c.protection_ratios {
            assert!((r - 1.25).abs() < 1e-9, "{fam}: {r}");
        }
        assert_eq!(c.protected_ack_drops, 0);
        assert_eq!(c.default_ack_drops, 7 * 5 * TINY_BUFFERS.len() as u64);
        assert!(check_tiny_buffer_claims(&c).is_empty());
    }

    #[test]
    fn protection_costing_goodput_fails_its_family_gate() {
        let mut g = healthy_grid();
        for p in &mut g.points {
            if matches!(p.queue, QueueKind::Pie(ProtectionMode::AckSyn)) {
                p.metrics.throughput_per_node_bps = 50.0;
            }
        }
        let failures = check_tiny_buffer_claims(&tiny_buffer_claims(&g));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("pie"), "{failures:?}");
    }

    #[test]
    fn leaky_protection_fails_the_structural_gate() {
        let mut g = healthy_grid();
        for p in &mut g.points {
            if matches!(p.queue, QueueKind::DualQ(ProtectionMode::AckSyn)) {
                p.metrics.acks_early_dropped = 1;
            }
        }
        let failures = check_tiny_buffer_claims(&tiny_buffer_claims(&g));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("never early-drop an ACK"),
            "{failures:?}"
        );
    }

    #[test]
    fn vanished_pathology_fails_the_vacuity_gate() {
        let mut g = healthy_grid();
        for p in &mut g.points {
            p.metrics.acks_early_dropped = 0;
        }
        let failures = check_tiny_buffer_claims(&tiny_buffer_claims(&g));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("vacuous"), "{failures:?}");
    }

    #[test]
    fn missing_cells_fail() {
        let mut g = healthy_grid();
        g.points
            .retain(|p| !matches!(p.queue, QueueKind::CurvyRed(ProtectionMode::Default)));
        let failures = check_tiny_buffer_claims(&tiny_buffer_claims(&g));
        assert!(
            failures.iter().any(|f| f.contains("curvy-red")),
            "{failures:?}"
        );
    }

    #[test]
    fn render_lists_every_cell() {
        let g = healthy_grid();
        let s = render_tiny_buffer(&g);
        for p in &g.points {
            assert!(s.contains(&p.queue.label()), "{s}");
        }
        assert!(s.contains("dualq[ack+syn]"));
    }
}
