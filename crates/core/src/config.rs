//! Discipline configuration, including the paper's "target delay" axis.

use crate::ProtectionMode;
use serde::{Deserialize, Serialize};
use simevent::SimDuration;

/// Configuration for [`crate::Red`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedConfig {
    /// Physical buffer depth in packets (the paper's shallow/deep axis; RED
    /// thresholds operate *within* this).
    pub capacity_packets: u64,
    /// Lower threshold, in packets (or bytes when `byte_mode`).
    pub min_th: u64,
    /// Upper threshold, in packets (or bytes when `byte_mode`). The DCTCP
    /// paper's recommendation — which this paper's AQMs mimic — is
    /// `min_th == max_th` (a single threshold).
    pub max_th: u64,
    /// Maximum early-notification probability at `max_th` (classic RED
    /// `max_p`). With `min_th == max_th` this is irrelevant: the decision
    /// becomes deterministic above the threshold.
    pub max_p: f64,
    /// EWMA weight `w_q` for the average queue estimate. `1.0` means the
    /// instantaneous queue length is used (the configuration the "Tuning ECN"
    /// related work recommends and the paper's experiments use).
    pub ewma_weight: f64,
    /// Count thresholds in bytes instead of packets. The paper stresses that
    /// real switches use **per-packet** thresholds, which is what makes
    /// 150-byte ACKs as expensive as 1.5 kB data packets; `false` reproduces
    /// that, `true` exists for the ablation.
    pub byte_mode: bool,
    /// Mean packet size used for byte-mode threshold scaling and for the idle
    /// decay of the EWMA (classic RED `mean_pktsize`).
    pub mean_packet_bytes: u32,
    /// Whether the queue is ECN-enabled. When `false`, RED signals congestion
    /// to *everyone* by dropping (classic RED). When `true`, ECT packets are
    /// CE-marked and non-ECT packets are subject to `protection`.
    pub ecn: bool,
    /// The paper's contribution: which non-ECT packets escape early drop.
    pub protection: ProtectionMode,
    /// Gentle RED: between `max_th` and `2*max_th` the notification
    /// probability ramps from `max_p` to 1 instead of jumping to 1.
    pub gentle: bool,
}

impl RedConfig {
    /// A RED configuration derived from a **target queuing delay**, the
    /// x-axis of the paper's Figs. 2–4, the way the paper's prior work (LCN
    /// 2016) tunes switch AQMs: the thresholds straddle the queue length
    /// `K = ceil(delay * rate / (8 * mean_packet_bytes))` that induces the
    /// target delay at line rate (`min_th = K/2`, `max_th = 3K/2`), with a
    /// moderate `max_p` and EWMA averaging. The probabilistic band
    /// desynchronises flows, which classic TCP-ECN needs to hold throughput.
    pub fn from_target_delay(
        target_delay: SimDuration,
        line_rate_bps: u64,
        mean_packet_bytes: u32,
        capacity_packets: u64,
        protection: ProtectionMode,
    ) -> RedConfig {
        let k = Self::threshold_packets(target_delay, line_rate_bps, mean_packet_bytes);
        let min_th = (k / 2).max(1);
        let max_th = (k + k / 2).max(min_th + 1);
        RedConfig {
            capacity_packets,
            min_th,
            max_th,
            max_p: 0.1,
            ewma_weight: 0.25,
            byte_mode: false,
            mean_packet_bytes,
            ecn: true,
            protection,
            gentle: true,
        }
    }

    /// The DCTCP-mimicking configuration the DCTCP paper proposed for RED
    /// hardware: one threshold (`min_th == max_th == K`), instantaneous queue
    /// length, mark everything above. This is the "mimicked" marking scheme
    /// the paper contrasts with its true [`crate::SimpleMarking`].
    pub fn dctcp_mimic(
        target_delay: SimDuration,
        line_rate_bps: u64,
        mean_packet_bytes: u32,
        capacity_packets: u64,
        protection: ProtectionMode,
    ) -> RedConfig {
        let k = Self::threshold_packets(target_delay, line_rate_bps, mean_packet_bytes);
        RedConfig {
            capacity_packets,
            min_th: k,
            max_th: k,
            max_p: 1.0,
            ewma_weight: 1.0,
            byte_mode: false,
            mean_packet_bytes,
            ecn: true,
            protection,
            gentle: false,
        }
    }

    /// The DCTCP mimic as commodity switches actually deploy it: the same
    /// single threshold (`min_th == max_th == K`, mark everything above),
    /// but measured on the switch's EWMA-averaged queue — vendors' RED
    /// pipelines apply the averaging unconditionally, and the knob the DCTCP
    /// paper's recipe needs (`w = 1`, instantaneous queue) does not exist on
    /// real hardware. The lagging average smears the step into marking runs
    /// that straddle round boundaries, which is precisely the sparse classic
    /// signature a Prague sender's fall-back detector looks for; contrast
    /// [`RedConfig::dctcp_mimic`] (the textbook recipe) and
    /// [`crate::SimpleMarking`] (the true scheme).
    pub fn dctcp_mimic_deployed(
        target_delay: SimDuration,
        line_rate_bps: u64,
        mean_packet_bytes: u32,
        capacity_packets: u64,
        protection: ProtectionMode,
    ) -> RedConfig {
        RedConfig {
            // Floyd-style averaging (same as [`RedConfig::classic`]): the
            // EWMA is a property of the switch pipeline, not of the recipe.
            ewma_weight: 0.002,
            ..Self::dctcp_mimic(
                target_delay,
                line_rate_bps,
                mean_packet_bytes,
                capacity_packets,
                protection,
            )
        }
    }

    /// The threshold (in packets) corresponding to a target queuing delay.
    pub fn threshold_packets(
        target_delay: SimDuration,
        line_rate_bps: u64,
        mean_packet_bytes: u32,
    ) -> u64 {
        assert!(line_rate_bps > 0 && mean_packet_bytes > 0);
        let bits = target_delay.as_nanos() as u128 * line_rate_bps as u128 / 1_000_000_000;
        let pkts = bits / (8 * mean_packet_bytes as u128);
        (pkts as u64).max(1)
    }

    /// Classic RED defaults (Floyd & Jacobson style) for a given buffer.
    pub fn classic(capacity_packets: u64) -> RedConfig {
        RedConfig {
            capacity_packets,
            min_th: capacity_packets / 10,
            max_th: capacity_packets * 3 / 10,
            max_p: 0.1,
            ewma_weight: 0.002,
            byte_mode: false,
            mean_packet_bytes: 1000,
            ecn: false,
            protection: ProtectionMode::Default,
            gentle: true,
        }
    }

    /// Validate internal consistency; called by `Red::new`.
    pub fn validate(&self) {
        assert!(self.capacity_packets > 0, "capacity must be positive");
        assert!(self.min_th >= 1, "min_th must be at least 1");
        assert!(self.min_th <= self.max_th, "min_th must not exceed max_th");
        assert!(
            (0.0..=1.0).contains(&self.max_p),
            "max_p must be a probability, got {}",
            self.max_p
        );
        assert!(
            self.ewma_weight > 0.0 && self.ewma_weight <= 1.0,
            "ewma_weight must be in (0,1], got {}",
            self.ewma_weight
        );
        assert!(
            self.mean_packet_bytes > 0,
            "mean packet size must be positive"
        );
    }
}

/// Configuration for [`crate::SimpleMarking`] — the paper's proposal 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimpleMarkingConfig {
    /// Physical buffer depth in packets.
    pub capacity_packets: u64,
    /// Marking threshold `K` in packets, compared against the
    /// *instantaneous* queue length.
    pub threshold_packets: u64,
}

impl SimpleMarkingConfig {
    /// Derive the threshold from a target queuing delay, like
    /// [`RedConfig::from_target_delay`].
    pub fn from_target_delay(
        target_delay: SimDuration,
        line_rate_bps: u64,
        mean_packet_bytes: u32,
        capacity_packets: u64,
    ) -> SimpleMarkingConfig {
        SimpleMarkingConfig {
            capacity_packets,
            threshold_packets: RedConfig::threshold_packets(
                target_delay,
                line_rate_bps,
                mean_packet_bytes,
            ),
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) {
        assert!(self.capacity_packets > 0, "capacity must be positive");
        assert!(self.threshold_packets >= 1, "threshold must be at least 1");
    }
}

/// Configuration for [`crate::CurvyRed`] — Briscoe's "Insights from Curvy
/// RED" AQM: power-law marking on the **instantaneous** queue, no EWMA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvyRedConfig {
    /// Physical buffer depth in packets.
    pub capacity_packets: u64,
    /// Queue length (packets) at which the marking probability reaches 1.
    pub range_packets: u64,
    /// Curviness exponent `u` of the ECN marking curve:
    /// `P(mark) = (q / range)^u`. The drop curve for non-ECT traffic uses
    /// `2u` (drop probability = square of the marking probability), so drops
    /// stay rarer than marks at every operating point.
    pub mark_exponent: u32,
    /// Whether ECT packets are CE-marked (the L4S-era default). When `false`
    /// every selected packet takes the drop curve.
    pub ecn: bool,
    /// Which non-ECT packets escape the drop curve.
    pub protection: ProtectionMode,
}

impl CurvyRedConfig {
    /// Derive the curve from a target queuing delay: the marking probability
    /// hits 0.25 (`= (1/2)^u` with `u = 2`) at the queue length `K` that
    /// induces the target delay, i.e. `range = 2K`.
    pub fn from_target_delay(
        target_delay: SimDuration,
        line_rate_bps: u64,
        mean_packet_bytes: u32,
        capacity_packets: u64,
        protection: ProtectionMode,
    ) -> CurvyRedConfig {
        let k = RedConfig::threshold_packets(target_delay, line_rate_bps, mean_packet_bytes);
        CurvyRedConfig {
            capacity_packets,
            range_packets: (2 * k).max(2),
            mark_exponent: 2,
            ecn: true,
            protection,
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) {
        assert!(self.capacity_packets > 0, "capacity must be positive");
        assert!(self.range_packets >= 1, "range must be at least 1");
        assert!(
            (1..=8).contains(&self.mark_exponent),
            "mark exponent must be in 1..=8, got {}",
            self.mark_exponent
        );
    }
}

/// Configuration for [`crate::Pie`] — Proportional Integral controller
/// Enhanced (RFC 8033): latency-based AQM with departure-rate estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PieConfig {
    /// Physical buffer depth in packets.
    pub capacity_packets: u64,
    /// Target queuing delay the PI controller steers towards.
    pub target: SimDuration,
    /// Probability-update period (RFC 8033 `T_UPDATE`).
    pub t_update: SimDuration,
    /// Proportional gain on `(qdelay - target)`, in 1/s (RFC 8033 `alpha`).
    pub alpha: f64,
    /// Derivative-flavoured gain on `(qdelay - qdelay_old)`, in 1/s
    /// (RFC 8033 `beta`).
    pub beta: f64,
    /// Initial/reset burst allowance: no early action while it lasts
    /// (RFC 8033 `MAX_BURST`).
    pub max_burst: SimDuration,
    /// ECT packets are marked instead of dropped while the drop probability
    /// is at or below this (RFC 8033 `MARK_ECNTH`); above it even ECT
    /// traffic is dropped.
    pub mark_ecnth: f64,
    /// Bytes departed per departure-rate measurement cycle
    /// (RFC 8033 `DQ_THRESHOLD`).
    pub dq_threshold_bytes: u64,
    /// Whether ECT packets may be CE-marked at all.
    pub ecn: bool,
    /// Which non-ECT packets escape early drop.
    pub protection: ProtectionMode,
}

impl PieConfig {
    /// RFC 8033 gains over the paper's target-delay axis. The update period
    /// tracks the target (never below 500 µs) so the controller reacts on the
    /// timescale it is asked to control.
    ///
    /// The RFC's reference gains (`alpha` 0.125 Hz, `beta` 1.25 Hz) are tuned
    /// for its 15 ms reference target; against the paper's microsecond-scale
    /// data-centre targets the delay error shrinks by the same two orders of
    /// magnitude and the stock controller would take whole seconds to ramp —
    /// longer than a shuffle burst lives. The gains therefore scale inversely
    /// with the target (capped at 1000x), keeping the loop dynamics in units
    /// of the target delay. The departure-rate cycle (RFC `DQ_THRESHOLD`,
    /// reference 16 kB) is likewise capped at half the physical buffer so a
    /// tens-of-packets port can still complete a measurement.
    pub fn from_target_delay(
        target_delay: SimDuration,
        capacity_packets: u64,
        protection: ProtectionMode,
    ) -> PieConfig {
        let t_update = target_delay.max(SimDuration::from_micros(500));
        let scale = (SimDuration::from_millis(15).as_secs_f64() / target_delay.as_secs_f64())
            .clamp(1.0, 1000.0);
        // Half the buffer in bytes at MTU-scale packets, floored at two
        // packets: a cycle must be completable with the queue half full.
        let cap_bytes = capacity_packets.saturating_mul(1500);
        let dq_threshold_bytes = (16 * 1024).min(cap_bytes / 2).max(3000);
        PieConfig {
            capacity_packets,
            target: target_delay,
            t_update,
            alpha: 0.125 * scale,
            beta: 1.25 * scale,
            max_burst: t_update.saturating_mul(10),
            mark_ecnth: 0.1,
            dq_threshold_bytes,
            ecn: true,
            protection,
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) {
        assert!(self.capacity_packets > 0, "capacity must be positive");
        assert!(self.target > SimDuration::ZERO, "target must be positive");
        assert!(
            self.t_update > SimDuration::ZERO,
            "t_update must be positive"
        );
        assert!(
            self.alpha > 0.0 && self.beta > 0.0,
            "PI gains must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.mark_ecnth),
            "mark_ecnth must be a probability, got {}",
            self.mark_ecnth
        );
        assert!(self.dq_threshold_bytes > 0, "dq_threshold must be positive");
    }
}

/// Configuration for [`crate::DualQ`] — the L4S DualQ coupled AQM
/// (RFC 9332): a classic queue under a PI² controller and a low-latency
/// queue whose marking is coupled to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualQConfig {
    /// Physical buffer depth in packets, **shared** by both queues.
    pub capacity_packets: u64,
    /// Classic-queue delay target for the PI controller.
    pub target: SimDuration,
    /// Base-probability update period (RFC 9332 `Tupdate`).
    pub t_update: SimDuration,
    /// Proportional PI gain, in 1/s.
    pub alpha: f64,
    /// Derivative-flavoured PI gain, in 1/s.
    pub beta: f64,
    /// Coupling factor `k`: the L queue inherits `p_CL = k * p'` from the
    /// classic base probability `p'` (classic traffic sees `p_C = p'^2`).
    pub coupling: f64,
    /// L-queue step-marking threshold on the head packet's sojourn time:
    /// above it every L packet is marked (the dense signal TCP Prague needs).
    pub step_threshold: SimDuration,
    /// Time-shift the scheduler credits the L queue with (time-shifted FIFO):
    /// the L head is served unless the classic head has waited more than
    /// `t_shift` longer.
    pub t_shift: SimDuration,
    /// Which non-ECT packets escape early drop in the classic queue.
    pub protection: ProtectionMode,
}

impl DualQConfig {
    /// RFC 9332 appendix defaults scaled onto the paper's target-delay axis:
    /// step threshold a quarter of the classic target (floored at 50 µs) and
    /// a scheduler time-shift of two targets.
    ///
    /// Like [`PieConfig::from_target_delay`], the reference PI gains (0.16 Hz
    /// and 3.2 Hz, tuned for the appendix's 15 ms classic target) scale
    /// inversely with the target (capped at 1000x): at microsecond
    /// data-centre targets the raw gains would need seconds of sustained
    /// overload before `p'` leaves the noise floor.
    pub fn from_target_delay(
        target_delay: SimDuration,
        capacity_packets: u64,
        protection: ProtectionMode,
    ) -> DualQConfig {
        let scale = (SimDuration::from_millis(15).as_secs_f64() / target_delay.as_secs_f64())
            .clamp(1.0, 1000.0);
        DualQConfig {
            capacity_packets,
            target: target_delay,
            t_update: target_delay.max(SimDuration::from_micros(500)),
            alpha: 0.16 * scale,
            beta: 3.2 * scale,
            coupling: 2.0,
            step_threshold: (target_delay / 4).max(SimDuration::from_micros(50)),
            t_shift: target_delay.saturating_mul(2),
            protection,
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) {
        assert!(self.capacity_packets > 0, "capacity must be positive");
        assert!(self.target > SimDuration::ZERO, "target must be positive");
        assert!(
            self.t_update > SimDuration::ZERO,
            "t_update must be positive"
        );
        assert!(
            self.alpha > 0.0 && self.beta > 0.0,
            "PI gains must be positive"
        );
        assert!(
            self.coupling >= 1.0,
            "coupling below 1 starves the L queue, got {}",
            self.coupling
        );
        assert!(
            self.step_threshold > SimDuration::ZERO,
            "step threshold must be positive"
        );
    }
}

/// Serialisable description of any queue discipline in this crate, used by
/// topology builders and experiment configs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QdiscSpec {
    /// Plain FIFO tail-drop.
    DropTail {
        /// Buffer depth in packets.
        capacity_packets: u64,
    },
    /// RED with the embedded configuration.
    Red(RedConfig),
    /// True simple marking scheme.
    SimpleMarking(SimpleMarkingConfig),
    /// CoDel with the embedded configuration.
    CoDel(crate::CoDelConfig),
    /// Curvy RED with the embedded configuration.
    CurvyRed(CurvyRedConfig),
    /// PIE with the embedded configuration.
    Pie(PieConfig),
    /// L4S DualQ coupled AQM with the embedded configuration.
    DualQ(DualQConfig),
}

impl QdiscSpec {
    /// The buffer depth of the described queue.
    pub fn capacity_packets(&self) -> u64 {
        match self {
            QdiscSpec::DropTail { capacity_packets } => *capacity_packets,
            QdiscSpec::Red(c) => c.capacity_packets,
            QdiscSpec::SimpleMarking(c) => c.capacity_packets,
            QdiscSpec::CoDel(c) => c.capacity_packets,
            QdiscSpec::CurvyRed(c) => c.capacity_packets,
            QdiscSpec::Pie(c) => c.capacity_packets,
            QdiscSpec::DualQ(c) => c.capacity_packets,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            QdiscSpec::DropTail { .. } => "droptail".to_string(),
            QdiscSpec::Red(c) => format!("red[{}]", c.protection.label()),
            QdiscSpec::SimpleMarking(_) => "simple-marking".to_string(),
            QdiscSpec::CoDel(c) => format!("codel[{}]", c.protection.label()),
            QdiscSpec::CurvyRed(c) => format!("curvy-red[{}]", c.protection.label()),
            QdiscSpec::Pie(c) => format!("pie[{}]", c.protection.label()),
            QdiscSpec::DualQ(c) => format!("dualq[{}]", c.protection.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_from_target_delay_1gbps() {
        // 500 us at 1 Gbps = 5e5 bits = 62500 bytes; at 1500 B/pkt -> 41 pkts.
        let k = RedConfig::threshold_packets(SimDuration::from_micros(500), 1_000_000_000, 1500);
        assert_eq!(k, 41);
    }

    #[test]
    fn threshold_from_target_delay_10gbps() {
        // DCTCP's classic K=65 at 10 Gbps with 1500B packets is ~78 us.
        let k = RedConfig::threshold_packets(SimDuration::from_micros(78), 10_000_000_000, 1500);
        assert_eq!(k, 65);
    }

    #[test]
    fn threshold_clamps_to_one() {
        let k = RedConfig::threshold_packets(SimDuration::from_nanos(1), 1_000_000, 1500);
        assert_eq!(k, 1);
    }

    #[test]
    fn from_target_delay_straddles_k() {
        // 500us at 1Gbps, 1500B packets -> K = 41; band = [20, 61].
        let c = RedConfig::from_target_delay(
            SimDuration::from_micros(500),
            1_000_000_000,
            1500,
            100,
            ProtectionMode::AckSyn,
        );
        assert_eq!(c.min_th, 20);
        assert_eq!(c.max_th, 61);
        assert!(c.ecn && c.gentle);
        assert!(c.ewma_weight < 1.0, "RED averages the queue");
        assert!(!c.byte_mode, "paper: switches use per-packet thresholds");
        c.validate();
    }

    #[test]
    fn dctcp_mimic_is_single_threshold_instantaneous() {
        let c = RedConfig::dctcp_mimic(
            SimDuration::from_micros(500),
            1_000_000_000,
            1500,
            100,
            ProtectionMode::Default,
        );
        assert_eq!(c.min_th, c.max_th);
        assert_eq!(c.min_th, 41);
        assert_eq!(c.ewma_weight, 1.0);
        assert_eq!(c.max_p, 1.0);
        c.validate();
    }

    #[test]
    fn deployed_mimic_keeps_thresholds_but_averages_like_classic_red() {
        let textbook = RedConfig::dctcp_mimic(
            SimDuration::from_micros(500),
            1_000_000_000,
            1500,
            100,
            ProtectionMode::Default,
        );
        let deployed = RedConfig::dctcp_mimic_deployed(
            SimDuration::from_micros(500),
            1_000_000_000,
            1500,
            100,
            ProtectionMode::Default,
        );
        // Same single threshold as the textbook recipe...
        assert_eq!(deployed.min_th, textbook.min_th);
        assert_eq!(deployed.max_th, textbook.max_th);
        assert_eq!(deployed.max_p, 1.0);
        // ...but on the switch pipeline's non-bypassable Floyd EWMA.
        assert_eq!(deployed.ewma_weight, RedConfig::classic(100).ewma_weight);
        assert!(deployed.ewma_weight < 1.0);
        deployed.validate();
    }

    #[test]
    fn tiny_target_delay_still_valid() {
        // K clamps to 1 -> min 1, max 2.
        let c = RedConfig::from_target_delay(
            SimDuration::from_nanos(1),
            1_000_000_000,
            1500,
            100,
            ProtectionMode::Default,
        );
        assert_eq!(c.min_th, 1);
        assert_eq!(c.max_th, 2);
        c.validate();
    }

    #[test]
    fn classic_config_validates() {
        RedConfig::classic(100).validate();
        RedConfig::classic(1000).validate();
    }

    #[test]
    #[should_panic(expected = "min_th must not exceed max_th")]
    fn validate_rejects_inverted_thresholds() {
        let mut c = RedConfig::classic(100);
        c.min_th = 50;
        c.max_th = 10;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn validate_rejects_bad_max_p() {
        let mut c = RedConfig::classic(100);
        c.max_p = 1.5;
        c.validate();
    }

    #[test]
    fn simple_marking_from_target_delay() {
        let c = SimpleMarkingConfig::from_target_delay(
            SimDuration::from_micros(500),
            1_000_000_000,
            1500,
            100,
        );
        assert_eq!(c.threshold_packets, 41);
        c.validate();
    }

    #[test]
    fn spec_labels_and_capacity() {
        let d = QdiscSpec::DropTail {
            capacity_packets: 100,
        };
        assert_eq!(d.label(), "droptail");
        assert_eq!(d.capacity_packets(), 100);
        let r = QdiscSpec::Red(RedConfig::from_target_delay(
            SimDuration::from_micros(100),
            1_000_000_000,
            1500,
            100,
            ProtectionMode::EceBit,
        ));
        assert_eq!(r.label(), "red[ece-bit]");
        let s = QdiscSpec::SimpleMarking(SimpleMarkingConfig {
            capacity_packets: 100,
            threshold_packets: 10,
        });
        assert_eq!(s.label(), "simple-marking");
    }

    #[test]
    fn curvy_red_from_target_delay() {
        // K = 41 at 500 us / 1 Gbps / 1500 B -> range 82, prob 0.25 at K.
        let c = CurvyRedConfig::from_target_delay(
            SimDuration::from_micros(500),
            1_000_000_000,
            1500,
            100,
            ProtectionMode::AckSyn,
        );
        assert_eq!(c.range_packets, 82);
        assert_eq!(c.mark_exponent, 2);
        assert!(c.ecn);
        c.validate();
        assert_eq!(QdiscSpec::CurvyRed(c).label(), "curvy-red[ack+syn]");
    }

    #[test]
    fn pie_from_target_delay_tracks_target() {
        let c =
            PieConfig::from_target_delay(SimDuration::from_millis(5), 100, ProtectionMode::Default);
        assert_eq!(c.t_update, SimDuration::from_millis(5));
        assert_eq!(c.max_burst, SimDuration::from_millis(50));
        c.validate();
        // Sub-500us targets floor the update period.
        let tiny = PieConfig::from_target_delay(
            SimDuration::from_micros(100),
            100,
            ProtectionMode::Default,
        );
        assert_eq!(tiny.t_update, SimDuration::from_micros(500));
        tiny.validate();
        assert_eq!(QdiscSpec::Pie(tiny).label(), "pie[default]");
    }

    #[test]
    fn dualq_from_target_delay_scales_step_and_shift() {
        let c = DualQConfig::from_target_delay(
            SimDuration::from_micros(500),
            100,
            ProtectionMode::EceBit,
        );
        assert_eq!(c.step_threshold, SimDuration::from_micros(125));
        assert_eq!(c.t_shift, SimDuration::from_millis(1));
        assert_eq!(c.coupling, 2.0);
        c.validate();
        assert_eq!(QdiscSpec::DualQ(c.clone()).label(), "dualq[ece-bit]");
        assert_eq!(QdiscSpec::DualQ(c).capacity_packets(), 100);
    }

    #[test]
    #[should_panic(expected = "coupling")]
    fn dualq_rejects_sub_unit_coupling() {
        let mut c = DualQConfig::from_target_delay(
            SimDuration::from_micros(500),
            100,
            ProtectionMode::Default,
        );
        c.coupling = 0.5;
        c.validate();
    }

    #[test]
    fn classic_thresholds_scale_with_capacity() {
        let c = RedConfig::classic(200);
        assert_eq!(c.min_th, 20);
        assert_eq!(c.max_th, 60);
        assert!(c.gentle);
        assert!(!c.ecn);
    }
}
