#![warn(missing_docs)]

//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate that replaces NS-2's event scheduler in the
//! CLUSTER 2017 ECN/Hadoop reproduction. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time, so every
//!   run is exactly reproducible (no floating-point drift in the clock).
//! * [`EventQueue`] — a binary-heap priority queue with *stable* FIFO ordering
//!   for events scheduled at the same instant, which is required for
//!   deterministic packet ordering. Kept as the reference implementation.
//! * [`CalendarQueue`] — the fast path: a time-bucketed calendar queue with
//!   O(1)-amortised scheduling, proptest-verified to pop in exactly the same
//!   order as [`EventQueue`].
//! * [`TimerWheel`] — a hierarchical timer wheel with O(1) *physical*
//!   cancellation for the RTO-class timer population, where nearly every
//!   scheduled timer is cancelled and rearmed before it fires.
//! * [`HybridQueue`] — the production backend: plain events go to the
//!   calendar, cancellable timers to the wheel, merged under one shared
//!   sequence counter so pops stay bit-identical to a single queue.
//! * [`TimerHandle`] cancellation on every backend, so rearmed timers
//!   (TCP RTO, delayed ACK) stop ballooning the pending-event set.
//! * [`Scheduler`] — a run-to-completion driver with event accounting and a
//!   hard time limit to guard against runaway simulations; generic over the
//!   queue backend, defaulting to the calendar queue.
//! * [`SimRng`] — seedable RNG plumbing so stochastic components (e.g. RED's
//!   drop probability) are reproducible.
//! * [`TieBreak`] — the same-instant ordering policy: FIFO in production,
//!   seeded permutation under `simverify`, which re-runs pinned scenarios
//!   with permuted tie-break order to prove no result depends on it.
//!
//! # Example
//!
//! ```
//! use simevent::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_micros(5), "second");
//! q.schedule(SimTime::from_micros(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, SimTime::from_micros(1));
//! ```

mod calendar;
mod handle;
mod hybrid;
mod queue;
mod rng;
mod scheduler;
mod tiebreak;
mod time;
mod wheel;

pub use calendar::CalendarQueue;
pub use handle::TimerHandle;
pub use hybrid::HybridQueue;
pub use queue::{EventQueue, QueueBackend, ScheduledEvent};
pub use rng::SimRng;
pub use scheduler::{HeapScheduler, RunOutcome, Scheduler, SchedulerConfig, SchedulerStats};
pub use tiebreak::{pack_lane, TieBreak};
pub use time::{SimDuration, SimTime};
pub use wheel::TimerWheel;

// The experiments crate's sweep orchestrator moves whole simulations across
// worker threads, so the kernel types must stay `Send` (no `Rc`, no thread
// affinity). These compile-time assertions turn an accidental `Rc`/`RefCell`
// regression into a build error here instead of a confusing trait-bound
// failure three crates up.
#[cfg(test)]
mod thread_safety {
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn kernel_types_are_send() {
        assert_send::<EventQueue<u64>>();
        assert_send::<CalendarQueue<u64>>();
        assert_send::<TimerWheel<u64>>();
        assert_send::<HybridQueue<u64>>();
        assert_send::<TimerHandle>();
        assert_send::<SimRng>();
        assert_send::<Scheduler<u64>>();
        assert_sync::<SimTime>();
        assert_sync::<SimDuration>();
    }
}
