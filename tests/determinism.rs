//! Determinism regression: the same seed must yield the same metrics, run to
//! run and scheduler backend to scheduler backend.
//!
//! The fast-path work (calendar queue, timer cancellation, slab lookups) is
//! only admissible because it is bit-for-bit output-preserving; these tests
//! pin that property across every transport × queue combination the paper
//! sweeps.

use ecn_core::ProtectionMode;
use experiments::scenario::{run_scenario_once, BufferDepth, QueueKind, ScenarioConfig, Transport};
use hadoop_ecn::prelude::*;
use simevent::EventQueue;

fn combos() -> Vec<(Transport, QueueKind)> {
    let mut v = vec![(Transport::Tcp, QueueKind::DropTail)];
    for transport in Transport::ECN_TRANSPORTS {
        for queue in [
            QueueKind::Red(ProtectionMode::Default),
            QueueKind::Red(ProtectionMode::EceBit),
            QueueKind::Red(ProtectionMode::AckSyn),
            QueueKind::SimpleMarking,
        ] {
            v.push((transport, queue));
        }
    }
    v
}

/// Terasort twice per transport × queue combo with the same seed: metrics
/// must match exactly (not approximately — these are deterministic integer
/// event orders, so any drift is a bug).
#[test]
fn terasort_repeats_identically_per_combo() {
    let cfg = ScenarioConfig::tiny();
    for (transport, queue) in combos() {
        let delay = simevent::SimDuration::from_micros(500);
        let first = run_scenario_once(&cfg, transport, queue, BufferDepth::Shallow, delay);
        let second = run_scenario_once(&cfg, transport, queue, BufferDepth::Shallow, delay);
        assert_eq!(
            first, second,
            "same-seed repeat diverged for {transport:?} / {queue:?}"
        );
        assert!(
            first.completed,
            "{transport:?} / {queue:?} did not complete"
        );
    }
}

/// The calendar-queue default backend and the reference binary heap must pop
/// in the same order, so a full Terasort run reports identical outcomes on
/// either (including the event count — both loops use cancellation).
#[test]
fn calendar_and_heap_backends_agree_on_terasort() {
    let run = |calendar: bool| {
        let spec = ClusterSpec {
            racks: 2,
            hosts_per_rack: 3,
            host_link: LinkSpec::gbps(1, 5),
            uplink: LinkSpec::gbps(10, 5),
            switch_qdisc: QdiscSpec::SimpleMarking(SimpleMarkingConfig {
                capacity_packets: 100,
                threshold_packets: 20,
            }),
            host_buffer_packets: 2000,
            seed: 99,
        };
        let n = spec.total_hosts();
        let job = JobSpec::small(600_000, TcpConfig::with_ecn(EcnMode::Dctcp));
        let net = Network::new(spec);
        let app = TerasortJob::new(job, n);
        let mut sim = Simulation::new(net, app);
        let report = if calendar {
            sim.run()
        } else {
            sim.run_with_backend::<EventQueue<netsim::Event>>()
        };
        (
            report.events,
            report.end_time,
            sim.app.result(),
            sim.net.total_bytes_received(),
            sim.net.port_stats().total.marked.total(),
        )
    };
    assert_eq!(run(true), run(false));
}
