//! Run-to-completion simulation driver.

use crate::calendar::CalendarQueue;
use crate::handle::TimerHandle;
use crate::queue::{EventQueue, QueueBackend};
use crate::tiebreak::TieBreak;
use crate::time::SimTime;
use std::marker::PhantomData;

/// Limits and knobs for a simulation run.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Hard wall on simulated time; events beyond it are not processed.
    pub time_limit: SimTime,
    /// Hard wall on the number of events processed; guards against livelock.
    pub event_limit: u64,
    /// Same-instant ordering policy. [`TieBreak::Fifo`] is the production
    /// default; `simverify` runs [`TieBreak::Permuted`] to prove results do
    /// not depend on same-timestamp tie-break order.
    pub tie_break: TieBreak,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            time_limit: SimTime::from_secs(3_600),
            event_limit: u64::MAX,
            tie_break: TieBreak::Fifo,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained: the simulation reached a natural quiescent end.
    Drained,
    /// The configured simulated-time limit was reached.
    TimeLimit,
    /// The configured event-count limit was reached.
    EventLimit,
    /// The handler requested an early stop (e.g. the measured job finished).
    Stopped,
}

/// Counters describing a finished run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Events processed.
    pub events_processed: u64,
    /// Simulated instant of the last processed event.
    pub end_time: SimTime,
}

/// The simulation driver: owns the clock and the event queue and hands each
/// event to a caller-supplied handler.
///
/// The handler receives `(&mut Scheduler, SimTime, E)` and may schedule further
/// events; returning `false` stops the run.
///
/// Generic over the queue backend `Q`: the default is the O(1)-amortised
/// [`CalendarQueue`]; [`HeapScheduler`] pins the reference [`EventQueue`] for
/// benchmarking the two against each other. Both backends pop in exactly the
/// same order, so the choice never affects simulation results.
#[derive(Debug)]
pub struct Scheduler<E, Q: QueueBackend<E> = CalendarQueue<E>> {
    queue: Q,
    now: SimTime,
    config: SchedulerConfig,
    peak_pending: usize,
    _events: PhantomData<fn() -> E>,
}

/// A [`Scheduler`] driven by the reference binary-heap [`EventQueue`].
pub type HeapScheduler<E> = Scheduler<E, EventQueue<E>>;

impl<E, Q: QueueBackend<E>> Default for Scheduler<E, Q> {
    fn default() -> Self {
        Self::new(SchedulerConfig::default())
    }
}

impl<E, Q: QueueBackend<E>> Scheduler<E, Q> {
    /// A scheduler with the given limits, clock at t=0.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            queue: Q::with_tie_break(config.tie_break),
            now: SimTime::ZERO,
            config,
            peak_pending: 0,
            _events: PhantomData,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Panics if `at` is in the simulated past — such an event would silently
    /// corrupt causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.schedule_at_in_lane(at, 0, event);
    }

    /// Like [`schedule_at`](Self::schedule_at), tagging the event with the
    /// lane (handling entity) used by [`TieBreak::Permuted`] same-instant
    /// ordering; ignored under the default FIFO policy.
    pub fn schedule_at_in_lane(&mut self, at: SimTime, lane: u64, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.queue.schedule_in_lane(at, lane, event);
        self.note_pending();
    }

    /// Schedule `event` after a delay from the current instant.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, event: E) {
        let at = self.now + delay;
        self.queue.schedule(at, event);
        self.note_pending();
    }

    /// Like [`schedule_at`](Self::schedule_at), but the returned handle can
    /// cancel the event before it fires — the tool rearming timers (TCP RTO,
    /// delayed ACK) need so superseded deadlines stop accumulating.
    pub fn schedule_cancellable_at(&mut self, at: SimTime, event: E) -> TimerHandle {
        self.schedule_cancellable_at_in_lane(at, 0, event)
    }

    /// Cancellable scheduling with an explicit lane (see
    /// [`schedule_at_in_lane`](Self::schedule_at_in_lane)).
    pub fn schedule_cancellable_at_in_lane(
        &mut self,
        at: SimTime,
        lane: u64,
        event: E,
    ) -> TimerHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let h = self.queue.schedule_cancellable_in_lane(at, lane, event);
        self.note_pending();
        h
    }

    /// Cancel a pending event. Returns `false` (harmlessly) if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of pending live events over the run so far.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Release excess queue capacity after a burst and re-arm the
    /// pending-event high-water mark from the *live* pending count.
    ///
    /// Without the re-arm, a scheduler reused across bursts (as the sweep
    /// harness does between points) keeps reporting the stale all-time peak
    /// even though the burst's storage — including any cancelled tombstones
    /// the queue compacts here — is gone.
    pub fn shrink_to_fit(&mut self) {
        self.queue.shrink_to_fit();
        self.peak_pending = self.queue.len();
    }

    #[inline]
    fn note_pending(&mut self) {
        self.peak_pending = self.peak_pending.max(self.queue.len());
    }

    /// Run until the queue drains, a limit is hit, or the handler returns `false`.
    pub fn run<F>(&mut self, mut handler: F) -> (RunOutcome, SchedulerStats)
    where
        F: FnMut(&mut Scheduler<E, Q>, SimTime, E) -> bool,
    {
        let mut stats = SchedulerStats {
            events_processed: 0,
            end_time: self.now,
        };
        loop {
            if stats.events_processed >= self.config.event_limit {
                return (RunOutcome::EventLimit, stats);
            }
            let Some((at, event)) = self.queue.pop() else {
                return (RunOutcome::Drained, stats);
            };
            if at > self.config.time_limit {
                // Put nothing back: past the horizon the run is over.
                self.now = self.config.time_limit;
                stats.end_time = self.now;
                return (RunOutcome::TimeLimit, stats);
            }
            debug_assert!(at >= self.now, "event queue yielded out-of-order event");
            self.now = at;
            stats.events_processed += 1;
            stats.end_time = at;
            if !handler(self, at, event) {
                return (RunOutcome::Stopped, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn drains_and_counts() {
        let mut s: Scheduler<u32> = Scheduler::default();
        for i in 0..5 {
            s.schedule_at(SimTime::from_micros(i), i as u32);
        }
        let mut seen = Vec::new();
        let (outcome, stats) = s.run(|_, _, e| {
            seen.push(e);
            true
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(stats.events_processed, 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.end_time, SimTime::from_micros(4));
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut s: Scheduler<u64> = Scheduler::default();
        s.schedule_at(SimTime::from_nanos(1), 0);
        let (outcome, stats) = s.run(|sched, now, gen| {
            if gen < 10 {
                sched.schedule_at(now + SimDuration::from_nanos(1), gen + 1);
            }
            true
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(stats.events_processed, 11);
    }

    #[test]
    fn stops_on_false() {
        let mut s: Scheduler<u32> = Scheduler::default();
        for i in 0..100 {
            s.schedule_at(SimTime::from_nanos(i), i as u32);
        }
        let (outcome, stats) = s.run(|_, _, e| e < 10);
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(stats.events_processed, 11);
    }

    #[test]
    fn respects_time_limit() {
        let mut s: Scheduler<()> = Scheduler::new(SchedulerConfig {
            time_limit: SimTime::from_micros(10),
            ..SchedulerConfig::default()
        });
        s.schedule_at(SimTime::from_micros(5), ());
        s.schedule_at(SimTime::from_micros(50), ());
        let (outcome, stats) = s.run(|_, _, _| true);
        assert_eq!(outcome, RunOutcome::TimeLimit);
        assert_eq!(stats.events_processed, 1);
        assert_eq!(s.now(), SimTime::from_micros(10));
    }

    #[test]
    fn respects_event_limit() {
        let mut s: Scheduler<()> = Scheduler::new(SchedulerConfig {
            time_limit: SimTime::MAX,
            event_limit: 3,
            ..SchedulerConfig::default()
        });
        for i in 0..10 {
            s.schedule_at(SimTime::from_nanos(i), ());
        }
        let (outcome, stats) = s.run(|_, _, _| true);
        assert_eq!(outcome, RunOutcome::EventLimit);
        assert_eq!(stats.events_processed, 3);
    }

    #[test]
    fn shrink_to_fit_rearms_peak_pending() {
        // Regression: after a burst of rearmed (cancelled) timers drains,
        // shrink_to_fit must both compact the queue and reset the high-water
        // mark, or the next burst reports the stale peak.
        let mut s: HeapScheduler<u32> = Scheduler::default();
        let mut handles = Vec::new();
        for i in 0..512u64 {
            handles.push(s.schedule_cancellable_at(SimTime::from_nanos(100 + i), 0));
        }
        for h in handles {
            assert!(s.cancel(h));
        }
        assert_eq!(s.peak_pending(), 512, "burst peak recorded");
        assert_eq!(s.pending(), 0);
        s.shrink_to_fit();
        assert_eq!(s.peak_pending(), 0, "peak re-armed from live count");
        // The next, smaller burst reports its own peak, not the stale one.
        s.schedule_at(SimTime::from_nanos(1000), 1);
        s.schedule_at(SimTime::from_nanos(1001), 2);
        assert_eq!(s.peak_pending(), 2);
        let (outcome, stats) = s.run(|_, _, _| true);
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(stats.events_processed, 2);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut s: Scheduler<()> = Scheduler::default();
        s.schedule_at(SimTime::from_micros(10), ());
        s.run(|sched, _, _| {
            sched.schedule_at(SimTime::from_micros(1), ());
            true
        });
    }

    #[test]
    fn clock_is_monotone() {
        let mut s: Scheduler<u64> = Scheduler::default();
        for i in [7u64, 3, 9, 1, 4] {
            s.schedule_at(SimTime::from_nanos(i), i);
        }
        let mut last = SimTime::ZERO;
        s.run(|_, now, _| {
            assert!(now >= last);
            last = now;
            true
        });
    }
}
