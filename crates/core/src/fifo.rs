//! Shared FIFO backing store for all disciplines.

use netpacket::Packet;
use std::collections::VecDeque;

/// A FIFO of packets with byte accounting, used as the backing store of every
/// discipline in this crate.
#[derive(Debug, Default)]
pub(crate) struct Fifo {
    queue: VecDeque<Packet>,
    bytes: u64,
}

impl Fifo {
    pub(crate) fn new() -> Self {
        Fifo {
            queue: VecDeque::new(),
            bytes: 0,
        }
    }

    pub(crate) fn push(&mut self, p: Packet) {
        self.bytes += p.wire_bytes() as u64;
        self.queue.push_back(p);
    }

    pub(crate) fn pop(&mut self) -> Option<Packet> {
        let p = self.queue.pop_front()?;
        debug_assert!(self.bytes >= p.wire_bytes() as u64);
        self.bytes -= p.wire_bytes() as u64;
        Some(p)
    }

    pub(crate) fn len(&self) -> u64 {
        self.queue.len() as u64
    }

    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterate the resident packets head-to-tail (for queue snapshots).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpacket::{EcnCodepoint, FlowId, NodeId, PacketId, TcpFlags};
    use simevent::SimTime;

    fn pkt(id: u64, payload: u32) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload,
            flags: TcpFlags::ACK,
            ecn: EcnCodepoint::NotEct,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn fifo_order_and_bytes() {
        let mut f = Fifo::new();
        assert!(f.is_empty());
        f.push(pkt(1, 1460));
        f.push(pkt(2, 0));
        assert_eq!(f.len(), 2);
        assert_eq!(
            f.bytes(),
            (1460 + netpacket::TCP_HEADER_BYTES + Packet::ACK_BYTES) as u64
        );
        assert_eq!(f.pop().unwrap().id, PacketId(1));
        assert_eq!(f.pop().unwrap().id, PacketId(2));
        assert!(f.pop().is_none());
        assert_eq!(f.bytes(), 0);
    }

    #[test]
    fn iter_is_head_to_tail() {
        let mut f = Fifo::new();
        for i in 0..5 {
            f.push(pkt(i, 100));
        }
        let ids: Vec<u64> = f.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
