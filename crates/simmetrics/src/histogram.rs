//! Streaming latency histogram.

use serde::{Deserialize, Serialize};
use simevent::SimDuration;

/// Number of logarithmic buckets: bucket `i` covers `[2^i, 2^(i+1))` ns,
/// so 64 buckets span the whole `u64` nanosecond range.
const BUCKETS: usize = 64;

/// A log-bucketed histogram of durations with exact mean/min/max tracking.
///
/// Means are exact (sum/count); quantiles are bucket-resolution (≤ 2×
/// relative error), which is ample for reproducing the paper's normalised
/// latency plots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        // 0 ns lands in bucket 0.
        (63 - ns.max(1).leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
    }

    /// Smallest recorded sample, or zero when empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Approximate quantile (`q` in `[0,1]`), at bucket resolution: returns
    /// the upper bound of the bucket containing the q-th sample.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return SimDuration::from_nanos(upper.min(self.max_ns).max(self.min_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Interpolated quantile (`q` in `[0,1]`).
    ///
    /// Unlike [`LatencyHistogram::quantile`], which returns the upper bound
    /// of the bucket containing the q-th sample (a step function with ≤ 2×
    /// relative error), this spreads each bucket's samples uniformly across
    /// the bucket's span and interpolates linearly between the continuous
    /// rank's neighbours — the "linear" percentile definition, at bucket
    /// resolution. The result is clamped to `[min, max]`, so a single-sample
    /// histogram returns that sample exactly and `percentile(0.0)` /
    /// `percentile(1.0)` are exactly `min` / `max`.
    pub fn percentile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0,1]");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        // The extreme ranks are tracked exactly; everything between is
        // bucket-resolution.
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max();
        }
        // Continuous zero-based rank; value(k) for an integer rank k places
        // bucket i's samples evenly inside [lower(i), upper(i)).
        let rank = q * (self.count - 1) as f64;
        let lo = (rank.floor() as u64).min(self.count - 1);
        let hi = (rank.ceil() as u64).min(self.count - 1);
        let frac = rank - lo as f64;
        let v_lo = self.value_at_rank(lo);
        let v_hi = self.value_at_rank(hi);
        let v = v_lo + (v_hi - v_lo) * frac;
        SimDuration::from_nanos((v.round() as u64).clamp(self.min_ns, self.max_ns))
    }

    /// Position of the zero-based integer rank `k` inside its bucket,
    /// interpolated across the bucket's span. `k` must be `< count`.
    fn value_at_rank(&self, k: u64) -> f64 {
        debug_assert!(k < self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if k < seen + c {
                let lower = if i == 0 { 0u64 } else { 1u64 << i };
                let upper = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                let within = (k - seen) as f64 + 0.5;
                return lower as f64 + (upper - lower) as f64 * (within / c as f64);
            }
            seen += c;
        }
        self.max_ns as f64
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        if other.count > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(10));
        h.record(SimDuration::from_micros(20));
        h.record(SimDuration::from_micros(30));
        assert_eq!(h.mean(), SimDuration::from_micros(20));
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), SimDuration::from_micros(10));
        assert_eq!(h.max(), SimDuration::from_micros(30));
    }

    #[test]
    fn quantile_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(SimDuration::from_micros(10));
        }
        h.record(SimDuration::from_millis(10));
        let p50 = h.quantile(0.5).as_nanos() as f64;
        assert!((10_000.0..20_000.0).contains(&p50), "p50 = {p50}");
        let p999 = h.quantile(0.999).as_nanos();
        assert!(p999 >= 8_000_000, "p999 = {p999}");
    }

    #[test]
    fn quantile_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            assert!(h.quantile(w[0]) <= h.quantile(w[1]));
        }
    }

    #[test]
    fn zero_duration_sample() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), SimDuration::ZERO);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimDuration::from_micros(20));
        assert_eq!(a.max(), SimDuration::from_micros(30));
        assert_eq!(a.min(), SimDuration::from_micros(10));
    }

    #[test]
    fn percentile_empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.0), SimDuration::ZERO);
        assert_eq!(h.percentile(0.5), SimDuration::ZERO);
        assert_eq!(h.percentile(1.0), SimDuration::ZERO);
    }

    #[test]
    fn percentile_single_sample_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(123));
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(
                h.percentile(q),
                SimDuration::from_micros(123),
                "q = {q}: clamped to the only sample"
            );
        }
    }

    #[test]
    fn percentile_bucket_boundary_samples() {
        // Samples exactly on bucket boundaries: 2^10 ns opens bucket 10 and
        // 2^11 ns opens bucket 11. The interpolated value must stay within
        // [min, max] and straddle the boundary monotonically.
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(1 << 10));
        h.record(SimDuration::from_nanos(1 << 11));
        assert_eq!(h.percentile(0.0), SimDuration::from_nanos(1 << 10));
        assert_eq!(h.percentile(1.0), SimDuration::from_nanos(1 << 11));
        let mid = h.percentile(0.5).as_nanos();
        assert!(
            (1 << 10..=1 << 11).contains(&mid),
            "median between the two boundary samples: {mid}"
        );
    }

    #[test]
    fn percentile_is_monotone_and_clamped() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            assert!(h.percentile(w[0]) <= h.percentile(w[1]));
        }
        assert_eq!(h.percentile(0.0), h.min());
        assert_eq!(h.percentile(1.0), h.max());
        // Interpolation stays within one bucket (≤ 2×) of the exact p50.
        let p50 = h.percentile(0.5).as_micros_f64();
        assert!((250.0..=1000.0).contains(&p50), "p50 = {p50} us");
    }

    #[test]
    fn percentile_refines_quantile() {
        // All mass in one bucket: quantile() returns the bucket's upper
        // bound, percentile() interpolates inside it — never coarser.
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(SimDuration::from_nanos(1500)); // bucket [1024, 2048)
        }
        assert_eq!(h.percentile(0.5), SimDuration::from_nanos(1500));
        assert!(h.percentile(0.5) <= h.quantile(0.5));
    }

    #[test]
    fn percentile_duplicates_collapse_to_value() {
        // Every sample identical: the [min, max] clamp pins every percentile
        // to the duplicated value, whatever the in-bucket interpolation says.
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(SimDuration::from_micros(333));
        }
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(h.percentile(q), SimDuration::from_micros(333), "q = {q}");
        }
        assert_eq!(h.mean(), SimDuration::from_micros(333));
    }

    #[test]
    fn merge_with_empty_keeps_minmax() {
        let mut a = LatencyHistogram::new();
        a.record(SimDuration::from_micros(5));
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.min(), SimDuration::from_micros(5));
        assert_eq!(a.count(), 1);
    }
}
