//! IP-header ECN codepoints — paper Table II.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two-bit ECN field of the IP header (RFC 3168), exactly the paper's
/// Table II:
///
/// | bits | name    | description                 |
/// |------|---------|-----------------------------|
/// | `00` | Non-ECT | Non ECN-Capable Transport   |
/// | `10` | ECT(0)  | ECN Capable Transport       |
/// | `01` | ECT(1)  | ECN Capable Transport       |
/// | `11` | CE      | Congestion Encountered      |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EcnCodepoint {
    /// `00` — the transport does not understand ECN; congestion must be
    /// signalled to it by dropping. Pure ACKs, SYN and SYN-ACK are sent with
    /// this codepoint even on ECN-enabled connections — the crux of the paper.
    #[default]
    NotEct,
    /// `10` — ECN-capable transport, variant 0 (the one TCP actually sends).
    Ect0,
    /// `01` — ECN-capable transport, variant 1.
    Ect1,
    /// `11` — set by a switch/router in place of ECT when it wants to signal
    /// congestion instead of dropping.
    Ce,
}

impl EcnCodepoint {
    /// True for `ECT(0)`, `ECT(1)` and `CE`: the packet belongs to an
    /// ECN-capable transport and may be marked rather than dropped.
    ///
    /// `CE` counts as ECN-capable because a packet already marked upstream
    /// must obviously not be early-dropped by the next AQM.
    pub fn is_ect(self) -> bool {
        !matches!(self, EcnCodepoint::NotEct)
    }

    /// True only for the `CE` codepoint.
    pub fn is_ce(self) -> bool {
        matches!(self, EcnCodepoint::Ce)
    }

    /// True for `ECT(1)` and `CE`: the L4S identifier (RFC 9331). A DualQ
    /// coupled AQM classifies these packets into its low-latency queue; `CE`
    /// is included because a packet marked upstream must keep riding the L
    /// queue (re-ordering it into the classic queue would defeat L4S).
    pub fn is_l4s(self) -> bool {
        matches!(self, EcnCodepoint::Ect1 | EcnCodepoint::Ce)
    }

    /// The result of a switch marking this packet: ECT(0)/ECT(1) become CE;
    /// CE stays CE. Marking a Non-ECT packet is a protocol violation and
    /// panics (AQMs must check [`EcnCodepoint::is_ect`] first).
    pub fn marked(self) -> EcnCodepoint {
        match self {
            EcnCodepoint::Ect0 | EcnCodepoint::Ect1 | EcnCodepoint::Ce => EcnCodepoint::Ce,
            EcnCodepoint::NotEct => panic!("cannot CE-mark a Non-ECT packet"),
        }
    }

    /// The raw two-bit field value as transmitted (paper Table II 'Codepoint'
    /// column: Non-ECT=0b00, ECT(0)=0b10, ECT(1)=0b01, CE=0b11).
    pub fn bits(self) -> u8 {
        match self {
            EcnCodepoint::NotEct => 0b00,
            EcnCodepoint::Ect0 => 0b10,
            EcnCodepoint::Ect1 => 0b01,
            EcnCodepoint::Ce => 0b11,
        }
    }

    /// Parse the two-bit field. Values above `0b11` return `None`.
    pub fn from_bits(bits: u8) -> Option<EcnCodepoint> {
        match bits {
            0b00 => Some(EcnCodepoint::NotEct),
            0b10 => Some(EcnCodepoint::Ect0),
            0b01 => Some(EcnCodepoint::Ect1),
            0b11 => Some(EcnCodepoint::Ce),
            _ => None,
        }
    }
}

impl fmt::Display for EcnCodepoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EcnCodepoint::NotEct => "Non-ECT",
            EcnCodepoint::Ect0 => "ECT(0)",
            EcnCodepoint::Ect1 => "ECT(1)",
            EcnCodepoint::Ce => "CE",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table II, row by row.
    #[test]
    fn table2_codepoint_bits() {
        assert_eq!(EcnCodepoint::NotEct.bits(), 0b00);
        assert_eq!(EcnCodepoint::Ect0.bits(), 0b10);
        assert_eq!(EcnCodepoint::Ect1.bits(), 0b01);
        assert_eq!(EcnCodepoint::Ce.bits(), 0b11);
    }

    #[test]
    fn table2_roundtrip() {
        for cp in [
            EcnCodepoint::NotEct,
            EcnCodepoint::Ect0,
            EcnCodepoint::Ect1,
            EcnCodepoint::Ce,
        ] {
            assert_eq!(EcnCodepoint::from_bits(cp.bits()), Some(cp));
        }
        assert_eq!(EcnCodepoint::from_bits(0b100), None);
    }

    #[test]
    fn ect_classification() {
        assert!(!EcnCodepoint::NotEct.is_ect());
        assert!(EcnCodepoint::Ect0.is_ect());
        assert!(EcnCodepoint::Ect1.is_ect());
        assert!(EcnCodepoint::Ce.is_ect());
        assert!(EcnCodepoint::Ce.is_ce());
        assert!(!EcnCodepoint::Ect0.is_ce());
    }

    #[test]
    fn l4s_identifier_is_ect1_or_ce() {
        assert!(!EcnCodepoint::NotEct.is_l4s());
        assert!(!EcnCodepoint::Ect0.is_l4s());
        assert!(EcnCodepoint::Ect1.is_l4s());
        assert!(EcnCodepoint::Ce.is_l4s());
    }

    #[test]
    fn marking_sets_ce() {
        assert_eq!(EcnCodepoint::Ect0.marked(), EcnCodepoint::Ce);
        assert_eq!(EcnCodepoint::Ect1.marked(), EcnCodepoint::Ce);
        assert_eq!(EcnCodepoint::Ce.marked(), EcnCodepoint::Ce);
    }

    #[test]
    #[should_panic(expected = "Non-ECT")]
    fn marking_non_ect_panics() {
        let _ = EcnCodepoint::NotEct.marked();
    }

    #[test]
    fn default_is_not_ect() {
        assert_eq!(EcnCodepoint::default(), EcnCodepoint::NotEct);
    }

    #[test]
    fn display_names_match_table2() {
        assert_eq!(EcnCodepoint::NotEct.to_string(), "Non-ECT");
        assert_eq!(EcnCodepoint::Ect0.to_string(), "ECT(0)");
        assert_eq!(EcnCodepoint::Ect1.to_string(), "ECT(1)");
        assert_eq!(EcnCodepoint::Ce.to_string(), "CE");
    }
}
