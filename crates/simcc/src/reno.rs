//! NewReno: the classic loss-based controller (RFC 5681 growth, RFC 6582
//! recovery mechanics, RFC 3168 ECE response). This is the pre-refactor
//! hardwired classic-TCP path, expression for expression.

use crate::{CcAlg, CcParams, CongestionController, Window};

/// NewReno per-flow state: just the window pair.
#[derive(Debug, Clone, Copy)]
pub struct Reno {
    w: Window,
}

impl Reno {
    /// Fresh state at the initial window.
    pub fn new(p: &CcParams) -> Reno {
        Reno { w: Window::new(p) }
    }
}

impl CongestionController for Reno {
    fn alg(&self) -> CcAlg {
        CcAlg::Reno
    }
    fn cwnd(&self) -> f64 {
        self.w.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.w.ssthresh
    }
    fn on_ack(&mut self, p: &CcParams, newly: u64, _now_ns: u64) {
        self.w.reno_ack(p, newly);
    }
    fn on_ece(&mut self, p: &CcParams) -> bool {
        self.w.reno_ece(p);
        true
    }
    fn on_loss(&mut self, p: &CcParams, flight: u64) {
        self.w.reno_loss(p, flight);
    }
    fn on_partial_ack(&mut self, p: &CcParams, newly: u64) {
        self.w.partial_ack(p, newly);
    }
    fn on_recovery_dupack(&mut self, p: &CcParams) {
        self.w.cwnd += p.mss;
    }
    fn undo_recovery_dupack(&mut self, p: &CcParams) {
        self.w.cwnd -= p.mss;
    }
    fn on_recovery_exit(&mut self, _p: &CcParams) {
        self.w.cwnd = self.w.ssthresh;
    }
    fn on_rto(&mut self, p: &CcParams, flight: u64) {
        self.w.rto(p, flight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_params;

    #[test]
    fn growth_matches_pre_refactor_arithmetic() {
        let p = test_params();
        let mut r = Reno::new(&p);
        // Slow start: += min(mss, newly), exactly.
        r.on_ack(&p, 2920, 0);
        assert_eq!(r.cwnd().to_bits(), (2.0f64 * 1460.0 + 1460.0).to_bits());
        r.on_ack(&p, 100, 0);
        assert_eq!(r.cwnd().to_bits(), (3.0f64 * 1460.0 + 100.0).to_bits());
        // Congestion avoidance: += mss*mss/cwnd, exactly.
        let mut c = Reno::new(&p);
        c.w.ssthresh = c.w.cwnd;
        let before = c.cwnd();
        c.on_ack(&p, 1460, 0);
        assert_eq!(
            c.cwnd().to_bits(),
            (before + 1460.0 * 1460.0 / before).to_bits()
        );
    }

    #[test]
    fn ece_halves_with_two_mss_floor() {
        let p = test_params();
        let mut r = Reno::new(&p);
        assert!(r.on_ece(&p));
        assert_eq!(r.cwnd(), 2.0 * p.mss, "floor binds at the initial window");
        assert_eq!(r.ssthresh(), r.cwnd());
    }

    #[test]
    fn rto_collapses_to_one_mss() {
        let p = test_params();
        let mut r = Reno::new(&p);
        r.on_rto(&p, 10 * 1460);
        assert_eq!(r.cwnd(), p.mss);
        assert_eq!(r.ssthresh(), 5.0 * 1460.0);
    }
}
