//! Offline stand-in for `rayon`.
//!
//! Implements the two entry points this workspace uses — [`join`] and
//! `Vec::into_par_iter().map(..).collect()` — on top of `std::thread::scope`.
//! Work is split into one contiguous chunk per available core and results are
//! reassembled in input order, so `collect` is deterministic regardless of
//! scheduling. On a single-core host everything degrades to the sequential
//! path with no thread spawns.

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if threads_available() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

fn threads_available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Conversion into a "parallel" iterator (the subset: owned `Vec`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Begin a parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Head of a parallel pipeline over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` (applied on worker threads).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel pipeline; terminate with [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Evaluate the pipeline and collect results **in input order**.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        let n_threads = threads_available().min(self.items.len().max(1));
        if n_threads <= 1 {
            let f = self.f;
            return self.items.into_iter().map(f).collect();
        }
        let len = self.items.len();
        let chunk_size = len.div_ceil(n_threads);
        let f = &self.f;
        let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(n_threads);
        let mut items = self.items;
        let mut start = len;
        // Peel chunks off the tail so each drain is O(chunk).
        while start > 0 {
            let lo = start.saturating_sub(chunk_size);
            chunks.push((lo, items.drain(lo..).collect()));
            start = lo;
        }
        let mut parts: Vec<(usize, Vec<U>)> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(lo, chunk)| {
                    s.spawn(move || (lo, chunk.into_iter().map(f).collect::<Vec<U>>()))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon worker panicked"))
                .collect()
        });
        parts.sort_by_key(|(lo, _)| *lo);
        parts.into_iter().flat_map(|(_, part)| part).collect()
    }
}

/// `use rayon::prelude::*;` surface.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.clone().into_par_iter().map(|x| x * 3).collect();
        assert_eq!(ys, xs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let ys: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(ys.is_empty());
    }
}
