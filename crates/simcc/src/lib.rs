//! Pluggable congestion control for `tcpstack`.
//!
//! The [`CongestionController`] trait factors every window decision the
//! sender makes — ACK growth, ECE/CE response, loss and RTO reactions, the
//! NewReno recovery mechanics, RTT samples — into hooks, modeled on
//! s2n-quic's `recovery::congestion_controller`. The sender owns sequence
//! state (snd_una/snd_nxt, dupack counting, the once-per-window CWR guard,
//! SACK scoreboard); controllers own the window itself.
//!
//! Determinism contract: controllers are pure functions of their hook inputs
//! — no clocks, no randomness, no allocation. All per-flow state is `Copy`
//! and lives inline in the sender ([`Cc`] is an enum, not a `Box<dyn>`):
//! [`Reno`] and [`Dctcp`] stay within the ~64-byte hot-state budget the
//! struct-of-arrays host layout was built around, and the richer controllers
//! ([`Cubic`], [`Bbr`], [`Prague`]) are bounded at 160 bytes (asserted in
//! tests).
//!
//! Times are plain u64 nanoseconds so the crate has no dependency on the
//! simulation kernel; `tcpstack` converts at the call boundary.

mod bbr;
mod cubic;
mod dctcp;
mod prague;
mod reno;

pub use bbr::{Bbr, BbrPhase};
pub use cubic::Cubic;
pub use dctcp::Dctcp;
pub use prague::Prague;
pub use reno::Reno;

use serde::{Deserialize, Serialize};

/// Why a `CwndChange` trace event fired — the compact reason code carried in
/// the event's `c` field (low byte; the controller id sits in bits 8..16,
/// see [`cwnd_change_tag`]).
pub const REASON_ACK: u64 = 0;
/// Window moved by loss detection or NewReno recovery mechanics.
pub const REASON_LOSS: u64 = 1;
/// Window reduced in response to ECN feedback (ECE / CE marks).
pub const REASON_ECE: u64 = 2;
/// Window collapsed by a retransmission timeout.
pub const REASON_RTO: u64 = 3;
/// Controller reduced the window voluntarily (e.g. BBR Drain/ProbeRTT), not
/// in response to a congestion signal.
pub const REASON_APP_LIMITED: u64 = 4;

/// Encode the `c` field of a `CwndChange` trace event: controller id in bits
/// 8..16, reason code in bits 0..8.
pub fn cwnd_change_tag(alg: CcAlg, reason: u64) -> u64 {
    (alg.id() << 8) | (reason & 0xff)
}

/// The selectable congestion-control algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CcAlg {
    /// NewReno (RFC 5681/6582): the pre-refactor classic-TCP path.
    Reno,
    /// DCTCP (RFC 8257): alpha-scaled multiplicative decrease on CE marks.
    Dctcp,
    /// CUBIC (RFC 8312): cubic window growth with fast convergence and
    /// hybrid slow start.
    Cubic,
    /// BBR v1-style: windowed max-bandwidth / min-RTT model with the
    /// Startup/Drain/ProbeBW/ProbeRTT state machine (window-limited).
    Bbr,
    /// TCP Prague-style: DCTCP CE response + RTT-independence scaling, with
    /// Briscoe/Ahmed classic-ECN-AQM detection falling back to a Reno-like
    /// response.
    Prague,
}

impl CcAlg {
    /// Every controller, in id order.
    pub const ALL: [CcAlg; 5] = [
        CcAlg::Reno,
        CcAlg::Dctcp,
        CcAlg::Cubic,
        CcAlg::Bbr,
        CcAlg::Prague,
    ];

    /// Stable numeric id (used in trace tags and reports).
    pub fn id(self) -> u64 {
        match self {
            CcAlg::Reno => 0,
            CcAlg::Dctcp => 1,
            CcAlg::Cubic => 2,
            CcAlg::Bbr => 3,
            CcAlg::Prague => 4,
        }
    }

    /// CLI / report label.
    pub fn label(self) -> &'static str {
        match self {
            CcAlg::Reno => "reno",
            CcAlg::Dctcp => "dctcp",
            CcAlg::Cubic => "cubic",
            CcAlg::Bbr => "bbr",
            CcAlg::Prague => "prague",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<CcAlg> {
        CcAlg::ALL.into_iter().find(|a| a.label() == s)
    }

    /// True when the controller needs per-segment CE feedback (the DCTCP-mode
    /// receiver echo) rather than the RFC 3168 latched-ECE signal.
    pub fn needs_ce_feedback(self) -> bool {
        matches!(self, CcAlg::Dctcp | CcAlg::Prague)
    }
}

/// Static per-flow parameters every hook receives. Kept out of controller
/// state so the `Copy` state structs stay small; the sender derives this
/// once from its `TcpConfig`.
#[derive(Debug, Clone, Copy)]
pub struct CcParams {
    /// Maximum segment size, bytes.
    pub mss: f64,
    /// Initial congestion window, bytes.
    pub init_cwnd: f64,
    /// Initial slow-start threshold, bytes (the receive window).
    pub init_ssthresh: f64,
    /// DCTCP/Prague alpha EWMA gain.
    pub dctcp_g: f64,
}

/// The pluggable congestion-control surface.
///
/// Hook mapping from the sender (one call site each, so the Reno/DCTCP
/// implementations reproduce the pre-refactor arithmetic byte-for-byte):
///
/// * [`on_ack`](Self::on_ack) — cumulative ACK advanced snd_una outside
///   recovery: window growth.
/// * [`on_ce_feedback`](Self::on_ce_feedback) — per-ACK CE accounting
///   (DCTCP's alpha window, Prague's round classifier); every controller
///   sees it, loss-based ones ignore it.
/// * [`on_ece`](Self::on_ece) — the once-per-window ECN reduction; returns
///   false to decline (BBR), in which case the sender does not start a CWR
///   window or count a reduction.
/// * [`on_loss`](Self::on_loss) — third duplicate ACK: enter fast recovery.
/// * [`on_partial_ack`](Self::on_partial_ack) — NewReno deflation on a
///   partial ACK inside recovery.
/// * [`on_recovery_dupack`](Self::on_recovery_dupack) /
///   [`undo_recovery_dupack`](Self::undo_recovery_dupack) — inflation per
///   dupack in recovery, taken back when the freed slot repaired a hole.
/// * [`on_recovery_exit`](Self::on_recovery_exit) — full ACK ends recovery.
/// * [`on_rto`](Self::on_rto) — retransmission timeout collapse.
/// * [`on_rtt_sample`](Self::on_rtt_sample) — a Karn-clean RTT sample.
/// * [`on_sent`](Self::on_sent) — a data segment left the sender.
pub trait CongestionController {
    /// Which algorithm this is.
    fn alg(&self) -> CcAlg;
    /// Congestion window, bytes.
    fn cwnd(&self) -> f64;
    /// Slow-start threshold, bytes.
    fn ssthresh(&self) -> f64;

    /// Cumulative ACK of `newly` bytes outside recovery.
    fn on_ack(&mut self, p: &CcParams, newly: u64, now_ns: u64);
    /// Per-ACK CE-mark accounting. `ce` is the echoed CE state, `ack` the
    /// cumulative level, `snd_nxt` closes observation rounds.
    fn on_ce_feedback(&mut self, p: &CcParams, newly: u64, ce: bool, ack: u64, snd_nxt: u64) {
        let _ = (p, newly, ce, ack, snd_nxt);
    }
    /// ECN reduction request (already guarded once-per-window by the
    /// sender). Returns true when the window was actually reduced.
    fn on_ece(&mut self, p: &CcParams) -> bool;
    /// Enter fast recovery with `flight` bytes outstanding.
    fn on_loss(&mut self, p: &CcParams, flight: u64);
    /// NewReno partial-ACK deflation.
    fn on_partial_ack(&mut self, p: &CcParams, newly: u64);
    /// Dupack inflation while in recovery.
    fn on_recovery_dupack(&mut self, p: &CcParams);
    /// Take back one inflation (SACK hole repair consumed the slot).
    fn undo_recovery_dupack(&mut self, p: &CcParams);
    /// Full ACK: leave recovery.
    fn on_recovery_exit(&mut self, p: &CcParams);
    /// Retransmission timeout with `flight` bytes outstanding.
    fn on_rto(&mut self, p: &CcParams, flight: u64);
    /// A valid (non-retransmitted) RTT sample completed. `ce` is the echoed
    /// CE state of the ACK that completed the sample — a true value means
    /// the timed packet itself was marked, so `rtt_ns` is the queueing delay
    /// the marking AQM actually imposed on it (Prague's staleness test).
    fn on_rtt_sample(&mut self, p: &CcParams, rtt_ns: u64, now_ns: u64, ce: bool) {
        let _ = (p, rtt_ns, now_ns, ce);
    }
    /// `bytes` of data were emitted (`is_retransmit` for go-back-N ranges).
    fn on_sent(&mut self, p: &CcParams, bytes: u64, now_ns: u64, is_retransmit: bool) {
        let _ = (p, bytes, now_ns, is_retransmit);
    }

    /// Model-based pacing rate in bytes/sec, if the controller computes one.
    /// The simulator is window-limited; this is surfaced for reporting and
    /// future pacing support, not enforced on the wire.
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    /// DCTCP-family congestion-extent estimate (1.0 when not applicable,
    /// matching the pre-refactor conservative init).
    fn alpha(&self) -> f64 {
        1.0
    }
    /// Times this controller has fallen back to a classic-ECN response
    /// (Prague only; one count per detected classic-AQM episode).
    fn fallback_count(&self) -> u64 {
        0
    }
    /// True while a classic-ECN fallback episode is active.
    fn in_fallback(&self) -> bool {
        false
    }
}

/// Shared cwnd/ssthresh pair with the NewReno mechanics used verbatim by the
/// Reno-family controllers. Every expression preserves the pre-refactor
/// operation order so refactored Reno/DCTCP stay bit-exact.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Window {
    pub cwnd: f64,
    pub ssthresh: f64,
}

impl Window {
    pub fn new(p: &CcParams) -> Window {
        Window {
            cwnd: p.init_cwnd,
            ssthresh: p.init_ssthresh,
        }
    }

    /// Slow start / congestion avoidance growth (ABC with L = 1).
    pub fn reno_ack(&mut self, p: &CcParams, newly: u64) {
        if self.cwnd < self.ssthresh {
            self.cwnd += p.mss.min(newly as f64);
        } else {
            self.cwnd += p.mss * p.mss / self.cwnd;
        }
    }

    /// RFC 3168 ECE response: halve, floor at 2 MSS.
    pub fn reno_ece(&mut self, p: &CcParams) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * p.mss);
        self.cwnd = self.ssthresh;
    }

    /// Fast-retransmit entry: ssthresh from flight, inflate by 3 segments.
    pub fn reno_loss(&mut self, p: &CcParams, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(2.0 * p.mss);
        self.cwnd = self.ssthresh + 3.0 * p.mss;
    }

    /// NewReno partial-ACK deflation.
    pub fn partial_ack(&mut self, p: &CcParams, newly: u64) {
        self.cwnd = (self.cwnd - newly as f64 + p.mss).max(p.mss);
    }

    /// RTO collapse to one segment.
    pub fn rto(&mut self, p: &CcParams, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(2.0 * p.mss);
        self.cwnd = p.mss;
    }
}

/// Inline enum dispatch over every controller: `Copy`, no allocation, stored
/// directly in the sender's hot state.
#[derive(Debug, Clone, Copy)]
pub enum Cc {
    /// NewReno.
    Reno(Reno),
    /// DCTCP.
    Dctcp(Dctcp),
    /// CUBIC.
    Cubic(Cubic),
    /// BBR.
    Bbr(Bbr),
    /// TCP Prague.
    Prague(Prague),
}

impl Cc {
    /// Instantiate the controller selected by `alg`.
    pub fn new(alg: CcAlg, p: &CcParams) -> Cc {
        match alg {
            CcAlg::Reno => Cc::Reno(Reno::new(p)),
            CcAlg::Dctcp => Cc::Dctcp(Dctcp::new(p)),
            CcAlg::Cubic => Cc::Cubic(Cubic::new(p)),
            CcAlg::Bbr => Cc::Bbr(Bbr::new(p)),
            CcAlg::Prague => Cc::Prague(Prague::new(p)),
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $c:ident => $e:expr) => {
        match $self {
            Cc::Reno($c) => $e,
            Cc::Dctcp($c) => $e,
            Cc::Cubic($c) => $e,
            Cc::Bbr($c) => $e,
            Cc::Prague($c) => $e,
        }
    };
}

impl CongestionController for Cc {
    fn alg(&self) -> CcAlg {
        dispatch!(self, c => c.alg())
    }
    fn cwnd(&self) -> f64 {
        dispatch!(self, c => c.cwnd())
    }
    fn ssthresh(&self) -> f64 {
        dispatch!(self, c => c.ssthresh())
    }
    fn on_ack(&mut self, p: &CcParams, newly: u64, now_ns: u64) {
        dispatch!(self, c => c.on_ack(p, newly, now_ns))
    }
    fn on_ce_feedback(&mut self, p: &CcParams, newly: u64, ce: bool, ack: u64, snd_nxt: u64) {
        dispatch!(self, c => c.on_ce_feedback(p, newly, ce, ack, snd_nxt))
    }
    fn on_ece(&mut self, p: &CcParams) -> bool {
        dispatch!(self, c => c.on_ece(p))
    }
    fn on_loss(&mut self, p: &CcParams, flight: u64) {
        dispatch!(self, c => c.on_loss(p, flight))
    }
    fn on_partial_ack(&mut self, p: &CcParams, newly: u64) {
        dispatch!(self, c => c.on_partial_ack(p, newly))
    }
    fn on_recovery_dupack(&mut self, p: &CcParams) {
        dispatch!(self, c => c.on_recovery_dupack(p))
    }
    fn undo_recovery_dupack(&mut self, p: &CcParams) {
        dispatch!(self, c => c.undo_recovery_dupack(p))
    }
    fn on_recovery_exit(&mut self, p: &CcParams) {
        dispatch!(self, c => c.on_recovery_exit(p))
    }
    fn on_rto(&mut self, p: &CcParams, flight: u64) {
        dispatch!(self, c => c.on_rto(p, flight))
    }
    fn on_rtt_sample(&mut self, p: &CcParams, rtt_ns: u64, now_ns: u64, ce: bool) {
        dispatch!(self, c => c.on_rtt_sample(p, rtt_ns, now_ns, ce))
    }
    fn on_sent(&mut self, p: &CcParams, bytes: u64, now_ns: u64, is_retransmit: bool) {
        dispatch!(self, c => c.on_sent(p, bytes, now_ns, is_retransmit))
    }
    fn pacing_rate(&self) -> Option<f64> {
        dispatch!(self, c => c.pacing_rate())
    }
    fn alpha(&self) -> f64 {
        dispatch!(self, c => c.alpha())
    }
    fn fallback_count(&self) -> u64 {
        dispatch!(self, c => c.fallback_count())
    }
    fn in_fallback(&self) -> bool {
        dispatch!(self, c => c.in_fallback())
    }
}

/// Default parameters used across the unit tests.
#[cfg(test)]
pub(crate) fn test_params() -> CcParams {
    CcParams {
        mss: 1460.0,
        init_cwnd: 2.0 * 1460.0,
        init_ssthresh: (1u64 << 20) as f64,
        dctcp_g: 1.0 / 16.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg_labels_roundtrip() {
        for alg in CcAlg::ALL {
            assert_eq!(CcAlg::parse(alg.label()), Some(alg));
            assert_eq!(CcAlg::ALL[alg.id() as usize], alg);
        }
        assert_eq!(CcAlg::parse("newreno"), None);
    }

    #[test]
    fn dispatch_constructs_every_alg() {
        let p = test_params();
        for alg in CcAlg::ALL {
            let cc = Cc::new(alg, &p);
            assert_eq!(cc.alg(), alg);
            assert_eq!(cc.cwnd(), p.init_cwnd);
        }
    }

    #[test]
    fn state_budgets_hold() {
        use std::mem::size_of;
        // Reno/DCTCP carry the pre-refactor hot state and must stay inside
        // the ~64-byte budget the SoA host layout was sized for.
        assert!(size_of::<Reno>() <= 24, "Reno = {}", size_of::<Reno>());
        assert!(size_of::<Dctcp>() <= 64, "Dctcp = {}", size_of::<Dctcp>());
        // The model-based controllers get a documented 160-byte ceiling; the
        // dispatch enum (what the sender actually embeds) is bounded by the
        // largest of them plus the tag.
        assert!(size_of::<Cubic>() <= 160, "Cubic = {}", size_of::<Cubic>());
        assert!(size_of::<Bbr>() <= 160, "Bbr = {}", size_of::<Bbr>());
        assert!(
            size_of::<Prague>() <= 160,
            "Prague = {}",
            size_of::<Prague>()
        );
        assert!(size_of::<Cc>() <= 168, "Cc = {}", size_of::<Cc>());
    }

    #[test]
    fn cwnd_change_tag_packs_alg_and_reason() {
        assert_eq!(cwnd_change_tag(CcAlg::Reno, REASON_ACK), 0);
        assert_eq!(cwnd_change_tag(CcAlg::Prague, REASON_ECE), (4 << 8) | 2);
        assert_eq!(cwnd_change_tag(CcAlg::Cubic, REASON_RTO), (2 << 8) | 3);
    }

    #[test]
    fn needs_ce_feedback_partition() {
        assert!(CcAlg::Dctcp.needs_ce_feedback());
        assert!(CcAlg::Prague.needs_ce_feedback());
        assert!(!CcAlg::Reno.needs_ce_feedback());
        assert!(!CcAlg::Cubic.needs_ce_feedback());
        assert!(!CcAlg::Bbr.needs_ce_feedback());
    }
}
