//! The paper's second proposal: a *true* simple marking scheme.

use crate::config::SimpleMarkingConfig;
use crate::fifo::Fifo;
use netpacket::{
    packet_event, ConservationCheck, EnqueueOutcome, Packet, PacketKind, QueueDiscipline,
    QueueStats,
};
use simevent::SimTime;
use simtrace::{EventKind, TraceHandle, NO_QUEUE};

/// A single-threshold marking queue that **never early-drops**.
///
/// This is what the DCTCP paper assumed switches would do, and what this
/// paper argues should actually be implemented instead of mimicking it with
/// RED ("a true marking scheme would mark packets but never drop packets
/// unless its buffer was full", §II-A):
///
/// * ECT packets arriving while the instantaneous queue length is at or above
///   the threshold `K` are CE-marked and enqueued;
/// * non-ECT packets (ACKs, SYN, SYN-ACK, or plain-TCP data) are enqueued
///   untouched regardless of the threshold;
/// * the **only** loss is tail drop when the physical buffer is full
///   (capacity and threshold are packet counts by design — no byte mode).
#[derive(Debug)]
pub struct SimpleMarking {
    cfg: SimpleMarkingConfig,
    fifo: Fifo,
    stats: QueueStats,
    conserve: ConservationCheck,
    trace: TraceHandle,
    trace_q: u32,
}

impl SimpleMarking {
    /// Build the queue.
    pub fn new(cfg: SimpleMarkingConfig) -> Self {
        cfg.validate();
        SimpleMarking {
            fifo: Fifo::new(),
            cfg,
            stats: QueueStats::default(),
            conserve: ConservationCheck::default(),
            trace: TraceHandle::null(),
            trace_q: NO_QUEUE,
        }
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> &SimpleMarkingConfig {
        &self.cfg
    }

    /// Iterate resident packets head-to-tail (queue snapshots, Fig. 1).
    pub fn resident(&self) -> impl Iterator<Item = &Packet> {
        self.fifo.iter()
    }
}

impl QueueDiscipline for SimpleMarking {
    fn enqueue(&mut self, mut packet: Packet, now: SimTime) -> EnqueueOutcome {
        let kind = PacketKind::of(&packet);
        if self.fifo.len() >= self.cfg.capacity_packets {
            self.stats.dropped_full.bump(kind);
            if self.trace.is_enabled() {
                self.trace.emit(packet_event(
                    EventKind::DroppedFull,
                    now,
                    self.trace_q,
                    &packet,
                ));
            }
            return EnqueueOutcome::DroppedFull;
        }
        let mark = packet.is_ect() && self.fifo.len() >= self.cfg.threshold_packets;
        if mark {
            packet.ecn = packet.ecn.marked();
        }
        if self.trace.is_enabled() {
            if mark {
                self.trace
                    .emit(packet_event(EventKind::Marked, now, self.trace_q, &packet));
            }
            self.trace.emit(packet_event(
                EventKind::Enqueued,
                now,
                self.trace_q,
                &packet,
            ));
        }
        let bytes = packet.wire_bytes();
        self.fifo.push(packet);
        self.conserve.on_admit(bytes);
        self.stats
            .on_enqueue(kind, bytes, mark, self.fifo.len(), self.fifo.bytes());
        self.debug_verify_conservation();
        if mark {
            EnqueueOutcome::EnqueuedMarked
        } else {
            EnqueueOutcome::Enqueued
        }
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let p = self.fifo.pop()?;
        self.conserve.on_deliver(p.wire_bytes());
        self.stats.on_dequeue(PacketKind::of(&p), p.wire_bytes());
        if self.trace.is_enabled() {
            self.trace
                .emit(packet_event(EventKind::Dequeued, now, self.trace_q, &p));
        }
        self.debug_verify_conservation();
        Some(p)
    }

    fn len_packets(&self) -> u64 {
        self.fifo.len()
    }

    fn len_bytes(&self) -> u64 {
        self.fifo.bytes()
    }

    fn capacity_packets(&self) -> u64 {
        self.cfg.capacity_packets
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn snapshot_kinds(&self) -> [u64; 6] {
        let mut kinds = [0u64; 6];
        for p in self.fifo.iter() {
            kinds[netpacket::PacketKind::of(p).index()] += 1;
        }
        kinds
    }

    fn name(&self) -> String {
        format!(
            "SimpleMarking(K={},cap={})",
            self.cfg.threshold_packets, self.cfg.capacity_packets
        )
    }

    fn debug_verify_conservation(&self) {
        self.conserve.verify(
            "SimpleMarking",
            &self.stats,
            self.fifo.len(),
            self.fifo.bytes(),
        );
    }

    fn set_trace(&mut self, trace: TraceHandle, queue: u32) {
        self.trace = trace;
        self.trace_q = queue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpacket::{EcnCodepoint, FlowId, NodeId, PacketId, TcpFlags};

    fn data(id: u64, ecn: EcnCodepoint) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload: 1460,
            flags: TcpFlags::ACK,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    fn ack(id: u64) -> Packet {
        Packet {
            payload: 0,
            ecn: EcnCodepoint::NotEct,
            ..data(id, EcnCodepoint::NotEct)
        }
    }

    fn q(k: u64, cap: u64) -> SimpleMarking {
        SimpleMarking::new(SimpleMarkingConfig {
            capacity_packets: cap,
            threshold_packets: k,
        })
    }

    #[test]
    fn marks_ect_at_threshold() {
        let mut sm = q(3, 100);
        for i in 0..3 {
            assert_eq!(
                sm.enqueue(data(i, EcnCodepoint::Ect0), SimTime::ZERO),
                EnqueueOutcome::Enqueued
            );
        }
        assert_eq!(
            sm.enqueue(data(4, EcnCodepoint::Ect0), SimTime::ZERO),
            EnqueueOutcome::EnqueuedMarked
        );
        assert_eq!(
            sm.resident().filter(|p| p.ecn == EcnCodepoint::Ce).count(),
            1
        );
    }

    #[test]
    fn never_early_drops_anything() {
        // The defining property of proposal 2: fill to one below capacity with
        // a mix of ECT and non-ECT; zero early drops.
        let mut sm = q(5, 500);
        for i in 0..499 {
            let out = if i % 2 == 0 {
                sm.enqueue(data(i, EcnCodepoint::Ect0), SimTime::ZERO)
            } else {
                sm.enqueue(ack(i), SimTime::ZERO)
            };
            assert!(out.accepted(), "packet {i} must be accepted");
        }
        assert_eq!(sm.stats().dropped_early.total(), 0);
    }

    #[test]
    fn non_ect_never_marked() {
        let mut sm = q(2, 100);
        for i in 0..50 {
            sm.enqueue(ack(i), SimTime::ZERO);
        }
        assert_eq!(sm.stats().marked.total(), 0);
        assert!(sm.resident().all(|p| p.ecn == EcnCodepoint::NotEct));
    }

    #[test]
    fn tail_drop_only_when_full() {
        let mut sm = q(2, 4);
        for i in 0..4 {
            assert!(sm.enqueue(ack(i), SimTime::ZERO).accepted());
        }
        assert_eq!(
            sm.enqueue(ack(99), SimTime::ZERO),
            EnqueueOutcome::DroppedFull
        );
        assert_eq!(sm.stats().dropped_full.total(), 1);
        assert_eq!(sm.stats().dropped_early.total(), 0);
    }

    #[test]
    fn marking_uses_instantaneous_length() {
        let mut sm = q(3, 100);
        for i in 0..5 {
            sm.enqueue(data(i, EcnCodepoint::Ect0), SimTime::ZERO);
        }
        // Drain below K: the next packet must NOT be marked, instantly.
        sm.dequeue(SimTime::ZERO);
        sm.dequeue(SimTime::ZERO);
        sm.dequeue(SimTime::ZERO);
        assert_eq!(sm.len_packets(), 2);
        assert_eq!(
            sm.enqueue(data(9, EcnCodepoint::Ect0), SimTime::ZERO),
            EnqueueOutcome::Enqueued
        );
    }

    #[test]
    fn ce_arrivals_counted_as_marked() {
        let mut sm = q(1, 100);
        sm.enqueue(data(0, EcnCodepoint::Ect0), SimTime::ZERO);
        let out = sm.enqueue(data(1, EcnCodepoint::Ce), SimTime::ZERO);
        assert_eq!(out, EnqueueOutcome::EnqueuedMarked);
    }

    #[test]
    fn fifo_order() {
        let mut sm = q(2, 100);
        for i in 0..6 {
            sm.enqueue(data(i, EcnCodepoint::Ect0), SimTime::ZERO);
        }
        for i in 0..6 {
            assert_eq!(sm.dequeue(SimTime::ZERO).unwrap().id, PacketId(i));
        }
    }

    #[test]
    fn conservation() {
        let mut sm = q(2, 5);
        for i in 0..50 {
            let _ = sm.enqueue(ack(i), SimTime::ZERO);
            if i % 3 == 0 {
                sm.dequeue(SimTime::ZERO);
            }
        }
        while sm.dequeue(SimTime::ZERO).is_some() {}
        let s = sm.stats();
        assert_eq!(s.enqueued.total() + s.dropped_total(), 50);
        assert_eq!(s.enqueued.total(), s.dequeued.total());
    }

    #[test]
    fn name_mentions_threshold() {
        let sm = q(7, 42);
        assert_eq!(sm.name(), "SimpleMarking(K=7,cap=42)");
    }
}
