//! Figure 2 (Hadoop runtime): one nano-scale point per series per buffer
//! depth at the paper's moderate 500 µs target delay. Each bench iteration
//! is a complete Terasort simulation; the printed metric regenerates the
//! figure's value for that series.

use bench::{figure_series, nano_point};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::scenario::BufferDepth;

fn bench_fig2(c: &mut Criterion) {
    for depth in BufferDepth::ALL {
        let mut g = c.benchmark_group(format!("fig2_runtime_{}", depth.label()));
        g.sample_size(10);
        for (name, transport, queue) in figure_series() {
            let m = nano_point(transport, queue, depth, 500);
            println!(
                "[fig2 {} @nano] {name}: runtime {:.4}s",
                depth.label(),
                m.runtime_s
            );
            g.bench_function(name, |b| {
                b.iter(|| nano_point(transport, queue, depth, 500).runtime_s)
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
