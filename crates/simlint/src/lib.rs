#![warn(missing_docs)]

//! **simlint** — the workspace's determinism & invariant linter.
//!
//! The simulator's headline guarantee is that a run is a pure function of
//! `(scenario, seed)`. That guarantee is easy to break silently: one
//! `Instant::now()` in a stats path, one default-hasher `HashMap` iterated
//! into a report, one `thread_rng()` in a workload generator. simlint scans
//! the token stream of every Rust source in `crates/` and enforces:
//!
//! | code  | rule |
//! |-------|------|
//! | SL001 | no `Instant`/`SystemTime` in simulation crates |
//! | SL002 | no default-hasher `HashMap`/`HashSet` in simulation state |
//! | SL003 | no `thread_rng`/`from_entropy` anywhere |
//! | SL004 | no `.unwrap()`/`.expect()` in non-test library code |
//! | SL005 | no lossy `as` casts of time/byte counters |
//! | SL006 | no `Box::new`/`push` of packet payloads outside the pool API |
//! | SL007 | no unsorted hash-order iteration in simulation crates |
//! | SL008 | no interior mutability (`RefCell`/`Atomic*`/`static mut`) in simulation state |
//! | SL009 | no f64 `+=` accumulation in metrics/claims code |
//! | SL010 | no wall-clock or RNG construction outside their blessed homes |
//! | SL011 | no scheduling at a subtracted (possibly past) timestamp |
//! | SL012 | no `unsafe` outside `netpacket::pool` |
//!
//! SL001–SL006 are flat token-pattern rules; SL007–SL012 use the
//! [`scope`] pass (brace-matched `impl`/`fn`/type-definition context) to
//! tell simulation *state* from locals. Findings can be waived per path +
//! code in `simlint.toml`, each with a mandatory justification. Run it as
//! `cargo run -p simlint` (human output) or `cargo run -p simlint -- --json`
//! (machine output for CI; byte-identical across runs on an unchanged tree).

pub mod config;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod walk;

use std::fs;
use std::path::Path;

pub use config::Waiver;
pub use rules::Finding;

/// The outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Every finding, waived or not, sorted by (file, line, code).
    pub findings: Vec<Finding>,
    /// How many source files were scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings not covered by a waiver — these fail the build.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Findings silenced by `simlint.toml`.
    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// True when nothing fails the build.
    pub fn is_clean(&self) -> bool {
        self.active().next().is_none()
    }
}

/// Lint the workspace rooted at `root`, applying `waivers`.
pub fn lint_workspace(root: &Path, waivers: &[Waiver]) -> Result<LintReport, String> {
    let files = walk::rust_sources(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        let source =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        let tokens = lexer::lex(&source);
        for mut f in rules::check_file(rel, &tokens) {
            f.waived = waivers.iter().any(|w| w.covers(&f));
            findings.push(f);
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code)));
    Ok(LintReport {
        findings,
        files_scanned: files.len(),
    })
}

/// Load waivers from `path`. A missing file is not an error (no waivers);
/// a malformed file is.
pub fn load_waivers(path: &Path) -> Result<Vec<Waiver>, String> {
    match fs::read_to_string(path) {
        Ok(text) => config::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

/// Render the report as a JSON object (hand-rolled: the linter stays
/// dependency-free).
pub fn to_json(report: &LintReport) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut items = Vec::new();
    for f in &report.findings {
        items.push(format!(
            "    {{\"span\": \"{}:{}\", \"file\": \"{}\", \"line\": {}, \"code\": \"{}\", \"waived\": {}, \"message\": \"{}\"}}",
            esc(&f.file),
            f.line,
            esc(&f.file),
            f.line,
            f.code,
            f.waived,
            esc(&f.message)
        ));
    }
    // Per-rule counts, keyed by code in sorted order (findings are sorted
    // by (file, line, code), so a BTreeMap keeps the output stable and
    // byte-identical across runs on an unchanged tree).
    let mut by_rule: std::collections::BTreeMap<&str, (usize, usize)> =
        std::collections::BTreeMap::new();
    for f in &report.findings {
        let e = by_rule.entry(f.code).or_insert((0, 0));
        e.0 += 1;
        if !f.waived {
            e.1 += 1;
        }
    }
    let rules: Vec<String> = by_rule
        .iter()
        .map(|(code, (total, active))| {
            format!("    \"{code}\": {{\"total\": {total}, \"active\": {active}}}")
        })
        .collect();
    format!(
        "{{\n  \"files_scanned\": {},\n  \"waived\": {},\n  \"active\": {},\n  \"rules\": {{\n{}\n  }},\n  \"findings\": [\n{}\n  ]\n}}",
        report.files_scanned,
        report.waived_count(),
        report.active().count(),
        rules.join(",\n"),
        items.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let report = LintReport {
            findings: vec![
                Finding {
                    file: "crates/a/src/x.rs".into(),
                    line: 3,
                    code: "SL004",
                    message: "say \"why\"".into(),
                    waived: true,
                },
                Finding {
                    file: "crates/a/src/y.rs".into(),
                    line: 9,
                    code: "SL001",
                    message: "wall clock".into(),
                    waived: false,
                },
            ],
            files_scanned: 2,
        };
        let json = to_json(&report);
        assert!(json.contains("\\\"why\\\""));
        assert!(json.contains("\"active\": 1"));
        assert!(json.contains("\"waived\": 1"));
        // Rule-level counts, sorted by code, and stable file:line spans.
        assert!(json.contains("\"SL001\": {\"total\": 1, \"active\": 1}"));
        assert!(json.contains("\"SL004\": {\"total\": 1, \"active\": 0}"));
        assert!(json.contains("\"span\": \"crates/a/src/y.rs:9\""));
        let sl1 = json.find("\"SL001\"").unwrap();
        let sl4 = json.find("\"SL004\"").unwrap();
        assert!(sl1 < sl4, "rule counts must be code-sorted");
        assert!(!report.is_clean());
    }

    #[test]
    fn json_is_deterministic() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .expect("workspace root");
        let waivers = load_waivers(&root.join("simlint.toml")).expect("simlint.toml parses");
        let a = to_json(&lint_workspace(root, &waivers).expect("lint runs"));
        let b = to_json(&lint_workspace(root, &waivers).expect("lint runs"));
        assert_eq!(a, b, "same tree must produce byte-identical JSON");
        assert!(a.contains("\"rules\""));
    }
}
