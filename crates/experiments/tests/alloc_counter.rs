//! Debug-build allocation audit: the arena's contract, enforced.
//!
//! A counting `#[global_allocator]` wraps the system allocator and tallies
//! every heap allocation in the process. The test runs the steady-state
//! DCTCP gate point on the pooled fast path and asserts the allocation
//! count does not scale with the packet count — i.e. **zero per-packet
//! heap allocations**: everything left is per-run setup (topology Vecs,
//! flow state, slab growth), which is sublinear in packets by construction.
//! The reference engine run then proves the counter works by showing the
//! seed model's one-Box-per-packet signature.
//!
//! The assertions are debug-only (`cfg(debug_assertions)`): CI runs this
//! under `cargo test` (dev profile) in its own job; under `--release` the
//! test still runs both engines but only checks the pool's own counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

use experiments::scenario::{
    run_scenario_once_full, BufferDepth, Engine, QueueKind, ScenarioConfig, Transport,
};
use simevent::SimDuration;

fn run_point(engine: Engine) -> (u64, netpacket::PoolStats) {
    let cfg = ScenarioConfig::tiny();
    let before = allocs();
    let (m, _report, pool) = run_scenario_once_full(
        &cfg,
        Transport::Dctcp,
        QueueKind::SimpleMarking,
        BufferDepth::Shallow,
        SimDuration::from_micros(500),
        engine,
        simtrace::TraceHandle::null(),
    );
    assert!(m.completed, "gate point must finish");
    (allocs() - before, pool)
}

/// Single test function: the counter is process-global, so interleaving
/// with a parallel test would corrupt the deltas.
#[test]
fn steady_state_dctcp_point_performs_no_per_packet_allocation() {
    // Warm-up run: fault in allocator arenas, lazy statics, thread locals.
    let (_, warm_pool) = run_point(Engine::Fast);
    let packets = warm_pool.inserts;
    assert!(packets > 10_000, "point must push real traffic: {packets}");

    // Measured pooled run.
    let (pooled_allocs, pool) = run_point(Engine::Fast);
    assert_eq!(pool.inserts, packets, "deterministic packet count");
    // The pool itself must only have heap-allocated on slab growth.
    assert!(
        pool.heap_allocs < packets / 100,
        "pool slab spill must be amortized: {} allocs for {} packets",
        pool.heap_allocs,
        packets
    );

    // Reference run: the seed model Boxes every insert.
    let (reference_allocs, ref_pool) = run_point(Engine::Reference);
    assert_eq!(
        ref_pool.heap_allocs, packets,
        "reference mode must Box per packet"
    );

    #[cfg(debug_assertions)]
    {
        // Zero per-packet heap allocations: the whole process performed
        // fewer than one allocation per 10 packets (setup is O(hosts+flows)
        // and slab growth is O(log packets)), while the reference engine's
        // process-wide count necessarily exceeds one per packet.
        assert!(
            pooled_allocs < packets / 10,
            "pooled hot path must not allocate per packet: \
             {pooled_allocs} allocs for {packets} packets"
        );
        assert!(
            reference_allocs > packets,
            "counter sanity: reference mode allocates per packet \
             ({reference_allocs} allocs for {packets} packets)"
        );
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (pooled_allocs, reference_allocs);
    }
}
