//! SL011 fixture: scheduling at a subtracted (possibly past) timestamp.
//!
//! Scanned as `crates/simevent/src/probe.rs`. One violation (line 9);
//! clamped computations, plain additions, later-argument subtractions, and
//! `fn schedule*` definitions must stay clean.

impl Probe {
    fn bad_retry(&mut self, now: SimTime, jitter: SimTime) {
        self.sched.schedule_at(now - jitter, Event::Tick);
    }

    // ---- clean from here down ----

    fn fine(&mut self, now: SimTime, jitter: SimTime, delay: SimTime) {
        self.sched.schedule_at((now - jitter).max(now), Event::Tick);
        self.sched.schedule_at(now + delay, Event::Tick);
        self.sched.schedule_at(now, self.total - self.done);
    }

    fn schedule_probe(&mut self, at: SimTime) {
        self.sched.schedule_at(at, Event::Tick);
    }
}
