//! Shared plumbing for the experiment binaries.

use crate::report::write_sweep_json;
use crate::scenario::ScenarioConfig;
use crate::sweep::{sweep, SweepGrid, SweepResults};
use std::path::{Path, PathBuf};

/// The flags every experiment binary understands.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    /// `--tiny`: reduced grid / scaled-down cluster for smoke runs.
    pub tiny: bool,
    /// `--fresh`: ignore any cached sweep.
    pub fresh: bool,
    /// `--seed N`: override the scenario's base RNG seed.
    pub seed: Option<u64>,
}

impl CliArgs {
    /// Parse `args` (without the program name). Exits with status 2 on an
    /// unknown flag or a malformed `--seed`.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> CliArgs {
        let mut out = CliArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--tiny" => out.tiny = true,
                "--fresh" => out.fresh = true,
                "--seed" => match it.next().map(|v| v.parse::<u64>()) {
                    Some(Ok(s)) => out.seed = Some(s),
                    _ => die("--seed needs an unsigned integer value"),
                },
                other => match other.strip_prefix("--seed=") {
                    Some(v) => match v.parse::<u64>() {
                        Ok(s) => out.seed = Some(s),
                        Err(_) => die("--seed needs an unsigned integer value"),
                    },
                    None => die(&format!(
                        "unknown argument {other}; supported: --tiny --fresh --seed N"
                    )),
                },
            }
        }
        out
    }

    /// The scenario these flags select: tiny or default, with the seed
    /// override applied.
    pub fn scenario(&self) -> ScenarioConfig {
        let mut cfg = if self.tiny {
            ScenarioConfig::tiny()
        } else {
            ScenarioConfig::default()
        };
        if let Some(s) = self.seed {
            cfg.seed = s;
        }
        cfg
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Parse the process's own arguments.
pub fn cli_args() -> CliArgs {
    CliArgs::parse(std::env::args().skip(1))
}

/// Where sweep results are cached so Figures 2–4 binaries share one run.
pub fn default_cache_path(tiny: bool) -> PathBuf {
    let name = if tiny {
        "sweep_tiny.json"
    } else {
        "sweep.json"
    };
    PathBuf::from("results").join(name)
}

/// Load a cached sweep if it exists and was produced by the same grid;
/// otherwise run the sweep and cache it. A `--seed` override changes
/// `grid.config.seed`, so a cache written under a different seed fails the
/// grid comparison and is re-run rather than silently reused.
pub fn sweep_cached(grid: &SweepGrid, path: &Path) -> SweepResults {
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(res) = serde_json::from_str::<SweepResults>(&text) {
            if res.grid == *grid {
                eprintln!("[experiments] using cached sweep from {}", path.display());
                return res;
            }
            eprintln!(
                "[experiments] cache at {} has a different grid; re-running",
                path.display()
            );
        }
    }
    eprintln!(
        "[experiments] running sweep: {} transports x {} queues x {} delays x 2 depths...",
        grid.transports.len(),
        grid.queues.len(),
        grid.target_delays_us.len()
    );
    let res = sweep(grid);
    if let Err(e) = write_sweep_json(&res, path) {
        eprintln!("[experiments] warning: could not cache sweep: {e}");
    }
    res
}

/// Parse the common flags. Returns (grid, cache_path, fresh).
pub fn parse_args() -> (SweepGrid, PathBuf, bool) {
    let args = cli_args();
    let mut grid = if args.tiny {
        SweepGrid::tiny()
    } else {
        SweepGrid::default()
    };
    grid.config = args.scenario();
    (grid, default_cache_path(args.tiny), args.fresh)
}

/// Run (or load) the sweep per the parsed flags.
pub fn sweep_from_args() -> SweepResults {
    let (grid, path, fresh) = parse_args();
    if fresh {
        let _ = std::fs::remove_file(&path);
    }
    sweep_cached(&grid, &path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CliArgs {
        CliArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&["--tiny", "--seed", "99", "--fresh"]);
        assert!(a.tiny && a.fresh);
        assert_eq!(a.seed, Some(99));
        assert_eq!(parse(&["--seed=123"]).seed, Some(123));
        assert_eq!(parse(&[]).seed, None);
    }

    #[test]
    fn seed_overrides_scenario() {
        let base = parse(&["--tiny"]).scenario();
        assert_eq!(base.seed, ScenarioConfig::tiny().seed);
        let a = parse(&["--tiny", "--seed", "7"]).scenario();
        assert_eq!(a.seed, 7);
        assert_eq!(a.racks, base.racks, "seed override changes only the seed");
    }
}
