//! Merged half-open interval set — the sender-side SACK scoreboard.

use std::collections::BTreeMap;

/// A set of disjoint, merged, half-open `[start, end)` intervals over the
/// sequence space.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    map: BTreeMap<u64, u64>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `[start, end)`, merging with any overlapping or adjacent
    /// intervals. Empty ranges are ignored.
    pub fn insert(&mut self, mut start: u64, mut end: u64) {
        if start >= end {
            return;
        }
        let mut to_remove = Vec::new();
        if let Some((&s, &e)) = self.map.range(..=start).next_back() {
            if e >= start {
                start = s.min(start);
                end = e.max(end);
                to_remove.push(s);
            }
        }
        for (&s, &e) in self.map.range(start..) {
            if s > end {
                break;
            }
            end = end.max(e);
            to_remove.push(s);
        }
        for s in to_remove {
            self.map.remove(&s);
        }
        self.map.insert(start, end);
    }

    /// Remove everything below `x` (cumulative ACK advanced past it).
    pub fn prune_below(&mut self, x: u64) {
        let below: Vec<u64> = self.map.range(..x).map(|(&s, _)| s).collect();
        for s in below {
            if let Some(e) = self.map.remove(&s) {
                if e > x {
                    self.map.insert(x, e);
                }
            }
        }
    }

    /// Is `x` inside some interval?
    pub fn contains(&self, x: u64) -> bool {
        self.map
            .range(..=x)
            .next_back()
            .is_some_and(|(_, &e)| e > x)
    }

    /// The first position at or after `from` NOT covered by any interval.
    pub fn first_uncovered(&self, from: u64) -> u64 {
        let mut x = from;
        while let Some((_, &e)) = self.map.range(..=x).next_back().filter(|(_, &e)| e > x) {
            x = e;
        }
        x
    }

    /// Start of the next interval strictly after `x`, if any — i.e. where the
    /// current hole ends.
    pub fn next_covered_after(&self, x: u64) -> Option<u64> {
        self.map.range((x + 1)..).next().map(|(&s, _)| s)
    }

    /// The highest covered position, if any (end of the last interval).
    pub fn max_covered(&self) -> Option<u64> {
        self.map.iter().next_back().map(|(_, &e)| e)
    }

    /// Total covered length.
    pub fn covered_len(&self) -> u64 {
        self.map.iter().map(|(s, e)| e - s).sum()
    }

    /// Number of disjoint intervals.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merges_overlaps_and_adjacency() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.len(), 2);
        s.insert(20, 30); // bridges
        assert_eq!(s.len(), 1);
        assert_eq!(s.covered_len(), 30);
        s.insert(5, 12); // overlap left
        assert_eq!(s.len(), 1);
        assert_eq!(s.covered_len(), 35);
    }

    #[test]
    fn empty_ranges_ignored() {
        let mut s = IntervalSet::new();
        s.insert(5, 5);
        s.insert(7, 3);
        assert!(s.is_empty());
    }

    #[test]
    fn contains_and_boundaries() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        assert!(!s.contains(9));
        assert!(s.contains(10));
        assert!(s.contains(19));
        assert!(!s.contains(20));
    }

    #[test]
    fn first_uncovered_skips_islands() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(20, 25); // merged: [10,25)
        s.insert(30, 40);
        assert_eq!(s.first_uncovered(0), 0);
        assert_eq!(s.first_uncovered(10), 25);
        assert_eq!(s.first_uncovered(24), 25);
        assert_eq!(s.first_uncovered(25), 25);
        assert_eq!(s.first_uncovered(35), 40);
    }

    #[test]
    fn next_covered_after_finds_hole_end() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.next_covered_after(0), Some(10));
        assert_eq!(s.next_covered_after(20), Some(30));
        assert_eq!(
            s.next_covered_after(30),
            None,
            "strictly after 30 there is no new start"
        );
        assert_eq!(s.next_covered_after(40), None);
    }

    #[test]
    fn prune_below_trims_and_splits() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        s.prune_below(15);
        assert!(!s.contains(10));
        assert!(s.contains(15) && s.contains(19));
        assert_eq!(s.covered_len(), 15);
        s.prune_below(100);
        assert!(s.is_empty());
    }

    #[test]
    fn max_covered_tracks_top() {
        let mut s = IntervalSet::new();
        assert_eq!(s.max_covered(), None);
        s.insert(10, 20);
        s.insert(40, 50);
        assert_eq!(s.max_covered(), Some(50));
    }

    #[test]
    fn clear_resets() {
        let mut s = IntervalSet::new();
        s.insert(1, 5);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.covered_len(), 0);
    }
}
