//! SL006 fixture: per-packet heap traffic outside the pool API.
//!
//! Lines 8–10 must fire; everything after the marker must stay clean.

fn hot_path(&mut self, packet: Packet, pkt: Packet) {
    // Three violations: a per-packet Box, a Vec push of a payload, and an
    // inline construction pushed into a deque.
    let boxed = Box::new(packet);
    self.staging.push(pkt);
    self.queue.push_back(Packet::tcp(1, 2));
}

// ---- clean from here down ----

fn clean(&mut self, r: PacketRef) {
    // A field label carries an 8-byte handle, not a payload.
    self.pending.push((done, Event::Arrive { dev, packet: r }));
    // Counters that merely contain "packet" are not payloads.
    let q = Box::new(DropTail::new(spec.host_buffer_packets));
    self.refs.push(r);
}

#[cfg(test)]
mod tests {
    fn exempt() {
        let b = Box::new(packet);
        v.push(pkt);
    }
}
