//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this workspace vendors a
//! minimal tree-model replacement: [`Serialize`] lowers a value to a
//! [`Value`] tree and [`Deserialize`] rebuilds it. The companion
//! `serde_derive` proc-macro generates both impls for plain structs and enums
//! (no generics, no `#[serde(...)]` attributes — none are used here), and
//! `serde_json` renders/parses the tree. The JSON shapes match real serde's
//! defaults (externally tagged enums, transparent newtypes) so committed
//! result files keep their layout.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree, the interchange format between the two traits.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (fits u64).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Integer too large for u64 (e.g. `u128` counters).
    U128(u128),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, in insertion order (field order of the struct that made it).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error type shared by deserialization and (through `serde_json`) parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn err<T>(msg: impl Into<String>) -> Result<T, Error> {
    Err(Error(msg.into()))
}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    /// Produce the tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the tree; errors carry a human-readable path-free message.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ----- primitives -----------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U128(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::U128(*self),
        }
    }
}
impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(*n as u128),
            Value::U128(n) => Ok(*n),
            other => err(format!("expected integer, got {other:?}")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::U128(n) => Ok(*n as f64),
            other => err(format!("expected number, got {other:?}")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ----- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => err(format!("expected {}-tuple, got {other:?}", $len)),
                }
            }
        }
    )*};
}
impl_tuple!((A.0; 1), (A.0, B.1; 2), (A.0, B.1, C.2; 3), (A.0, B.1, C.2, D.3; 4));

/// Map keys serialize through their `Value` form; JSON objects need string
/// keys, so integer-shaped keys are stringified (as real `serde_json` does).
fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::U128(n) => Ok(n.to_string()),
        other => err(format!("unsupported map key: {other:?}")),
    }
}

fn key_from_string(s: &str) -> Value {
    if let Ok(n) = s.parse::<u64>() {
        Value::U64(n)
    } else if let Ok(n) = s.parse::<i64>() {
        Value::I64(n)
    } else {
        Value::Str(s.to_string())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(k.to_value()).expect("map key must be scalar");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_from_string(k))?, V::from_value(v)?)))
                .collect(),
            other => err(format!("expected object, got {other:?}")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let big = u128::MAX - 3;
        assert_eq!(u128::from_value(&big.to_value()).unwrap(), big);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let a = [9u64; 6];
        assert_eq!(<[u64; 6]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<String> = Some("hi".into());
        assert_eq!(Option::<String>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), None);
        let t = ("x".to_string(), 2.5f64);
        assert_eq!(<(String, f64)>::from_value(&t.to_value()).unwrap(), t);
        let mut m = BTreeMap::new();
        m.insert(3u32, 30u64);
        m.insert(1u32, 10u64);
        assert_eq!(BTreeMap::<u32, u64>::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn wrong_shape_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(<[u64; 6]>::from_value(&vec![1u64].to_value()).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
    }
}
