#![warn(missing_docs)]

//! Packet-level network substrate (the NS-2 replacement).
//!
//! `netsim` glues the other crates into a runnable cluster simulation:
//!
//! * [`LinkSpec`] / `Port` — full-duplex links modelled as two independent
//!   egress ports, each with a serialising transmitter and a pluggable
//!   queue discipline from `ecn-core`;
//! * [`ClusterSpec`] — the two-tier leaf/spine topology the paper's Hadoop
//!   cluster uses: racks of hosts under ToR switches, ToRs under a core
//!   switch, with independently configurable buffer depths and AQMs;
//! * [`Network`] — owns hosts (with their TCP endpoints), switches, routing
//!   and metrics, and handles the four event types of the simulation;
//! * [`Simulation`] / [`Application`] — the event loop plus the hook through
//!   which a workload (e.g. `mrsim`'s Terasort) starts flows and reacts to
//!   their completion.

mod apps;
mod link;
mod network;
mod sim;
mod topology;

pub use apps::{jain_fairness, LatencyProbes, PairApp};
pub use link::LinkSpec;
pub use network::{DevRef, Event, FlowRecord, Network, PortStatsReport};
pub use sim::{Application, RunReport, Simulation, StaticFlows};
pub use topology::ClusterSpec;
