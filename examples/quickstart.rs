//! Quickstart: build a small cluster, run one ECN flow, inspect what the
//! switch queue did to it.
//!
//! Run with: `cargo run --release --example quickstart`

use hadoop_ecn::prelude::*;

fn main() {
    // A 4-host rack; the ToR switch runs stock RED with ECN ("Default"
    // protection — the configuration the paper shows is broken for Hadoop).
    let red = RedConfig::from_target_delay(
        SimDuration::from_micros(500), // target queuing delay
        1_000_000_000,                 // 1 Gbps links
        1526,                          // mean wire packet
        100,                           // shallow commodity buffer
        ProtectionMode::Default,
    );
    let spec = ClusterSpec::single_rack(4, LinkSpec::gbps(1, 5), QdiscSpec::Red(red), 7);
    let net = Network::new(spec);

    // Three concurrent 2 MB TCP-ECN flows converging on host 0 (mini-incast),
    // plus one reverse flow so ACKs share a congested queue.
    let cfg = TcpConfig::with_ecn(EcnMode::Ecn);
    let app = StaticFlows::all_at_zero(
        vec![
            (NodeId(1), NodeId(0), 2_000_000),
            (NodeId(2), NodeId(0), 2_000_000),
            (NodeId(3), NodeId(0), 2_000_000),
            (NodeId(0), NodeId(1), 2_000_000),
        ],
        cfg,
    );

    let mut sim = Simulation::new(net, app);
    let report = sim.run();

    println!(
        "simulation: {:?} after {} events, t = {}",
        report.outcome, report.events, report.end_time
    );
    println!("flows completed: {}/{}", report.flows_completed, 4);
    for rec in sim.net.flows() {
        let done = rec
            .completed
            .map(|t| format!("{}", t.since(rec.started)))
            .unwrap_or_else(|| "DNF".into());
        println!(
            "  {} {} -> {} ({} B) finished in {done}",
            rec.flow, rec.src, rec.dst, rec.bytes
        );
    }

    println!("\nper-packet end-to-end latency:");
    println!(
        "  mean {}  p99 {}",
        sim.net.latency().mean(),
        sim.net.latency().quantile(0.99)
    );

    let stats = sim.net.port_stats().total;
    println!("\nswitch queue totals:");
    println!(
        "  CE-marked data     : {}",
        stats.marked.get(PacketKind::Data)
    );
    println!(
        "  early-dropped ACKs : {}",
        stats.dropped_early.get(PacketKind::PureAck)
    );
    println!(
        "  early-dropped data : {}",
        stats.dropped_early.get(PacketKind::Data)
    );
    println!("  overflow drops     : {}", stats.dropped_full.total());
    println!(
        "\nNote the asymmetry: ECT data is marked, never early-dropped; every\n\
         early drop hits a short non-ECT packet. That asymmetry is the paper."
    );
}
