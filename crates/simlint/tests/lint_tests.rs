//! Integration tests: each fixture under `tests/fixtures/` is scanned under
//! a synthetic workspace-relative path (the rules are path-sensitive), plus
//! the self-check — the real workspace must lint clean with the real
//! `simlint.toml`.

use simlint::lexer::lex;
use simlint::rules::check_file;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn codes(path: &str, source: &str) -> Vec<&'static str> {
    check_file(path, &lex(source))
        .into_iter()
        .map(|f| f.code)
        .collect()
}

#[test]
fn sl001_fixture() {
    let src = fixture("sl001_wall_clock.rs");
    // Positive: in a sim crate, both wall-clock types fire (Instant twice:
    // the use-line and the call site; SystemTime once).
    let found = codes("crates/netsim/src/probe.rs", &src);
    assert!(found.iter().all(|c| *c == "SL001"), "only SL001: {found:?}");
    assert_eq!(found.len(), 3);
    // Negative: the experiments harness may measure wall time.
    assert!(codes("crates/experiments/src/probe.rs", &src).is_empty());
}

#[test]
fn sl002_fixture() {
    let src = fixture("sl002_default_hasher.rs");
    let findings = check_file("crates/tcpstack/src/state.rs", &lex(&src));
    let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
    assert!(findings.iter().all(|f| f.code == "SL002"));
    assert_eq!(
        findings.len(),
        2,
        "exactly the two default-hasher fields: {findings:?}"
    );
    // The custom-hasher and BTreeMap fields (lines 11+) must not fire.
    assert!(lines.iter().all(|&l| l < 11), "lines: {lines:?}");
}

#[test]
fn sl003_fixture() {
    let src = fixture("sl003_ambient_entropy.rs");
    // Workspace-wide: fires even outside simulation crates.
    assert_eq!(
        codes("crates/experiments/src/gen.rs", &src),
        vec!["SL003", "SL003"]
    );
}

#[test]
fn sl004_fixture() {
    let src = fixture("sl004_unwrap.rs");
    // Positive in library code; the #[cfg(test)] unwrap is exempt.
    assert_eq!(codes("crates/core/src/x.rs", &src), vec!["SL004", "SL004"]);
    // Whole file exempt under tests/.
    assert!(codes("crates/core/tests/x.rs", &src).is_empty());
}

#[test]
fn sl005_fixture() {
    let src = fixture("sl005_lossy_cast.rs");
    assert_eq!(codes("crates/core/src/x.rs", &src), vec!["SL005", "SL005"]);
}

#[test]
fn sl006_fixture() {
    let src = fixture("sl006_packet_alloc.rs");
    let findings = check_file("crates/netsim/src/hot.rs", &lex(&src));
    assert!(findings.iter().all(|f| f.code == "SL006"), "{findings:?}");
    assert_eq!(
        findings.len(),
        3,
        "exactly the three hot-path sites: {findings:?}"
    );
    // Everything after the clean marker (field labels, packet-counting
    // idents, PacketRef pushes, test code) must not fire.
    assert!(findings.iter().all(|f| f.line <= 10), "{findings:?}");
    // Out of scope in the harness crate.
    assert!(codes("crates/experiments/src/hot.rs", &src).is_empty());
}

#[test]
fn waiver_silences_exactly_its_code_and_path() {
    let src = fixture("sl004_unwrap.rs");
    let waivers = simlint::config::parse(
        "[[waiver]]\n\
         code = \"SL004\"\n\
         path = \"crates/core/src/x.rs\"\n\
         reason = \"fixture: documented invariant\"\n",
    )
    .expect("waiver parses");
    let findings = check_file("crates/core/src/x.rs", &lex(&src));
    assert!(findings.iter().all(|f| waivers[0].covers(f)));
    // Same finding in another file is NOT covered.
    let elsewhere = check_file("crates/core/src/y.rs", &lex(&src));
    assert!(elsewhere.iter().all(|f| !waivers[0].covers(f)));
}

/// The tree itself must be clean: every finding either fixed or waived with
/// a justification in the real simlint.toml. This is the test CI leans on.
#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let waivers = simlint::load_waivers(&root.join("simlint.toml")).expect("simlint.toml parses");
    let report = simlint::lint_workspace(root, &waivers).expect("lint runs");
    let active: Vec<_> = report.active().collect();
    assert!(
        active.is_empty(),
        "workspace must lint clean; active findings: {active:#?}"
    );
    assert!(report.files_scanned > 50, "walker found the workspace");
}
