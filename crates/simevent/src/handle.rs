//! Timer cancellation: handles and lazy-deletion bookkeeping shared by both
//! queue backends.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for event sequence numbers. Sequence numbers are
/// already unique and uniformly consumed, so SipHash's DoS resistance buys
/// nothing here and its latency sits on every pop's reap check; a single
/// Fibonacci multiply mixes the low bits well enough for a power-of-two
/// table.
#[derive(Debug, Default)]
pub(crate) struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("CancelSet keys hash via write_u64");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type SeqSet = HashSet<u64, BuildHasherDefault<SeqHasher>>;

/// Identifies one cancellable scheduled event.
///
/// A handle is the event's unique sequence number, so handles from the two
/// queue backends are interchangeable when the same operations are applied to
/// each (the equivalence proptests rely on this). A handle is dead once the
/// event fires or is cancelled; cancelling a dead handle is a no-op returning
/// `false`, never a panic — exactly what rearmed TCP timers need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle(pub(crate) u64);

/// Lazy-deletion state. Cancelled events stay physically enqueued and are
/// skipped ("reaped") when they surface at pop, trading a tiny deferred cost
/// for O(1) cancellation with no searching — the generation-counter scheme
/// timer wheels use, with the global `seq` as the generation.
#[derive(Debug, Default)]
pub(crate) struct CancelSet {
    /// Handles registered and still pending.
    live: SeqSet,
    /// Handles cancelled but whose events have not yet surfaced at pop.
    cancelled: SeqSet,
}

impl CancelSet {
    /// Register a cancellable event by its sequence number.
    pub(crate) fn register(&mut self, seq: u64) -> TimerHandle {
        self.live.insert(seq);
        TimerHandle(seq)
    }

    /// Cancel a handle. Returns `false` if it already fired or was cancelled.
    pub(crate) fn cancel(&mut self, handle: TimerHandle) -> bool {
        if self.live.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            true
        } else {
            false
        }
    }

    /// Called for every event surfacing at pop. Returns `true` when the event
    /// was cancelled and must be skipped.
    ///
    /// The empty-set early-outs matter: most events are never cancellable, so
    /// the common-case pop must not pay two hash lookups.
    pub(crate) fn reap(&mut self, seq: u64) -> bool {
        if !self.cancelled.is_empty() && self.cancelled.remove(&seq) {
            return true;
        }
        if !self.live.is_empty() {
            // Fired normally: the handle (if any) is now dead.
            self.live.remove(&seq);
        }
        false
    }

    /// Whether this event was cancelled and not yet reaped (peek support).
    pub(crate) fn is_cancelled(&self, seq: u64) -> bool {
        !self.cancelled.is_empty() && self.cancelled.contains(&seq)
    }

    /// Cancelled events still physically enqueued (the live-length correction).
    pub(crate) fn pending_cancelled(&self) -> usize {
        self.cancelled.len()
    }

    /// Forget everything (queue was cleared).
    pub(crate) fn clear(&mut self) {
        self.live.clear();
        self.cancelled.clear();
    }
}
