//! Tables I & II: the codepoint model itself. These are microbenchmarks of
//! the hot header operations every simulated packet goes through, and the
//! bench run prints the rendered tables (the paper artefact).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netpacket::{EcnCodepoint, TcpFlags};

fn bench_tables(c: &mut Criterion) {
    // Regenerate the paper's tables once per bench run.
    println!("{}", experiments::figures::table1());
    println!("{}", experiments::figures::table2());

    let mut g = c.benchmark_group("tables_codepoints");
    g.bench_function("table2_ecn_roundtrip", |b| {
        b.iter(|| {
            for bits in 0u8..4 {
                if let Some(cp) = EcnCodepoint::from_bits(black_box(bits)) {
                    black_box(cp.is_ect());
                    black_box(cp.bits());
                }
            }
        })
    });
    g.bench_function("table2_ce_marking", |b| {
        b.iter(|| black_box(EcnCodepoint::Ect0).marked())
    });
    g.bench_function("table1_flag_ops", |b| {
        b.iter(|| {
            let mut f = TcpFlags::ecn_setup_syn();
            f.insert(black_box(TcpFlags::ACK));
            black_box(f.contains(TcpFlags::ECE));
            f.remove(TcpFlags::CWR);
            black_box(f)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
