//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde::Value` tree. Output conventions
//! follow real `serde_json`: two-space pretty indentation, integral floats
//! printed with a trailing `.0`, externally tagged enums (that part lives in
//! the derive). The parser accepts the full JSON grammar this printer emits.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ----- printer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U128(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            write_value,
            ('[', ']'),
        ),
        Value::Obj(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            |o, (k, v), i, d| {
                write_string(o, k);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(o, v, i, d);
            },
            ('{', '}'),
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
    (open, close): (char, char),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (depth + 1) {
                out.push(' ');
            }
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // Real serde_json refuses non-finite floats; emitting null keeps the
        // document valid, and simulation metrics never produce them anyway.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e16 {
        let _ = write!(out, "{x:.1}");
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, got {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, got {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // BMP only — surrogate pairs never appear in our output.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing on
                    // char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u128>() {
                return Ok(Value::U128(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_tree() {
        let v = Value::Obj(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::F64(1.5)),
            ("c".into(), Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("s".into(), Value::Str("hi \"there\"\n".into())),
            ("big".into(), Value::U128(u128::MAX)),
            ("neg".into(), Value::I64(-9)),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let parsed: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn pretty_layout_matches_serde_json() {
        let v = Value::Obj(vec![("x".into(), Value::Arr(vec![Value::U64(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"x\": [\n    1\n  ]\n}"
        );
        let empty = Value::Obj(vec![]);
        assert_eq!(to_string_pretty(&empty).unwrap(), "{}");
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&Value::F64(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&Value::F64(2.5)).unwrap(), "2.5");
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![1u64, 2, 3];
        let json = to_string_pretty(&xs).unwrap();
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2,").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
