//! CLI entry point: `cargo run -p simlint [-- --json] [--root DIR] [--config FILE]`.
//!
//! Exit codes: `0` clean (all findings waived or none), `1` active findings,
//! `2` usage or configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut config = None;
    let mut json = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => {
                root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root requires a directory".to_string())?,
                );
            }
            "--config" => {
                config = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--config requires a file".to_string())?,
                ));
            }
            "--help" | "-h" => {
                println!(
                    "simlint: determinism & invariant linter\n\n\
                     USAGE: simlint [--root DIR] [--config FILE] [--json]\n\n\
                     Scans crates/**/*.rs for SL001-SL012 violations.\n\
                     Waivers: simlint.toml at the workspace root (or --config).\n\
                     Exit: 0 clean, 1 findings, 2 usage/config error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Args { root, config, json })
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("simlint.toml"));
    let waivers = simlint::load_waivers(&config_path)?;
    let report = simlint::lint_workspace(&args.root, &waivers)?;

    // Ignore write errors: a closed pipe (`simlint | head`) must not panic —
    // the exit code is the contract, not the stream.
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    if args.json {
        let _ = writeln!(out, "{}", simlint::to_json(&report));
    } else {
        for f in report.active() {
            let _ = writeln!(out, "{}:{}: {} {}", f.file, f.line, f.code, f.message);
        }
        let _ = writeln!(
            out,
            "simlint: {} files scanned, {} active finding(s), {} waived",
            report.files_scanned,
            report.active().count(),
            report.waived_count()
        );
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("simlint: error: {e}");
            ExitCode::from(2)
        }
    }
}
