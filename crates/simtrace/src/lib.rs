//! Structured per-packet lifecycle tracing.
//!
//! The paper's whole argument rests on *which individual packets* an AQM
//! early-drops at the marking threshold (non-ECT ACKs and SYNs vs. CE-marked
//! data). Aggregate [`QueueStats`](../netpacket) counters cannot answer that,
//! so this crate records the per-decision event stream:
//!
//! * packet lifecycle: [`EventKind::Enqueued`], [`EventKind::Marked`],
//!   [`EventKind::DroppedEarly`], [`EventKind::DroppedFull`],
//!   [`EventKind::Dequeued`] — emitted by every queue discipline at the
//!   mark/drop decision point;
//! * sender lifecycle: [`EventKind::Retransmit`], [`EventKind::RtoFired`],
//!   [`EventKind::CwndChange`], [`EventKind::StateTransition`];
//! * periodic [`EventKind::QueueDepth`] samples.
//!
//! Every event is stamped with the [`SimTime`] of the decision, the flow id,
//! the packet id/kind, and the queue it happened at (queues are registered by
//! name and referenced by a small integer id so the hot path never allocates).
//!
//! # Sink tiers
//!
//! The disabled tier is [`TraceHandle::null()`]: a `None` inside the handle,
//! so every emission point is a single branch that the optimiser hoists. The
//! [`NullSink`] type exists for generic sink plumbing and benches; attaching
//! it costs one virtual call per event, while `TraceHandle::null()` costs
//! nothing. [`RingSink`] keeps the last N events in memory (always-on flight
//! recorder for tests); [`JsonlSink`] streams events as JSON Lines for
//! offline analysis and [`diff_jsonl`] comparison of same-seed runs.
//!
//! Determinism: sinks record simulation time only — no wall clocks — so two
//! same-seed runs must produce byte-identical JSONL files. `trace-diff`
//! (in `experiments`) builds on [`diff_jsonl`] to report the first diverging
//! event when they do not.

use simevent::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

/// Sentinel queue id for events not scoped to a queue (sender events).
pub const NO_QUEUE: u32 = u32::MAX;
/// Sentinel flow id for events not scoped to a flow (queue-depth samples).
pub const NO_FLOW: u64 = u64::MAX;
/// Sentinel packet id for events not scoped to a packet.
pub const NO_PACKET: u64 = u64::MAX;
/// Sentinel packet-kind index for events not scoped to a packet.
pub const NO_KIND: u8 = u8::MAX;

/// Packet-kind names indexed by `netpacket::PacketKind::index()`. Kept here
/// (rather than depending on `netpacket`, which depends on this crate) and
/// cross-checked by a test on the `netpacket` side.
pub const KIND_NAMES: [&str; 6] = ["data", "ack", "syn", "syn-ack", "fin", "other"];

/// What happened. See the module docs for which layer emits which kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Packet accepted into a queue (follows a `Marked` event when CE was set).
    Enqueued,
    /// Packet CE-marked on admission (`a` = 1 when the packet already carried CE).
    Marked,
    /// Packet rejected by AQM policy while the buffer had room; for CoDel this
    /// is the head drop at dequeue time.
    DroppedEarly,
    /// Packet tail-dropped on a physically full buffer.
    DroppedFull,
    /// Packet handed to the line at dequeue.
    Dequeued,
    /// Sender re-emitted a segment (`a` = seq, `b` = payload bytes).
    Retransmit,
    /// Retransmission timer fired (`a` = snd_una, `b` = snd_nxt).
    RtoFired,
    /// Sender congestion window changed (`a` = cwnd bytes, `b` = ssthresh
    /// bytes, `c` = controller/reason tag: controller id in bits 8..16 and a
    /// compact reason code — ack/loss/ece/rto/app-limited — in bits 0..8,
    /// packed by `simcc::cwnd_change_tag`).
    CwndChange,
    /// Sender connection state changed (`a` = from, `b` = to; codes are the
    /// emitting stack's own state numbering).
    StateTransition,
    /// Periodic queue-depth sample (`a` = packets resident, `b` = bytes resident).
    QueueDepth,
}

impl EventKind {
    /// Stable lower-snake label used in the JSONL export.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Enqueued => "enqueued",
            EventKind::Marked => "marked",
            EventKind::DroppedEarly => "dropped_early",
            EventKind::DroppedFull => "dropped_full",
            EventKind::Dequeued => "dequeued",
            EventKind::Retransmit => "retransmit",
            EventKind::RtoFired => "rto_fired",
            EventKind::CwndChange => "cwnd_change",
            EventKind::StateTransition => "state_transition",
            EventKind::QueueDepth => "queue_depth",
        }
    }
}

/// One trace record. A flat POD struct: emission sites fill the fields that
/// apply and leave the rest at their `NO_*` sentinels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time of the decision.
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
    /// Queue id (from [`TraceHandle::register_queue`]), or [`NO_QUEUE`].
    pub queue: u32,
    /// Flow id, or [`NO_FLOW`].
    pub flow: u64,
    /// Packet id, or [`NO_PACKET`].
    pub packet: u64,
    /// Packet-kind index (see [`KIND_NAMES`]), or [`NO_KIND`].
    pub pkind: u8,
    /// Kind-specific detail (see [`EventKind`] docs).
    pub a: u64,
    /// Kind-specific detail (see [`EventKind`] docs).
    pub b: u64,
    /// Kind-specific detail (see [`EventKind`] docs); 0 for events that do
    /// not use it. Today only [`EventKind::CwndChange`] fills it (the
    /// controller/reason tag).
    pub c: u64,
}

impl TraceEvent {
    /// An event with every optional field at its sentinel.
    pub fn new(kind: EventKind, at: SimTime) -> Self {
        TraceEvent {
            at,
            kind,
            queue: NO_QUEUE,
            flow: NO_FLOW,
            packet: NO_PACKET,
            pkind: NO_KIND,
            a: 0,
            b: 0,
            c: 0,
        }
    }

    /// Serialise as one JSON Lines record (no trailing newline). The field
    /// set is fixed; sentinel values serialise as `null` so every line has
    /// the same shape.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{},\"ev\":\"{}\"",
            self.at.as_nanos(),
            self.kind.label()
        );
        match self.queue {
            NO_QUEUE => s.push_str(",\"q\":null"),
            q => {
                let _ = write!(s, ",\"q\":{q}");
            }
        }
        match self.flow {
            NO_FLOW => s.push_str(",\"flow\":null"),
            f => {
                let _ = write!(s, ",\"flow\":{f}");
            }
        }
        match self.packet {
            NO_PACKET => s.push_str(",\"pkt\":null"),
            p => {
                let _ = write!(s, ",\"pkt\":{p}");
            }
        }
        match KIND_NAMES.get(self.pkind as usize) {
            Some(name) => {
                let _ = write!(s, ",\"kind\":\"{name}\"");
            }
            None => s.push_str(",\"kind\":null"),
        }
        let _ = write!(s, ",\"a\":{},\"b\":{},\"c\":{}}}", self.a, self.b, self.c);
        s
    }
}

/// Keep-only filter applied before events reach the sink. Events that do not
/// carry the filtered dimension (sentinel value) always pass, so queue-depth
/// samples survive a flow filter and sender events survive a kind filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceFilter {
    /// Keep only events for this flow id.
    pub flow: Option<u64>,
    /// Keep only events for this packet-kind index.
    pub pkind: Option<u8>,
}

impl TraceFilter {
    /// True when `ev` should be recorded under this filter.
    pub fn passes(&self, ev: &TraceEvent) -> bool {
        if let Some(f) = self.flow {
            if ev.flow != NO_FLOW && ev.flow != f {
                return false;
            }
        }
        if let Some(k) = self.pkind {
            if ev.pkind != NO_KIND && ev.pkind != k {
                return false;
            }
        }
        true
    }
}

/// Where trace events go. Implementations must not consult wall clocks or
/// unseeded randomness: a sink observing two same-seed runs must produce
/// identical output (the determinism contract `trace-diff` checks).
pub trait TraceSink: std::fmt::Debug + Send {
    /// Record one event. Infallible by design; IO sinks stash their first
    /// error and surface it from [`TraceSink::flush`].
    fn record(&mut self, ev: &TraceEvent);

    /// A queue was registered under `id` with a human-readable `name`.
    fn register_queue(&mut self, id: u32, name: &str) {
        let _ = (id, name);
    }

    /// Flush buffered output, surfacing any deferred IO error.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    /// Remove and return buffered events, oldest first. Sinks that do not
    /// retain events return nothing; [`RingSink`] returns its window.
    fn drain_events(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// True when this sink provably discards every event.
    /// [`TraceHandle::with_filter`] collapses such a sink to the disabled
    /// tier, so emission sites skip [`TraceEvent`] construction entirely.
    fn is_discard(&self) -> bool {
        false
    }
}

/// Discards everything. Exists so generic sink plumbing has an explicit zero
/// sink. A handle built over it reports [`TraceHandle::is_enabled`] `false`
/// and is bit-for-bit the disabled tier: no per-packet [`TraceEvent`]
/// construction, no lock, no virtual call on the hot dequeue path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &TraceEvent) {}

    fn is_discard(&self) -> bool {
        true
    }
}

/// Bounded in-memory flight recorder: keeps the most recent `capacity`
/// events, counting what it had to forget.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    overwritten: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "RingSink capacity must be >= 1");
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            overwritten: 0,
        }
    }

    /// Events forgotten because the ring was full.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.overwritten += 1;
        }
        self.buf.push_back(*ev);
    }

    fn drain_events(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

/// Streams events as JSON Lines. Queue registrations are written as
/// `{"meta":"queue",...}` preamble lines so a trace file is self-describing.
pub struct JsonlSink<W: Write + Send> {
    out: W,
    lines: u64,
    err: Option<std::io::Error>,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Create (truncating) a trace file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap any writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            err: None,
        }
    }

    /// Lines written so far (meta + events).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    fn write_line(&mut self, line: &str) {
        if self.err.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{line}") {
            self.err = Some(e);
        } else {
            self.lines += 1;
        }
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .field("err", &self.err)
            .finish()
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        self.write_line(&ev.to_jsonl());
    }

    fn register_queue(&mut self, id: u32, name: &str) {
        // Registration happens at wiring time, before any event, so the
        // preamble position is deterministic.
        let escaped: String = name
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c if (c as u32) < 0x20 => vec![' '],
                c => vec![c],
            })
            .collect();
        self.write_line(&format!(
            "{{\"meta\":\"queue\",\"q\":{id},\"name\":\"{escaped}\"}}"
        ));
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

#[derive(Debug)]
struct Recorder {
    sink: Box<dyn TraceSink>,
    filter: TraceFilter,
    next_queue: u32,
}

/// The handle emission points hold. Cloning shares the underlying sink.
///
/// [`TraceHandle::null()`] (also `Default`) is the disabled tier: `emit` is a
/// single branch on a `None`, and [`TraceHandle::is_enabled`] lets emission
/// sites skip event construction entirely. All instrumented components accept
/// a handle unconditionally, so tracing never changes simulation behaviour —
/// only whether decisions are recorded.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<Mutex<Recorder>>>,
}

fn lock(m: &Mutex<Recorder>) -> MutexGuard<'_, Recorder> {
    // A sink panic while holding the lock poisons it; the recorder state is
    // still coherent (record() is logically atomic), so keep tracing.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl TraceHandle {
    /// The disabled handle: every emission is a no-op branch.
    pub fn null() -> Self {
        TraceHandle::default()
    }

    /// An enabled handle recording into `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        TraceHandle::with_filter(sink, TraceFilter::default())
    }

    /// An enabled handle recording events that pass `filter` into `sink`.
    ///
    /// A sink that provably discards everything ([`TraceSink::is_discard`],
    /// e.g. [`NullSink`]) yields the *disabled* tier instead: emission sites
    /// see [`TraceHandle::is_enabled`] `false` and never construct an event.
    pub fn with_filter(sink: Box<dyn TraceSink>, filter: TraceFilter) -> Self {
        if sink.is_discard() {
            return TraceHandle::null();
        }
        TraceHandle {
            inner: Some(Arc::new(Mutex::new(Recorder {
                sink,
                filter,
                next_queue: 0,
            }))),
        }
    }

    /// True when events will actually be recorded. Emission sites guard on
    /// this before building a [`TraceEvent`].
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event (after the handle's filter).
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if let Some(m) = &self.inner {
            let mut r = lock(m);
            if r.filter.passes(&ev) {
                r.sink.record(&ev);
            }
        }
    }

    /// Register a queue by name, returning the id emission sites stamp into
    /// events. On a disabled handle this returns [`NO_QUEUE`].
    pub fn register_queue(&self, name: &str) -> u32 {
        match &self.inner {
            None => NO_QUEUE,
            Some(m) => {
                let mut r = lock(m);
                let id = r.next_queue;
                r.next_queue += 1;
                r.sink.register_queue(id, name);
                id
            }
        }
    }

    /// Flush the sink (surfaces deferred IO errors from [`JsonlSink`]).
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.inner {
            None => Ok(()),
            Some(m) => lock(m).sink.flush(),
        }
    }

    /// Drain buffered events out of the sink (see [`TraceSink::drain_events`]).
    pub fn drain_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(m) => lock(m).sink.drain_events(),
        }
    }
}

/// Where two traces first disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based line number of the first difference.
    pub line: usize,
    /// The line in the left trace (`None` when it ended first).
    pub left: Option<String>,
    /// The line in the right trace (`None` when it ended first).
    pub right: Option<String>,
}

/// Compare two JSONL traces line by line; `None` means byte-identical
/// event streams (ignoring a trailing newline difference).
pub fn diff_jsonl(left: &str, right: &str) -> Option<Divergence> {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (l.next(), r.next()) {
            (None, None) => return None,
            (a, b) if a == b => {}
            (a, b) => {
                return Some(Divergence {
                    line,
                    left: a.map(str::to_owned),
                    right: b.map(str::to_owned),
                })
            }
        }
    }
}

/// Compare two JSONL traces up to *within-instant* emission order.
///
/// Lines in each maximal run sharing one `"t"` stamp are sorted before
/// comparison, so two traces of the same simulation that processed
/// same-instant events in a different (tie-break-permuted) order still
/// compare equal — the determinism contract pins the *set* of events at each
/// instant plus the cross-instant order, not the emission interleaving
/// inside one instant. Lines without a timestamp (e.g. meta records) act as
/// group boundaries and must match in place. This is `simverify`'s trace
/// comparator; the reported line number indexes the *canonicalised* traces.
pub fn diff_jsonl_canonical(left: &str, right: &str) -> Option<Divergence> {
    diff_jsonl(&canonicalize_jsonl(left), &canonicalize_jsonl(right))
}

/// Rewrite a JSONL trace into within-instant canonical form: each maximal
/// run of consecutive lines with the same `"t"` stamp is sorted
/// lexicographically. Cross-instant order (and the position of untimestamped
/// lines) is preserved. Idempotent; two traces differing only in
/// same-instant emission order canonicalise to identical strings.
pub fn canonicalize_jsonl(trace: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    let mut group: Vec<&str> = Vec::new();
    let mut group_t: Option<SimTime> = None;
    fn flush<'a>(out: &mut Vec<&'a str>, group: &mut Vec<&'a str>) {
        group.sort_unstable();
        out.append(group);
    }
    for line in trace.lines() {
        match event_time(line) {
            Some(t) => {
                if group_t != Some(t) {
                    flush(&mut out, &mut group);
                    group_t = Some(t);
                }
                group.push(line);
            }
            None => {
                flush(&mut out, &mut group);
                group_t = None;
                out.push(line);
            }
        }
    }
    flush(&mut out, &mut group);
    let mut s = out.join("\n");
    if !s.is_empty() {
        s.push('\n');
    }
    s
}

/// Extract the `"t":<nanos>` stamp from a JSONL event line, if present.
pub fn event_time(line: &str) -> Option<SimTime> {
    let rest = line.strip_prefix("{\"t\":")?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse::<u64>().ok().map(SimTime::from_nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: EventKind) -> TraceEvent {
        let mut e = TraceEvent::new(kind, SimTime::from_nanos(t));
        e.queue = 1;
        e.flow = 7;
        e.packet = 42;
        e.pkind = 1;
        e
    }

    #[test]
    fn null_sink_collapses_to_the_disabled_tier() {
        let h = TraceHandle::new(Box::new(NullSink));
        assert!(
            !h.is_enabled(),
            "a NullSink handle must be the disabled tier: emission sites \
             guard on is_enabled() and would otherwise build a TraceEvent, \
             take the recorder lock, and virtual-call record() per packet"
        );
        // Disabled-tier semantics follow: no queue ids, emit is a no-op.
        assert_eq!(h.register_queue("sw0/p0"), NO_QUEUE);
        h.emit(ev(1, EventKind::Dequeued));
        assert_eq!(h.drain_events(), Vec::new());
    }

    #[test]
    fn jsonl_shape_is_fixed() {
        let e = ev(123, EventKind::Enqueued);
        assert_eq!(
            e.to_jsonl(),
            "{\"t\":123,\"ev\":\"enqueued\",\"q\":1,\"flow\":7,\"pkt\":42,\"kind\":\"ack\",\"a\":0,\"b\":0,\"c\":0}"
        );
        let bare = TraceEvent::new(EventKind::QueueDepth, SimTime::ZERO);
        assert_eq!(
            bare.to_jsonl(),
            "{\"t\":0,\"ev\":\"queue_depth\",\"q\":null,\"flow\":null,\"pkt\":null,\"kind\":null,\"a\":0,\"b\":0,\"c\":0}"
        );
    }

    #[test]
    fn event_time_parses_jsonl_lines() {
        assert_eq!(
            event_time(&ev(9125, EventKind::Dequeued).to_jsonl()),
            Some(SimTime::from_nanos(9125))
        );
        assert_eq!(
            event_time("{\"meta\":\"queue\",\"q\":0,\"name\":\"x\"}"),
            None
        );
    }

    #[test]
    fn null_handle_is_disabled_and_inert() {
        let h = TraceHandle::null();
        assert!(!h.is_enabled());
        h.emit(ev(1, EventKind::Enqueued));
        assert_eq!(h.register_queue("sw0/p0"), NO_QUEUE);
        assert!(h.drain_events().is_empty());
        assert!(h.flush().is_ok());
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let h = TraceHandle::new(Box::new(RingSink::new(3)));
        assert!(h.is_enabled());
        for t in 0..5 {
            h.emit(ev(t, EventKind::Enqueued));
        }
        let got = h.drain_events();
        assert_eq!(
            got.iter().map(|e| e.at.as_nanos()).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        // Drain empties the ring.
        assert!(h.drain_events().is_empty());
    }

    #[test]
    fn filter_keeps_matching_and_unscoped_events() {
        let h = TraceHandle::with_filter(
            Box::new(RingSink::new(16)),
            TraceFilter {
                flow: Some(7),
                pkind: None,
            },
        );
        h.emit(ev(1, EventKind::Enqueued)); // flow 7: kept
        let mut other = ev(2, EventKind::Enqueued);
        other.flow = 8;
        h.emit(other); // flow 8: filtered out
        let depth = TraceEvent::new(EventKind::QueueDepth, SimTime::from_nanos(3));
        h.emit(depth); // no flow: kept
        let got = h.drain_events();
        assert_eq!(
            got.iter().map(|e| e.at.as_nanos()).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn kind_filter() {
        let f = TraceFilter {
            flow: None,
            pkind: Some(2),
        };
        let mut syn = ev(1, EventKind::DroppedEarly);
        syn.pkind = 2;
        assert!(f.passes(&syn));
        assert!(!f.passes(&ev(1, EventKind::DroppedEarly))); // pkind 1
        assert!(f.passes(&TraceEvent::new(EventKind::CwndChange, SimTime::ZERO)));
    }

    #[test]
    fn jsonl_sink_writes_preamble_then_events() {
        let h = TraceHandle::new(Box::new(JsonlSink::new(Vec::new())));
        let q = h.register_queue("sw0/p1: RED");
        assert_eq!(q, 0);
        let mut e = ev(5, EventKind::Marked);
        e.queue = q;
        h.emit(e);
        // Pull the bytes back out via a second sink to check content: instead
        // serialise expectations directly.
        let expect_meta = "{\"meta\":\"queue\",\"q\":0,\"name\":\"sw0/p1: RED\"}";
        let expect_ev = e.to_jsonl();
        // Rebuild through a local sink to inspect the writer.
        let mut sink = JsonlSink::new(Vec::new());
        sink.register_queue(0, "sw0/p1: RED");
        sink.record(&e);
        assert!(sink.flush().is_ok());
        let text = String::from_utf8(sink.out).expect("utf8");
        assert_eq!(text, format!("{expect_meta}\n{expect_ev}\n"));
        assert_eq!(sink.lines, 2);
        drop(h);
    }

    #[test]
    fn jsonl_sink_escapes_queue_names() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.register_queue(3, "weird\"name\\x");
        let text = String::from_utf8(sink.out).expect("utf8");
        assert_eq!(
            text,
            "{\"meta\":\"queue\",\"q\":3,\"name\":\"weird\\\"name\\\\x\"}\n"
        );
    }

    #[test]
    fn diff_identical_is_none() {
        let a = "line1\nline2\n";
        assert_eq!(diff_jsonl(a, a), None);
        assert_eq!(
            diff_jsonl("x\ny", "x\ny\n"),
            None,
            "trailing newline ignored"
        );
    }

    #[test]
    fn diff_reports_first_divergence() {
        let d = diff_jsonl("a\nb\nc", "a\nB\nc").expect("must diverge");
        assert_eq!(d.line, 2);
        assert_eq!(d.left.as_deref(), Some("b"));
        assert_eq!(d.right.as_deref(), Some("B"));
    }

    #[test]
    fn diff_reports_length_mismatch() {
        let d = diff_jsonl("a\nb", "a").expect("must diverge");
        assert_eq!(d.line, 2);
        assert_eq!(d.left.as_deref(), Some("b"));
        assert_eq!(d.right, None);
    }

    #[test]
    fn canonicalize_sorts_within_one_instant_only() {
        let trace = "{\"t\":5,\"ev\":\"b\"}\n{\"t\":5,\"ev\":\"a\"}\n{\"t\":9,\"ev\":\"z\"}\n";
        assert_eq!(
            canonicalize_jsonl(trace),
            "{\"t\":5,\"ev\":\"a\"}\n{\"t\":5,\"ev\":\"b\"}\n{\"t\":9,\"ev\":\"z\"}\n",
            "same-instant lines sort; cross-instant order is preserved"
        );
        // Idempotent.
        assert_eq!(
            canonicalize_jsonl(&canonicalize_jsonl(trace)),
            canonicalize_jsonl(trace)
        );
        assert_eq!(canonicalize_jsonl(""), "");
    }

    #[test]
    fn canonical_diff_ignores_within_instant_order() {
        let left = "{\"meta\":\"queue\",\"q\":0,\"name\":\"x\"}\n\
                    {\"t\":5,\"ev\":\"a\"}\n{\"t\":5,\"ev\":\"b\"}\n{\"t\":7,\"ev\":\"c\"}\n";
        let right = "{\"meta\":\"queue\",\"q\":0,\"name\":\"x\"}\n\
                    {\"t\":5,\"ev\":\"b\"}\n{\"t\":5,\"ev\":\"a\"}\n{\"t\":7,\"ev\":\"c\"}\n";
        assert_eq!(diff_jsonl(left, right).map(|d| d.line), Some(2));
        assert_eq!(diff_jsonl_canonical(left, right), None);
    }

    #[test]
    fn canonical_diff_still_catches_real_divergence() {
        // Same multiset of lines, but at different instants: NOT equal.
        let left = "{\"t\":5,\"ev\":\"a\"}\n{\"t\":7,\"ev\":\"c\"}\n";
        let right = "{\"t\":5,\"ev\":\"c\"}\n{\"t\":7,\"ev\":\"a\"}\n";
        assert!(diff_jsonl_canonical(left, right).is_some());
        // A missing event inside an instant group is caught too.
        let d = diff_jsonl_canonical(
            "{\"t\":5,\"ev\":\"a\"}\n{\"t\":5,\"ev\":\"b\"}\n",
            "{\"t\":5,\"ev\":\"a\"}\n",
        )
        .expect("must diverge");
        assert_eq!(d.line, 2);
        assert_eq!(d.right, None);
    }

    #[test]
    fn canonical_diff_meta_lines_are_group_boundaries() {
        // An untimestamped line splits the instant group: reordering across
        // it is a divergence, not emission-order noise.
        let left = "{\"t\":5,\"ev\":\"a\"}\n{\"meta\":\"m\"}\n{\"t\":5,\"ev\":\"b\"}\n";
        let right = "{\"t\":5,\"ev\":\"b\"}\n{\"meta\":\"m\"}\n{\"t\":5,\"ev\":\"a\"}\n";
        assert!(diff_jsonl_canonical(left, right).is_some());
    }

    #[test]
    fn clones_share_the_sink() {
        let h = TraceHandle::new(Box::new(RingSink::new(8)));
        let h2 = h.clone();
        h.emit(ev(1, EventKind::Enqueued));
        h2.emit(ev(2, EventKind::Dequeued));
        assert_eq!(h.drain_events().len(), 2);
    }
}
