//! TCP Prague-style controller: DCTCP's proportional CE response plus
//! RTT-independence scaling, and the Briscoe/Ahmed classic-ECN-AQM
//! detection ("Fall-back on Detection of a Classic ECN AQM"): a scalable
//! sender expects either no marks or marking concentrated into short
//! near-saturating bursts (step marking at a shallow threshold, so a marked
//! packet always *experienced* the queue that marked it). A classic AQM
//! betrays itself in two ways: RED's probabilistic ramp spreads *sparse*
//! marks over many consecutive RTTs, and its EWMA-averaged queue keeps
//! marking after the real queue has drained — *stale* marks on packets
//! whose RTT shows no queueing delay at all — and its late-engaging signal
//! lets the buffer overflow while it marks, so CE marks and tail drops
//! land in the *same* round (*drop-coupled* marking, the RTT-free
//! signature). Sparse marking alone is not enough, though: the L4S DualQ
//! coupled AQM (RFC 9332) *also* emits a ramp-shaped signal (`p_CL =
//! k·p'`) by design, so a sparse round only counts as classic evidence
//! when its marked packets carried classic-scale RTT inflation over the
//! clean floor — a classic ramp marks from a deep queue, the DualQ
//! coupling marks while the scheduler keeps the L queue shallow. Both
//! RTT-based judgments wait for the clean floor to mature
//! ([`MIN_CLEAN_FLOOR`]): cumulative-ACK RTT samples taken under loss
//! recovery measure head-of-line blocking, not the path. When the round
//! classifier accumulates enough sparse-, stale- or drop-coupled-marking
//! evidence the controller falls back to a Reno-like (halving) CE
//! response so it stops out-competing classic flows through that AQM, and
//! it re-engages the scalable response after the episode ends (several
//! mark-free rounds).

use crate::{CcAlg, CcParams, CongestionController, Window};

/// Target virtual RTT for RTT-independence, ns (25 ms as in Prague).
const RTT_VIRT_NS: f64 = 25_000_000.0;
/// A round's CE fraction strictly below this (and above zero) counts as
/// classic-AQM evidence: step marking at a shallow threshold yields rounds
/// near 0 or near 1, while RED's probabilistic curve lives in between.
const CLASSIC_FRAC_MAX: f64 = 0.35;
/// Accumulated evidence required to declare a classic AQM.
const DETECT_ROUNDS: u32 = 6;
/// Mark-free rounds that end a classic-AQM episode.
const CLEAR_ROUNDS: u32 = 4;
/// An RTT sample completed by a CE-marked packet counts as *stale* when it
/// *undercuts* the connection's observed RTT floor by this factor. A packet
/// marked by an instantaneous-queue scheme stood in a queue at the marking
/// threshold, so its RTT can only sit *above* any propagation floor the
/// connection has observed — a marked sample at half the floor is only
/// possible when an averaged (classic) AQM kept marking after the real
/// queue drained. The 2× margin absorbs floor inflation on short flows
/// whose every clean sample carried some queueing delay.
const STALE_RTT_FACTOR: f64 = 0.5;
/// A sparse-marked round only counts as classic evidence when some marked
/// packet in it carried at least this much RTT inflation over the clean
/// floor. Classic ramp marking is inseparable from a *deep* queue — RED
/// only marks while its (averaged) queue sits above `min_th`, so the marked
/// packet's RTT carries the whole standing queue. The L4S DualQ coupled
/// AQM (RFC 9332) also emits a deliberately ramp-shaped signal
/// (`p_CL = k·p'`), but by design it arrives while the time-shifted
/// scheduler keeps the L queue *shallow*: falling back on those marks would
/// defeat the coupling, which exists precisely so a scalable sender can
/// keep its scalable response while classic flows get their share. The
/// marked-RTT inflation test separates the two ramps by the queue depth
/// they betray.
const CLASSIC_RTT_INFLATION: f64 = 4.0;
/// Stale-marked rounds (ever, per connection) that declare a classic AQM.
/// Stale evidence never decays: a step AQM cannot produce such marks at
/// all, so even well-separated observations stay damning — two of them
/// suffice.
const STALE_DETECT: u32 = 2;
/// Clean samples the floor must rest on before the RTT-based judgments
/// (stale undercut, classic inflation) are trusted. An RTT sample completes
/// on the cumulative ACK that crosses the timed sequence, so under loss
/// recovery a "clean" sample can carry head-of-line blocking rather than
/// path RTT — a floor built from two or three such samples reads a
/// millisecond where propagation is fifty microseconds, and every fresh
/// mark then looks like it "undercuts" it. A few samples in, the minimum
/// has seen past the noise.
const MIN_CLEAN_FLOOR: u32 = 8;
/// Rounds observing *sparse* CE marking *and* a loss in the same window
/// that declare a classic AQM. Drop-coupled sparse marking is the RTT-free
/// classic signature: RED's EWMA engages only after the burst has already
/// overflowed, so the sender sees a thin trickle of marks in the very round
/// its packets are tail-dropped. The sparseness requirement is what keeps a
/// step AQM out: when an incast burst blows through a shallow step
/// threshold to the buffer limit, the instantaneous queue sits far above
/// the threshold, so the overflow round arrives *saturated* with marks —
/// dense marks plus loss is congestion, sparse marks plus loss is a lagging
/// signal. Like stale evidence it never decays — two such rounds suffice.
const COEXIST_DETECT: u32 = 2;

/// Prague per-flow state.
#[derive(Debug, Clone, Copy)]
pub struct Prague {
    w: Window,
    /// Fraction-of-marked-bytes EWMA, as in DCTCP.
    alpha: f64,
    /// Bytes acked with CE in the current observation round.
    ce_acked: u64,
    /// Total bytes acked in the current observation round.
    window_acked: u64,
    /// Sequence number closing the current round.
    round_end: u64,
    /// Last RTT sample, ns (0 until the first sample).
    srtt_ns: u64,
    /// Smallest RTT sample seen on this connection, ns (`u64::MAX` until the
    /// first sample) — the propagation-delay estimate the staleness test
    /// compares marked samples against.
    rtt_min_ns: u64,
    /// The current round saw a CE-marked packet whose own RTT shows no
    /// queueing delay (set by [`CongestionController::on_rtt_sample`]).
    stale_round: bool,
    /// Clean (unmarked) RTT samples folded into the floor so far.
    clean_samples: u32,
    /// The current round saw a CE-marked packet whose own RTT carried
    /// classic-scale inflation over the clean floor (set by
    /// [`CongestionController::on_rtt_sample`]) — the deep-queue signature
    /// that lets a sparse round count as classic evidence.
    round_inflated: bool,
    /// The current round saw a loss (fast-retransmit or RTO) — combined
    /// with a CE mark in the same round it is drop-coupled-marking evidence.
    round_loss: bool,
    /// Sparse-marking evidence accumulated by the round classifier; cleared
    /// by mark-free stretches, decayed by dense fresh marking.
    evidence: u32,
    /// Stale-marked rounds observed over the connection's lifetime.
    stale_evidence: u32,
    /// Marked-and-lossy rounds observed over the connection's lifetime.
    coexist_evidence: u32,
    /// Consecutive mark-free rounds (ends a fallback episode).
    clear_rounds: u32,
    /// Classic-AQM episodes detected so far.
    fallbacks: u64,
    /// Currently responding like a classic (Reno) sender.
    fallback: bool,
}

impl Prague {
    /// Fresh state in scalable (L4S) mode.
    pub fn new(p: &CcParams) -> Prague {
        Prague {
            w: Window::new(p),
            alpha: 1.0,
            ce_acked: 0,
            window_acked: 0,
            round_end: 1,
            srtt_ns: 0,
            rtt_min_ns: u64::MAX,
            stale_round: false,
            clean_samples: 0,
            round_inflated: false,
            round_loss: false,
            evidence: 0,
            stale_evidence: 0,
            coexist_evidence: 0,
            clear_rounds: 0,
            fallbacks: 0,
            fallback: false,
        }
    }

    /// Classify a finished observation round by its CE-mark fraction, the
    /// staleness of its marks, whether the marks came from a deep queue,
    /// and whether the round also lost packets.
    fn classify_round(&mut self, frac: f64, stale: bool, inflated: bool, lossy: bool) {
        let coexist = frac > 0.0 && frac < CLASSIC_FRAC_MAX && lossy;
        if coexist {
            // Sparsely marked and tail-dropped in the same window: the
            // marking queue overflowed while its signal was still a trickle,
            // so the signal lags the real occupancy — the RTT-free classic
            // signature (see COEXIST_DETECT). Independent of the fraction
            // branches below: a coexist round may also be stale or inflated.
            self.coexist_evidence = self.coexist_evidence.saturating_add(1);
        }
        if frac > 0.0 && stale {
            // A marked packet whose own RTT shows no queueing delay: the
            // strongest classic-AQM signature, at any mark fraction. Never
            // decays — a step AQM cannot produce this observation.
            self.stale_evidence = self.stale_evidence.saturating_add(1);
            self.clear_rounds = 0;
        } else if frac > 0.0 && frac < CLASSIC_FRAC_MAX && inflated {
            // Sparse marking out of a deep queue: the classic
            // probabilistic-ramp signature. Sparse marks at *shallow* RTTs
            // are the DualQ coupling (ramp-shaped on purpose) and stay
            // neutral — they neither add evidence nor clear the episode.
            self.evidence = self.evidence.saturating_add(1);
            self.clear_rounds = 0;
        } else if frac == 0.0 {
            self.clear_rounds = self.clear_rounds.saturating_add(1);
            if self.clear_rounds >= CLEAR_ROUNDS {
                // Episode over: re-engage the scalable response and rearm
                // the sparse classifier for a future episode (sparse rounds
                // must be consecutive-ish; a step AQM's occasional
                // threshold-straddling round must not accumulate forever).
                self.evidence = 0;
                self.fallback = false;
            }
        } else if frac >= CLASSIC_FRAC_MAX {
            // Dense fresh marking (step/L4S signature): decay the evidence.
            self.evidence = self.evidence.saturating_sub(1);
            self.clear_rounds = 0;
        } else {
            // Sparse marking at shallow RTT: consistent with the DualQ
            // coupled ramp, so neutral — but the round was marked, so it
            // must not count toward ending an episode either.
            self.clear_rounds = 0;
        }
        // Only a round that could have *added* evidence may open an episode:
        // retained stale evidence plus a mark-free round must not re-trigger.
        let classic_round =
            frac > 0.0 && (stale || coexist || (frac < CLASSIC_FRAC_MAX && inflated));
        if classic_round
            && !self.fallback
            && (self.evidence >= DETECT_ROUNDS
                || self.stale_evidence >= STALE_DETECT
                || self.coexist_evidence >= COEXIST_DETECT)
        {
            self.fallback = true;
            self.fallbacks += 1;
        }
    }
}

impl CongestionController for Prague {
    fn alg(&self) -> CcAlg {
        CcAlg::Prague
    }
    fn cwnd(&self) -> f64 {
        self.w.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.w.ssthresh
    }
    fn alpha(&self) -> f64 {
        self.alpha
    }
    fn fallback_count(&self) -> u64 {
        self.fallbacks
    }
    fn in_fallback(&self) -> bool {
        self.fallback
    }

    fn on_ack(&mut self, p: &CcParams, newly: u64, _now_ns: u64) {
        if self.w.cwnd < self.w.ssthresh {
            self.w.cwnd += p.mss.min(newly as f64);
            return;
        }
        // RTT independence: additive increase normalized to the virtual RTT,
        // so a 100 µs datacenter flow does not grow 250× faster (per wall
        // clock) than the 25 ms reference. Fallback mode restores classic
        // Reno growth to match the competition.
        let scale = if self.fallback || self.srtt_ns == 0 {
            1.0
        } else {
            let r = self.srtt_ns as f64 / RTT_VIRT_NS;
            (r * r).min(1.0)
        };
        self.w.cwnd += scale * p.mss * p.mss / self.w.cwnd;
    }

    fn on_ce_feedback(&mut self, p: &CcParams, newly: u64, ce: bool, ack: u64, snd_nxt: u64) {
        self.window_acked += newly;
        if ce {
            self.ce_acked += newly;
        }
        if ack >= self.round_end {
            if self.window_acked > 0 {
                let f = self.ce_acked as f64 / self.window_acked as f64;
                let g = p.dctcp_g;
                self.alpha = (1.0 - g) * self.alpha + g * f;
                let stale = self.stale_round;
                // Without a clean floor (no RTT samples yet) the depth of
                // the marking queue is unknowable — keep the pre-floor
                // behavior of trusting the fraction alone.
                let inflated = self.round_inflated || self.rtt_min_ns == u64::MAX;
                let lossy = self.round_loss;
                self.classify_round(f, stale, inflated, lossy);
            }
            self.ce_acked = 0;
            self.window_acked = 0;
            self.stale_round = false;
            self.round_inflated = false;
            self.round_loss = false;
            self.round_end = snd_nxt;
        }
    }

    fn on_ece(&mut self, p: &CcParams) -> bool {
        if self.fallback {
            // Classic-AQM episode: respond like Reno so classic flows
            // sharing the bottleneck get their fair share.
            self.w.reno_ece(p);
        } else {
            self.w.cwnd = (self.w.cwnd * (1.0 - self.alpha / 2.0)).max(p.mss);
            self.w.ssthresh = self.w.cwnd;
        }
        true
    }

    fn on_rtt_sample(&mut self, _p: &CcParams, rtt_ns: u64, _now_ns: u64, ce: bool) {
        self.srtt_ns = rtt_ns;
        // Staleness is judged against the propagation floor established by
        // earlier *clean* samples: a first-ever sample can never look stale,
        // and a marked sample never updates the floor (the packet stood in
        // the marking queue, so its RTT is not a propagation estimate — and
        // folding it in would collapse the floor exactly when the drained
        // queue makes repeated stale observations possible).
        let prior_min = self.rtt_min_ns;
        // The floor must be mature before either RTT judgment is trusted
        // (see MIN_CLEAN_FLOOR): cumulative-ACK samples taken under loss
        // recovery carry head-of-line blocking, not path RTT.
        let floor_ready = prior_min != u64::MAX && self.clean_samples >= MIN_CLEAN_FLOOR;
        if ce {
            if floor_ready && (rtt_ns as f64) < prior_min as f64 * STALE_RTT_FACTOR {
                // This packet was CE-marked yet its RTT undercuts every clean
                // sample the connection has seen: the mark came from an
                // averaged queue that had already drained.
                self.stale_round = true;
            }
            if floor_ready && (rtt_ns as f64) > prior_min as f64 * CLASSIC_RTT_INFLATION {
                // Marked out of a deep queue: the round's sparse marks (if
                // sparse it is) may count as classic-ramp evidence.
                self.round_inflated = true;
            }
        } else {
            self.rtt_min_ns = prior_min.min(rtt_ns);
            self.clean_samples = self.clean_samples.saturating_add(1);
        }
    }

    fn on_loss(&mut self, p: &CcParams, flight: u64) {
        self.round_loss = true;
        self.w.reno_loss(p, flight);
    }
    fn on_partial_ack(&mut self, p: &CcParams, newly: u64) {
        self.w.partial_ack(p, newly);
    }
    fn on_recovery_dupack(&mut self, p: &CcParams) {
        self.w.cwnd += p.mss;
    }
    fn undo_recovery_dupack(&mut self, p: &CcParams) {
        self.w.cwnd -= p.mss;
    }
    fn on_recovery_exit(&mut self, _p: &CcParams) {
        self.w.cwnd = self.w.ssthresh;
    }
    fn on_rto(&mut self, p: &CcParams, flight: u64) {
        self.round_loss = true;
        self.w.rto(p, flight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_params;

    /// Feed one observation round with the given CE fraction (by bytes).
    fn round(pr: &mut Prague, p: &CcParams, frac: f64) {
        let total = 14600u64;
        let ce = (total as f64 * frac) as u64;
        // Two ACKs per round: first carries the CE bytes, second closes the
        // round at `round_end`.
        let end = pr.round_end;
        pr.on_ce_feedback(p, ce, true, end - 1, end + total);
        pr.on_ce_feedback(p, total - ce, false, end, end + total);
    }

    /// Feed enough clean RTT samples at `rtt_ns` that the floor is mature
    /// and the RTT-based judgments (stale, inflation) engage.
    fn mature_floor(pr: &mut Prague, p: &CcParams, rtt_ns: u64) {
        for _ in 0..MIN_CLEAN_FLOOR {
            pr.on_rtt_sample(p, rtt_ns, 0, false);
        }
    }

    #[test]
    fn sparse_marking_rounds_trigger_exactly_one_fallback() {
        let p = test_params();
        let mut pr = Prague::new(&p);
        assert!(!pr.in_fallback());
        // A classic-AQM episode: many consecutive rounds of sparse marking.
        for i in 0..20 {
            round(&mut pr, &p, 0.1);
            if i < DETECT_ROUNDS as usize - 1 {
                assert!(!pr.in_fallback(), "needs {DETECT_ROUNDS} rounds");
            }
        }
        assert!(pr.in_fallback());
        assert_eq!(
            pr.fallback_count(),
            1,
            "one flip per episode, not per round"
        );
    }

    #[test]
    fn episode_end_and_new_episode_counts_again() {
        let p = test_params();
        let mut pr = Prague::new(&p);
        for _ in 0..DETECT_ROUNDS {
            round(&mut pr, &p, 0.1);
        }
        assert!(pr.in_fallback());
        // Mark-free rounds end the episode.
        for _ in 0..CLEAR_ROUNDS {
            round(&mut pr, &p, 0.0);
        }
        assert!(!pr.in_fallback(), "episode must end after clear rounds");
        assert_eq!(pr.fallback_count(), 1);
        // A second classic episode is detected and counted separately.
        for _ in 0..DETECT_ROUNDS {
            round(&mut pr, &p, 0.15);
        }
        assert!(pr.in_fallback());
        assert_eq!(pr.fallback_count(), 2);
    }

    #[test]
    fn recovery_needs_consecutive_clear_rounds_then_restores_scalable_ece() {
        let p = test_params();
        let mut pr = Prague::new(&p);
        for _ in 0..DETECT_ROUNDS {
            round(&mut pr, &p, 0.1);
        }
        assert!(pr.in_fallback());

        // While fallen back, ECE gets the Reno response: cwnd drops to
        // exactly half (ssthresh = cwnd/2, cwnd = ssthresh).
        pr.w.cwnd = 100.0 * p.mss;
        pr.on_ece(&p);
        assert!(
            (pr.cwnd() - 50.0 * p.mss).abs() < 1e-9,
            "fallback ECE must halve, got {} mss",
            pr.cwnd() / p.mss
        );

        // CLEAR_ROUNDS - 1 mark-free rounds are not enough to recover...
        for i in 1..CLEAR_ROUNDS {
            round(&mut pr, &p, 0.0);
            assert!(pr.in_fallback(), "recovered after only {i} clear rounds");
        }
        // ...and a single sparse-marked round resets the streak, so the
        // next CLEAR_ROUNDS - 1 clear rounds still don't end the episode.
        round(&mut pr, &p, 0.1);
        for _ in 1..CLEAR_ROUNDS {
            round(&mut pr, &p, 0.0);
        }
        assert!(pr.in_fallback(), "clear rounds must be consecutive");

        // The CLEAR_ROUNDS-th consecutive mark-free round ends the episode.
        round(&mut pr, &p, 0.0);
        assert!(!pr.in_fallback());
        assert_eq!(pr.fallback_count(), 1, "recovery is not a new episode");

        // Recovered, the ECE response reverts to the alpha-proportional
        // scalable cut — gentler than Reno's half once alpha has decayed.
        pr.w.cwnd = 100.0 * p.mss;
        let alpha = pr.alpha();
        pr.on_ece(&p);
        let scalable = (100.0 * p.mss * (1.0 - alpha / 2.0)).max(p.mss);
        assert!(
            (pr.cwnd() - scalable).abs() < 1e-9,
            "post-recovery ECE must cut by alpha/2: got {} mss, want {} mss",
            pr.cwnd() / p.mss,
            scalable / p.mss
        );
        assert!(
            pr.cwnd() > 50.0 * p.mss,
            "decayed alpha ({alpha}) makes the scalable cut gentler than Reno"
        );
    }

    #[test]
    fn dense_step_marking_never_falls_back() {
        let p = test_params();
        let mut pr = Prague::new(&p);
        // SimpleMarking-style feedback: rounds alternate between saturated
        // marking (queue above threshold) and none (below).
        for _ in 0..50 {
            round(&mut pr, &p, 0.9);
            round(&mut pr, &p, 0.0);
        }
        assert!(!pr.in_fallback());
        assert_eq!(pr.fallback_count(), 0);
    }

    #[test]
    fn stale_marks_trigger_fallback_at_any_fraction() {
        let p = test_params();
        // Saturated rounds whose marked packets undercut the clean RTT
        // floor by more than 2x: only a lagging averaged AQM marks after
        // the queue has drained, so the detector must fire even though the
        // fraction looks L4S-dense.
        let mut pr = Prague::new(&p);
        mature_floor(&mut pr, &p, 1_000_000); // clean floor: 1 ms (congested)
        for i in 0..STALE_DETECT {
            if i > 0 {
                // Stale evidence survives mark-free gaps > CLEAR_ROUNDS.
                for _ in 0..2 * CLEAR_ROUNDS {
                    round(&mut pr, &p, 0.0);
                }
            }
            assert!(
                !pr.in_fallback(),
                "needs {STALE_DETECT} stale rounds, had {i}"
            );
            // The timed packet carried a mark at well under half the floor:
            // the queue it was "marked in" had already drained. The marked
            // sample must NOT lower the floor, or the next stale sample
            // would no longer undercut it.
            pr.on_rtt_sample(&p, 400_000, 0, true);
            round(&mut pr, &p, 1.0);
        }
        assert!(pr.in_fallback());
        assert_eq!(pr.fallback_count(), 1);

        // Marks at or above the clean floor are what a step AQM produces
        // (the marked packet stood in the marking queue): silent, at any
        // fraction.
        let mut fresh = Prague::new(&p);
        mature_floor(&mut fresh, &p, 100_000);
        for _ in 0..50 {
            fresh.on_rtt_sample(&p, 90_000, 0, true);
            round(&mut fresh, &p, 1.0);
        }
        assert!(!fresh.in_fallback());
        assert_eq!(fresh.fallback_count(), 0);
    }

    #[test]
    fn shallow_sparse_marks_are_the_dualq_coupling_and_never_fall_back() {
        let p = test_params();
        let mut pr = Prague::new(&p);
        mature_floor(&mut pr, &p, 100_000); // clean floor: 100 µs
                                            // The DualQ coupled signal: sparse ramp marks on packets whose RTT
                                            // shows only the shallow L queue (1.5x floor — no deep queue, not
                                            // stale either). Ramp-shaped on purpose, must not trigger fallback.
        for _ in 0..50 {
            pr.on_rtt_sample(&p, 150_000, 0, true);
            round(&mut pr, &p, 0.15);
        }
        assert!(!pr.in_fallback());
        assert_eq!(pr.fallback_count(), 0);
    }

    #[test]
    fn sparse_marks_from_a_deep_queue_still_fall_back() {
        let p = test_params();
        let mut pr = Prague::new(&p);
        mature_floor(&mut pr, &p, 100_000); // clean floor: 100 µs
                                            // A classic RED ramp: the same sparse fractions, but every marked
                                            // packet stood in the deep queue that marked it (6x the floor).
        for i in 0..20 {
            pr.on_rtt_sample(&p, 600_000, 0, true);
            round(&mut pr, &p, 0.15);
            if i < DETECT_ROUNDS as usize - 1 {
                assert!(!pr.in_fallback(), "needs {DETECT_ROUNDS} rounds");
            }
        }
        assert!(pr.in_fallback());
        assert_eq!(pr.fallback_count(), 1);
    }

    #[test]
    fn immature_floor_defers_rtt_judgments() {
        let p = test_params();
        let mut pr = Prague::new(&p);
        // Two clean samples taken under loss recovery: cumulative-ACK
        // head-of-line blocking reads 1 ms where propagation is 50 µs. Every
        // later fresh mark would "undercut" such a floor — with fewer than
        // MIN_CLEAN_FLOOR samples behind it, the stale judgment must stay
        // quiet.
        pr.on_rtt_sample(&p, 1_000_000, 0, false);
        pr.on_rtt_sample(&p, 1_300_000, 0, false);
        for _ in 0..50 {
            pr.on_rtt_sample(&p, 120_000, 0, true); // fresh mark, 8x under floor
            round(&mut pr, &p, 0.9);
        }
        assert!(!pr.in_fallback());
        assert_eq!(pr.fallback_count(), 0);
        // The inflation judgment is deferred the same way: sparse marks over
        // an immature (but non-empty) floor are not deep-queue evidence.
        let mut sp = Prague::new(&p);
        sp.on_rtt_sample(&p, 100_000, 0, false);
        for _ in 0..50 {
            sp.on_rtt_sample(&p, 600_000, 0, true);
            round(&mut sp, &p, 0.15);
        }
        assert!(!sp.in_fallback());
        assert_eq!(sp.fallback_count(), 0);
    }

    #[test]
    fn drop_coupled_sparse_marking_triggers_fallback() {
        let p = test_params();
        // Sparse CE marks and a loss in the same round, twice: the RTT-free
        // classic signature (the queue overflowed while the marking signal
        // was still a trickle).
        let mut pr = Prague::new(&p);
        mature_floor(&mut pr, &p, 100_000);
        pr.on_loss(&p, 10 * p.mss as u64);
        round(&mut pr, &p, 0.1);
        assert!(!pr.in_fallback(), "needs {COEXIST_DETECT} coexist rounds");
        // Evidence never decays: clear rounds in between don't erase it.
        for _ in 0..2 * CLEAR_ROUNDS {
            round(&mut pr, &p, 0.0);
        }
        pr.on_rto(&p, 10 * p.mss as u64);
        round(&mut pr, &p, 0.2);
        assert!(pr.in_fallback());
        assert_eq!(pr.fallback_count(), 1);

        // Loss without marks (droptail) and sparse shallow marks without
        // loss (the DualQ coupling) never coexist in a round: silent.
        let mut droptail = Prague::new(&p);
        mature_floor(&mut droptail, &p, 100_000);
        for _ in 0..20 {
            droptail.on_loss(&p, 10 * p.mss as u64);
            round(&mut droptail, &p, 0.0);
        }
        assert_eq!(droptail.fallback_count(), 0);

        // Dense marks plus loss is a step AQM whose shallow buffer an incast
        // burst blew straight through: the instantaneous queue sat far above
        // the threshold, so the overflow round arrives saturated with marks.
        // Congestion, not a lagging signal — silent.
        let mut step = Prague::new(&p);
        mature_floor(&mut step, &p, 100_000);
        for _ in 0..20 {
            step.on_loss(&p, 10 * p.mss as u64);
            round(&mut step, &p, 0.9);
            round(&mut step, &p, 0.0);
        }
        assert_eq!(step.fallback_count(), 0);
    }

    #[test]
    fn fallback_switches_ce_response_to_halving() {
        let p = test_params();
        let mut pr = Prague::new(&p);
        pr.w.cwnd = 100.0 * p.mss;
        pr.w.ssthresh = 100.0 * p.mss;
        pr.alpha = 0.1;
        let scalable = pr.w.cwnd * (1.0 - 0.1 / 2.0);
        assert!(pr.on_ece(&p));
        assert!((pr.cwnd() - scalable).abs() < 1e-9, "scalable response");
        pr.fallback = true;
        let before = pr.cwnd();
        assert!(pr.on_ece(&p));
        assert!((pr.cwnd() - before / 2.0).abs() < 1e-9, "classic response");
    }

    #[test]
    fn rtt_independence_scales_growth_below_virtual_rtt() {
        let p = test_params();
        let mut fast = Prague::new(&p);
        let mut slow = Prague::new(&p);
        for pr in [&mut fast, &mut slow] {
            pr.w.cwnd = 50.0 * p.mss;
            pr.w.ssthresh = 50.0 * p.mss;
        }
        fast.on_rtt_sample(&p, 2_500_000, 0, false); // 2.5 ms: 1/10 of virtual RTT
        slow.on_rtt_sample(&p, 25_000_000, 0, false); // exactly the virtual RTT
        let w0 = fast.cwnd();
        fast.on_ack(&p, 1460, 0);
        slow.on_ack(&p, 1460, 0);
        let fast_gain = fast.cwnd() - w0;
        let slow_gain = slow.cwnd() - w0;
        assert!(
            (fast_gain * 100.0 - slow_gain).abs() < 1e-9,
            "per-ack growth must scale by (rtt/rtt_virt)^2: {fast_gain} vs {slow_gain}"
        );
    }
}
