//! Deterministic workspace walker.
//!
//! Collects every `.rs` file under `<root>/crates/`, sorted, skipping build
//! output (`target/`) and the linter's own test fixtures (`fixtures/` under
//! `crates/simlint` — those files contain violations *on purpose*). Fixture
//! directories of *other* crates (e.g. `simtrace`'s trace fixtures) are
//! ordinary sources: they are scanned, with the test-path SL004 exemption
//! applying as usual.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into, anywhere.
const SKIP_DIRS: &[&str] = &["target", ".git"];

/// Collect workspace-relative paths (forward slashes) of all Rust sources
/// under `root/crates`, sorted for deterministic output.
pub fn rust_sources(root: &Path) -> Result<Vec<String>, String> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(format!(
            "{} has no crates/ directory — pass the workspace root with --root",
            root.display()
        ));
    }
    let mut files = Vec::new();
    collect(&crates, &mut files)?;
    let mut rel: Vec<String> = files
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(root).ok().map(|r| {
                r.components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/")
            })
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    // Sort directory entries so traversal order never depends on the
    // filesystem.
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            // The linter's own fixture corpus violates rules on purpose.
            if name == "fixtures" && path.components().any(|c| c.as_os_str() == "simlint") {
                continue;
            }
            collect(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_sorted_without_fixtures() {
        // CARGO_MANIFEST_DIR = crates/simlint → workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let files = rust_sources(root).expect("walk succeeds");
        assert!(files.iter().any(|f| f == "crates/simlint/src/lexer.rs"));
        assert!(
            files.iter().all(|f| !f.contains("simlint/tests/fixtures/")),
            "the linter's own fixture corpus must never be scanned"
        );
        assert!(
            files.iter().any(|f| f.contains("simtrace/tests/fixtures/")),
            "other crates' fixture dirs are ordinary scanned sources"
        );
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walker output must be sorted");
    }

    #[test]
    fn missing_crates_dir_is_an_error() {
        assert!(rust_sources(Path::new("/nonexistent-simlint-root")).is_err());
    }
}
