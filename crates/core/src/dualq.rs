//! L4S DualQ coupled AQM (RFC 9332) with the paper's protection modes on
//! the classic queue.

use crate::config::DualQConfig;
use netpacket::{
    packet_event, ConservationCheck, EnqueueOutcome, Packet, PacketKind, QueueDiscipline,
    QueueStats,
};
use simevent::SimTime;
use simtrace::{EventKind, TraceHandle, NO_QUEUE};
use std::collections::VecDeque;

/// Past this many elapsed `Tupdate` periods the lazy timer resets the PI
/// state instead of replaying the idle gap step by step.
const IDLE_RESET_STEPS: u64 = 64;

/// The DualQ coupled AQM: one buffer, two service queues.
///
/// * Packets carrying the L4S identifier (ECT(1) or CE, RFC 9331) enter the
///   **L queue**; everything else — ECT(0), Non-ECT, i.e. classic TCP,
///   DCTCP and all the control packets the paper cares about — enters the
///   **classic queue**. Both share one physical buffer.
/// * A PI controller steers the **base probability** `p'` from the queuing
///   delay every `Tupdate`. Classic traffic is signalled with `p_C = p'²`
///   (square law, matching classic TCP's `1/sqrt(p)` response); the L queue
///   is **coupled** to it with `p_CL = k·p'`, so L4S flows feel classic
///   congestion pressure proportionally and the two fleets share capacity.
/// * On top of the coupled signal the L queue applies a shallow **step
///   threshold** on head sojourn time — the dense, immediate marking signal
///   a scalable sender (TCP Prague, PR 7) is built for, and exactly the
///   signal shape its fall-back detector must stay silent on.
/// * The scheduler is a **time-shifted FIFO**: the L head is served unless
///   the classic head has been waiting more than `t_shift` longer, giving L
///   sub-round-trip latency without starving the classic queue.
///
/// Signalling is resolved at dequeue with Linux `dualpi2`'s deterministic
/// `recur` accumulator (add the probability; signal and subtract one on
/// overflow) — no RNG, so two runs are trivially byte-identical. L packets
/// are always markable (the identifier guarantees ECT) and are never
/// early-dropped; classic ECT packets are marked; classic non-ECT packets
/// are dropped unless exempted by the configured [`crate::ProtectionMode`] —
/// the paper's pathology and its fix, reproduced on the L4S-era AQM.
///
/// As in RFC 9332, the PI controller is driven by the **classic** queue's
/// delay only: the L queue is natively regulated by its step threshold
/// (dense marking the moment sojourn exceeds it), so feeding L delay into
/// the PI would launder the scalable signal back out through the coupling
/// as a sparse classic-shaped ramp — an all-L4S workload would then see
/// probabilistic marks on shallow-sojourn packets, exactly the signature
/// Prague's classic-AQM detector is built to fall back on. Simplification
/// vs RFC 9332: no overload drop ladder (the shared buffer's tail drop
/// bounds the damage).
#[derive(Debug)]
pub struct DualQ {
    cfg: DualQConfig,
    /// Classic queue with arrival stamps.
    cq: VecDeque<(Packet, SimTime)>,
    /// L4S (low-latency) queue with arrival stamps.
    lq: VecDeque<(Packet, SimTime)>,
    c_bytes: u64,
    l_bytes: u64,
    stats: QueueStats,
    conserve: ConservationCheck,
    /// PI base probability `p'`.
    p_base: f64,
    /// Previous update's delay sample, in seconds.
    prev_qdelay: f64,
    /// Deterministic signalling accumulators (Linux dualpi2 `recur`).
    c_recur: f64,
    l_recur: f64,
    last_update: SimTime,
    trace: TraceHandle,
    trace_q: u32,
}

impl DualQ {
    /// Build the queue. DualQ is fully deterministic (no RNG): the `recur`
    /// accumulators replace random draws.
    pub fn new(cfg: DualQConfig) -> Self {
        cfg.validate();
        DualQ {
            cfg,
            cq: VecDeque::new(),
            lq: VecDeque::new(),
            c_bytes: 0,
            l_bytes: 0,
            stats: QueueStats::default(),
            conserve: ConservationCheck::default(),
            p_base: 0.0,
            prev_qdelay: 0.0,
            c_recur: 0.0,
            l_recur: 0.0,
            last_update: SimTime::ZERO,
            trace: TraceHandle::null(),
            trace_q: NO_QUEUE,
        }
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> &DualQConfig {
        &self.cfg
    }

    /// Current PI base probability `p'`.
    pub fn base_probability(&self) -> f64 {
        self.p_base
    }

    /// Classic-queue occupancy in packets.
    pub fn classic_len(&self) -> u64 {
        self.cq.len() as u64
    }

    /// L-queue occupancy in packets.
    pub fn l4s_len(&self) -> u64 {
        self.lq.len() as u64
    }

    /// The PI controller's delay sample at instant `t`: the *classic*
    /// queue's head sojourn (RFC 9332 — see the type-level note on why the
    /// L queue must not feed the PI).
    fn qdelay_sample(&self, t: SimTime) -> f64 {
        self.cq
            .front()
            .map_or(0.0, |&(_, arr)| t.since(arr).as_secs_f64())
    }

    /// Replay elapsed `Tupdate` periods (lazy periodic timer).
    fn advance(&mut self, now: SimTime) {
        let steps = now.since(self.last_update).as_nanos() / self.cfg.t_update.as_nanos().max(1);
        if steps == 0 {
            return;
        }
        if steps > IDLE_RESET_STEPS {
            self.p_base = 0.0;
            self.prev_qdelay = 0.0;
            self.c_recur = 0.0;
            self.l_recur = 0.0;
            self.last_update = now;
            return;
        }
        for _ in 0..steps {
            let t = self.last_update + self.cfg.t_update;
            let qdelay = self.qdelay_sample(t);
            let target = self.cfg.target.as_secs_f64();
            let delta =
                self.cfg.alpha * (qdelay - target) + self.cfg.beta * (qdelay - self.prev_qdelay);
            self.p_base = (self.p_base + delta).clamp(0.0, 1.0);
            self.prev_qdelay = qdelay;
            self.last_update = t;
        }
    }

    /// Deterministic probabilistic signal: accumulate `p`, fire on overflow.
    fn recur(acc: &mut f64, p: f64) -> bool {
        *acc += p;
        if *acc >= 1.0 {
            *acc -= 1.0;
            true
        } else {
            false
        }
    }

    fn total_len(&self) -> u64 {
        (self.cq.len() + self.lq.len()) as u64
    }

    /// Record a delivery and emit its events.
    fn deliver(&mut self, p: Packet, now: SimTime) -> Option<Packet> {
        self.conserve.on_deliver(p.wire_bytes());
        self.stats.on_dequeue(PacketKind::of(&p), p.wire_bytes());
        if self.trace.is_enabled() {
            self.trace
                .emit(packet_event(EventKind::Dequeued, now, self.trace_q, &p));
        }
        self.debug_verify_conservation();
        Some(p)
    }

    fn mark(&mut self, p: &mut Packet, now: SimTime) {
        p.ecn = p.ecn.marked();
        self.stats.marked.bump(PacketKind::of(p));
        if self.trace.is_enabled() {
            self.trace
                .emit(packet_event(EventKind::Marked, now, self.trace_q, p));
        }
    }
}

impl QueueDiscipline for DualQ {
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome {
        self.advance(now);
        let kind = PacketKind::of(&packet);
        if self.total_len() >= self.cfg.capacity_packets {
            // The buffer is shared: either class can exhaust it.
            self.stats.dropped_full.bump(kind);
            if self.trace.is_enabled() {
                self.trace.emit(packet_event(
                    EventKind::DroppedFull,
                    now,
                    self.trace_q,
                    &packet,
                ));
            }
            return EnqueueOutcome::DroppedFull;
        }
        if self.trace.is_enabled() {
            self.trace.emit(packet_event(
                EventKind::Enqueued,
                now,
                self.trace_q,
                &packet,
            ));
        }
        let bytes = packet.wire_bytes();
        if packet.ecn.is_l4s() {
            self.l_bytes += bytes as u64;
            self.lq.push_back((packet, now));
        } else {
            self.c_bytes += bytes as u64;
            self.cq.push_back((packet, now));
        }
        self.conserve.on_admit(bytes);
        self.stats.on_enqueue(
            kind,
            bytes,
            false,
            self.total_len(),
            self.c_bytes + self.l_bytes,
        );
        self.debug_verify_conservation();
        EnqueueOutcome::Enqueued
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.advance(now);
        loop {
            // Time-shifted FIFO: serve the L head unless the classic head
            // arrived more than `t_shift` earlier than it.
            let serve_l = match (self.lq.front(), self.cq.front()) {
                (None, None) => return None,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(&(_, l_arr)), Some(&(_, c_arr))) => l_arr.since(c_arr) <= self.cfg.t_shift,
            };
            let popped = if serve_l {
                self.lq.pop_front()
            } else {
                self.cq.pop_front()
            };
            // The match above returned on (None, None) and picked a
            // non-empty side otherwise.
            let (mut p, arr) = popped?;
            if serve_l {
                self.l_bytes -= p.wire_bytes() as u64;
                // Step threshold on sojourn, or the coupled probability —
                // whichever fires. L packets are ECT by construction and are
                // marked, never early-dropped (RFC 9331 semantics).
                let p_cl = (self.cfg.coupling * self.p_base).min(1.0);
                let step = now.since(arr) > self.cfg.step_threshold;
                if step || Self::recur(&mut self.l_recur, p_cl) {
                    self.mark(&mut p, now);
                }
                return self.deliver(p, now);
            }
            self.c_bytes -= p.wire_bytes() as u64;
            // Classic traffic: square-law probability from the shared base.
            let p_c = (self.p_base * self.p_base).min(1.0);
            if !Self::recur(&mut self.c_recur, p_c) {
                return self.deliver(p, now);
            }
            if p.is_ect() {
                self.mark(&mut p, now);
                return self.deliver(p, now);
            }
            if self.cfg.protection.protects(&p) {
                // The paper's modification: protected non-ECT packets ride
                // out the signal instead of being head-dropped.
                return self.deliver(p, now);
            }
            self.stats.dropped_early.bump(PacketKind::of(&p));
            self.conserve.on_drop_resident(p.wire_bytes());
            if self.trace.is_enabled() {
                // Head drop: stamped at the dequeue decision, like CoDel.
                self.trace
                    .emit(packet_event(EventKind::DroppedEarly, now, self.trace_q, &p));
            }
            // Dropped: pull the next packet for the line.
        }
    }

    fn len_packets(&self) -> u64 {
        self.total_len()
    }

    fn len_bytes(&self) -> u64 {
        self.c_bytes + self.l_bytes
    }

    fn capacity_packets(&self) -> u64 {
        self.cfg.capacity_packets
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn snapshot_kinds(&self) -> [u64; 6] {
        let mut kinds = [0u64; 6];
        for (p, _) in self.cq.iter().chain(self.lq.iter()) {
            kinds[PacketKind::of(p).index()] += 1;
        }
        kinds
    }

    fn name(&self) -> String {
        format!(
            "DualQ[{}](target={},k={},cap={})",
            self.cfg.protection.label(),
            self.cfg.target,
            self.cfg.coupling,
            self.cfg.capacity_packets
        )
    }

    fn debug_verify_conservation(&self) {
        self.conserve.verify(
            "DualQ",
            &self.stats,
            self.total_len(),
            self.c_bytes + self.l_bytes,
        );
    }

    fn set_trace(&mut self, trace: TraceHandle, queue: u32) {
        self.trace = trace;
        self.trace_q = queue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionMode;
    use netpacket::{EcnCodepoint, FlowId, NodeId, PacketId, TcpFlags};
    use simevent::SimDuration;

    fn data(id: u64, ecn: EcnCodepoint) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload: 1460,
            flags: TcpFlags::ACK,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    fn ack(id: u64) -> Packet {
        Packet {
            payload: 0,
            ecn: EcnCodepoint::NotEct,
            ..data(id, EcnCodepoint::NotEct)
        }
    }

    fn cfg(protection: ProtectionMode) -> DualQConfig {
        DualQConfig {
            capacity_packets: 10_000,
            target: SimDuration::from_micros(500),
            t_update: SimDuration::from_micros(500),
            alpha: 0.16,
            beta: 3.2,
            coupling: 2.0,
            step_threshold: SimDuration::from_micros(125),
            t_shift: SimDuration::from_millis(1),
            protection,
        }
    }

    #[test]
    fn l4s_identifier_classifies_the_queues() {
        let mut q = DualQ::new(cfg(ProtectionMode::Default));
        q.enqueue(data(0, EcnCodepoint::Ect0), SimTime::ZERO);
        q.enqueue(data(1, EcnCodepoint::NotEct), SimTime::ZERO);
        q.enqueue(data(2, EcnCodepoint::Ect1), SimTime::ZERO);
        q.enqueue(data(3, EcnCodepoint::Ce), SimTime::ZERO);
        q.enqueue(ack(4), SimTime::ZERO);
        assert_eq!(q.classic_len(), 3, "ECT(0), Non-ECT and the ACK");
        assert_eq!(q.l4s_len(), 2, "ECT(1) and CE");
        assert_eq!(q.len_packets(), 5);
    }

    #[test]
    fn step_threshold_marks_l_packets_densely() {
        let mut q = DualQ::new(cfg(ProtectionMode::Default));
        for i in 0..50 {
            q.enqueue(data(i, EcnCodepoint::Ect1), SimTime::from_micros(i));
        }
        // Serve 1 ms later: sojourn far above the 125 us step threshold.
        let mut t = SimTime::from_millis(1);
        let mut out = Vec::new();
        while let Some(p) = q.dequeue(t) {
            out.push(p);
            t += SimDuration::from_micros(10);
        }
        assert_eq!(out.len(), 50, "L packets are marked, never dropped");
        assert!(
            out.iter().all(|p| p.ecn == EcnCodepoint::Ce),
            "every above-step sojourn must be marked — the dense L4S signal"
        );
    }

    #[test]
    fn sub_threshold_l_packets_pass_unmarked() {
        let mut q = DualQ::new(cfg(ProtectionMode::Default));
        for i in 0..50 {
            let t = SimTime::from_micros(i * 100);
            q.enqueue(data(i, EcnCodepoint::Ect1), t);
            // Served 20 us later: below the step, and p' is 0.
            let p = q.dequeue(t + SimDuration::from_micros(20)).unwrap();
            assert_eq!(p.ecn, EcnCodepoint::Ect1);
        }
        assert_eq!(q.stats().marked.total(), 0);
    }

    #[test]
    fn time_shifted_fifo_prefers_l_within_the_shift() {
        let mut q = DualQ::new(cfg(ProtectionMode::Default));
        // Classic head arrives first; L head 500 us later — within the 1 ms
        // shift, so L is still served first.
        q.enqueue(data(0, EcnCodepoint::Ect0), SimTime::ZERO);
        q.enqueue(data(1, EcnCodepoint::Ect1), SimTime::from_micros(500));
        let first = q.dequeue(SimTime::from_micros(600)).unwrap();
        assert_eq!(first.id.0, 1, "L wins inside the time shift");
        let second = q.dequeue(SimTime::from_micros(610)).unwrap();
        assert_eq!(second.id.0, 0);
    }

    #[test]
    fn time_shifted_fifo_does_not_starve_classic() {
        let mut q = DualQ::new(cfg(ProtectionMode::Default));
        // Classic head has waited longer than t_shift relative to the L head:
        // the classic packet is served first.
        q.enqueue(data(0, EcnCodepoint::Ect0), SimTime::ZERO);
        q.enqueue(data(1, EcnCodepoint::Ect1), SimTime::from_micros(1500));
        let first = q.dequeue(SimTime::from_micros(1600)).unwrap();
        assert_eq!(first.id.0, 0, "aged classic head beats the time shift");
    }

    #[test]
    fn classic_congestion_marks_ect0_and_drops_acks() {
        // Hot PI gains so the controller engages within the test horizon.
        let mut c = cfg(ProtectionMode::Default);
        c.alpha = 10.0;
        c.beta = 50.0;
        let mut q = DualQ::new(c);
        // Sustained classic overload: every 4th packet a non-ECT ACK.
        let mut id = 0u64;
        let mut t = SimTime::ZERO;
        for _ in 0..4000 {
            let p = if id % 4 == 0 {
                ack(id)
            } else {
                data(id, EcnCodepoint::Ect0)
            };
            let _ = q.enqueue(p, t);
            id += 1;
            t += SimDuration::from_micros(10);
            if id % 3 == 0 {
                q.dequeue(t);
            }
        }
        assert!(q.base_probability() > 0.0, "PI must engage");
        let s = q.stats();
        assert!(s.marked.get(PacketKind::Data) > 0, "ECT(0) data marked");
        assert!(
            s.dropped_early.get(PacketKind::PureAck) > 0,
            "the pathology survives into the L4S era: classic ACKs die"
        );
    }

    #[test]
    fn protection_saves_acks_in_the_classic_queue() {
        let mut c = cfg(ProtectionMode::AckSyn);
        c.alpha = 10.0;
        c.beta = 50.0;
        let mut q = DualQ::new(c);
        let mut id = 0u64;
        let mut t = SimTime::ZERO;
        for _ in 0..4000 {
            let p = if id % 4 == 0 {
                ack(id)
            } else {
                data(id, EcnCodepoint::Ect0)
            };
            let _ = q.enqueue(p, t);
            id += 1;
            t += SimDuration::from_micros(10);
            if id % 3 == 0 {
                q.dequeue(t);
            }
        }
        let s = q.stats();
        assert!(s.marked.get(PacketKind::Data) > 0);
        assert_eq!(s.dropped_early.total(), 0, "protection saves every ACK");
    }

    #[test]
    fn coupling_marks_l_traffic_under_classic_pressure() {
        // L packets served promptly (sojourn below step) while the classic
        // queue is congested: marks on L can only come from the coupled
        // probability k * p'.
        let mut c = cfg(ProtectionMode::Default);
        c.alpha = 10.0;
        c.beta = 50.0;
        // Park the classic backlog behind a huge time shift so every freshly
        // arrived L packet wins the scheduler (isolates the coupling signal
        // from the anti-starvation hand-over).
        c.t_shift = SimDuration::from_millis(10_000);
        let mut q = DualQ::new(c);
        let mut t = SimTime::ZERO;
        // Build classic backlog.
        for i in 0..500 {
            q.enqueue(data(i, EcnCodepoint::Ect0), t);
            t += SimDuration::from_micros(2);
        }
        // Now alternate: L arrival, immediate service (L wins the scheduler),
        // while classic backlog ages and drives p' up.
        let mut l_marked = 0;
        for i in 0..2000 {
            q.enqueue(data(1000 + i, EcnCodepoint::Ect1), t);
            let p = q.dequeue(t + SimDuration::from_micros(1)).unwrap();
            assert!(
                p.ecn.is_l4s(),
                "freshly-arrived L head must win the time-shifted scheduler"
            );
            if p.ecn == EcnCodepoint::Ce {
                l_marked += 1;
            }
            t += SimDuration::from_micros(10);
        }
        assert!(q.base_probability() > 0.0);
        assert!(
            l_marked > 0,
            "coupled probability must mark promptly-served L packets"
        );
    }

    #[test]
    fn shared_buffer_tail_drops_either_class() {
        let mut c = cfg(ProtectionMode::AckSyn);
        c.capacity_packets = 4;
        let mut q = DualQ::new(c);
        for i in 0..4 {
            assert!(q
                .enqueue(data(i, EcnCodepoint::Ect1), SimTime::ZERO)
                .accepted());
        }
        assert_eq!(
            q.enqueue(data(9, EcnCodepoint::Ect0), SimTime::ZERO),
            EnqueueOutcome::DroppedFull,
            "L backlog consumes the shared buffer"
        );
        assert_eq!(
            q.enqueue(data(10, EcnCodepoint::Ect1), SimTime::ZERO),
            EnqueueOutcome::DroppedFull
        );
    }

    #[test]
    fn long_idle_resets_the_controller() {
        let mut c = cfg(ProtectionMode::Default);
        c.alpha = 10.0;
        c.beta = 50.0;
        let mut q = DualQ::new(c);
        let mut t = SimTime::ZERO;
        for i in 0..2000 {
            let _ = q.enqueue(data(i, EcnCodepoint::Ect0), t);
            t += SimDuration::from_micros(10);
            if i % 3 == 0 {
                q.dequeue(t);
            }
        }
        assert!(q.base_probability() > 0.0);
        while q.dequeue(t).is_some() {}
        // Resume far beyond IDLE_RESET_STEPS update periods.
        let resume = t + SimDuration::from_millis(500);
        q.enqueue(data(99_999, EcnCodepoint::Ect0), resume);
        assert_eq!(
            q.base_probability(),
            0.0,
            "PI state must reset across a long idle gap"
        );
    }

    #[test]
    fn determinism_two_identical_runs_agree() {
        let run = || -> (Vec<u64>, u64, u64) {
            let mut q = DualQ::new(cfg(ProtectionMode::Default));
            let mut delivered = Vec::new();
            let mut t = SimTime::ZERO;
            for i in 0..3000 {
                let p = match i % 4 {
                    0 => ack(i),
                    1 => data(i, EcnCodepoint::Ect1),
                    _ => data(i, EcnCodepoint::Ect0),
                };
                let _ = q.enqueue(p, t);
                t += SimDuration::from_micros(7);
                if i % 2 == 0 {
                    if let Some(p) = q.dequeue(t) {
                        delivered.push(p.id.0);
                    }
                }
            }
            (
                delivered,
                q.stats().marked.total(),
                q.stats().dropped_early.total(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn conservation_with_head_drops() {
        let mut c = cfg(ProtectionMode::Default);
        c.alpha = 10.0;
        c.beta = 50.0;
        let mut q = DualQ::new(c);
        let mut t = SimTime::ZERO;
        let mut offered = 0u64;
        for i in 0..3000 {
            offered += 1;
            let p = match i % 4 {
                0 => ack(i),
                1 => data(i, EcnCodepoint::Ect1),
                _ => data(i, EcnCodepoint::Ect0),
            };
            let _ = q.enqueue(p, t);
            t += SimDuration::from_micros(10);
            if i % 3 == 0 {
                q.dequeue(t);
            }
        }
        while q.dequeue(t).is_some() {}
        let s = q.stats();
        assert_eq!(
            s.enqueued.total() + s.dropped_full.total(),
            offered,
            "every offered packet is either admitted or tail-dropped"
        );
        assert_eq!(
            s.enqueued.total(),
            s.dequeued.total() + s.dropped_early.total(),
            "DualQ invariant: admitted = delivered + head-dropped"
        );
        assert!(q.is_empty());
    }
}
