//! The parameter sweep behind Figures 2–4.

use crate::scenario::{
    run_scenario, BufferDepth, QueueKind, RunMetrics, ScenarioConfig, Transport,
};
use crate::simsweep::{self, SweepOptions, SweepStats};
use ecn_core::ProtectionMode;
use serde::{Deserialize, Serialize};
use simevent::SimDuration;

/// The grid of configurations a figure sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Shared cluster/workload parameters.
    pub config: ScenarioConfig,
    /// RED/marking target delays (the x-axis), in microseconds.
    pub target_delays_us: Vec<u64>,
    /// Transports to sweep (the paper uses TCP-ECN and DCTCP).
    pub transports: Vec<Transport>,
    /// Queue disciplines to sweep (the paper's three RED modes + marking).
    pub queues: Vec<QueueKind>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid {
            config: ScenarioConfig::default(),
            target_delays_us: vec![50, 100, 200, 500, 1000, 2000, 5000],
            transports: Transport::ECN_TRANSPORTS.to_vec(),
            queues: vec![
                QueueKind::Red(ProtectionMode::Default),
                QueueKind::Red(ProtectionMode::EceBit),
                QueueKind::Red(ProtectionMode::AckSyn),
                QueueKind::SimpleMarking,
            ],
        }
    }
}

impl SweepGrid {
    /// A reduced grid for tests and benches.
    pub fn tiny() -> Self {
        SweepGrid {
            config: ScenarioConfig::tiny(),
            target_delays_us: vec![100, 500, 2000],
            ..Default::default()
        }
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Transport used.
    pub transport: Transport,
    /// Queue discipline used.
    pub queue: QueueKind,
    /// Buffer depth used.
    pub depth: BufferDepth,
    /// Target delay, microseconds.
    pub delay_us: u64,
    /// Measured outputs.
    pub metrics: RunMetrics,
}

impl SweepPoint {
    /// The series label used in the paper's figure legends, e.g.
    /// `"dctcp red[ack+syn]"`.
    pub fn series(&self) -> String {
        format!("{} {}", self.transport.label(), self.queue.label())
    }
}

/// All runs needed to draw Figures 2, 3 and 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResults {
    /// The grid that produced this.
    pub grid: SweepGrid,
    /// DropTail + plain TCP baseline with shallow buffers (the denominator
    /// of every runtime/throughput normalisation in the paper).
    pub baseline_shallow: RunMetrics,
    /// DropTail + plain TCP baseline with deep buffers (the dashed line on
    /// the deep panels; the latency denominator for deep results).
    pub baseline_deep: RunMetrics,
    /// All swept points, both depths.
    pub points: Vec<SweepPoint>,
}

impl SweepResults {
    /// Baseline for a depth.
    pub fn baseline(&self, depth: BufferDepth) -> &RunMetrics {
        match depth {
            BufferDepth::Shallow => &self.baseline_shallow,
            BufferDepth::Deep => &self.baseline_deep,
        }
    }

    /// Points of one depth, in grid order.
    pub fn at_depth(&self, depth: BufferDepth) -> impl Iterator<Item = &SweepPoint> {
        self.points.iter().filter(move |p| p.depth == depth)
    }

    /// Find one point.
    pub fn point(
        &self,
        transport: Transport,
        queue: QueueKind,
        depth: BufferDepth,
        delay_us: u64,
    ) -> Option<&SweepPoint> {
        self.points.iter().find(|p| {
            p.transport == transport
                && p.queue == queue
                && p.depth == depth
                && p.delay_us == delay_us
        })
    }
}

/// The paper's normalisation baseline for one depth: DropTail with plain
/// TCP. The 500 µs target delay is inert for DropTail (nothing marks), but
/// keeps the plumbing identical to the swept points.
pub fn run_baseline(cfg: &ScenarioConfig, depth: BufferDepth) -> RunMetrics {
    run_scenario(
        cfg,
        Transport::Tcp,
        QueueKind::DropTail,
        depth,
        SimDuration::from_micros(500),
    )
}

/// True when `SWEEP_TIMING=1`: print per-point wall-clock timing to stderr
/// (there is no logging framework in this workspace, so this stands in for
/// debug-level logging).
fn timing_enabled() -> bool {
    std::env::var_os("SWEEP_TIMING").is_some_and(|v| v == "1")
}

/// The content-addressed cache key of one scenario point: everything that
/// determines its [`RunMetrics`]. The [`ScenarioConfig`] carries the seed
/// (and seed count), so a `--seed` override changes every key. The crate
/// version and cache schema are added by the orchestrator's envelope
/// ([`simsweep::key_json`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PointKey {
    /// Shared cluster/workload parameters, seed included.
    pub config: ScenarioConfig,
    /// Transport of this point.
    pub transport: Transport,
    /// Queue discipline of this point.
    pub queue: QueueKind,
    /// Buffer depth of this point.
    pub depth: BufferDepth,
    /// RED/marking target delay, microseconds.
    pub delay_us: u64,
}

/// The two DropTail baselines, expressed as ordinary points so they flow
/// through the same worker pool and cache as the grid.
fn baseline_key(cfg: &ScenarioConfig, depth: BufferDepth) -> PointKey {
    PointKey {
        config: cfg.clone(),
        transport: Transport::Tcp,
        queue: QueueKind::DropTail,
        depth,
        delay_us: 500,
    }
}

fn eval_point(key: &PointKey) -> RunMetrics {
    let timing = timing_enabled();
    let start = std::time::Instant::now();
    let metrics = run_scenario(
        &key.config,
        key.transport,
        key.queue,
        key.depth,
        SimDuration::from_micros(key.delay_us),
    );
    if timing {
        eprintln!(
            "sweep point {} {} {} {}us: {:.3}s",
            key.transport.label(),
            key.queue.label(),
            key.depth.label(),
            key.delay_us,
            start.elapsed().as_secs_f64(),
        );
    }
    metrics
}

/// Run the full grid (both buffer depths plus the two DropTail baselines).
///
/// Every point is an independent deterministic simulation, so the grid is
/// evaluated in parallel; this convenience wrapper uses one worker per core
/// and no cache. Set `SWEEP_TIMING=1` to print each point's wall-clock time
/// to stderr.
pub fn sweep(grid: &SweepGrid) -> SweepResults {
    sweep_with(grid, &SweepOptions::default()).0
}

/// Run the full grid through the [`simsweep`] orchestrator: points execute
/// on `opts.jobs` workers (0 = all cores), results merge in grid order (so
/// the output is byte-identical to a serial run), and — when `opts.cache`
/// names a directory — previously computed points load from the
/// content-addressed cache instead of executing.
pub fn sweep_with(grid: &SweepGrid, opts: &SweepOptions) -> (SweepResults, SweepStats) {
    let cfg = &grid.config;
    // Baselines first (the paper normalises against DropTail with plain
    // TCP), then the grid in its canonical nested order.
    let mut keys = vec![
        baseline_key(cfg, BufferDepth::Shallow),
        baseline_key(cfg, BufferDepth::Deep),
    ];
    for depth in BufferDepth::ALL {
        for &transport in &grid.transports {
            for &queue in &grid.queues {
                for &delay_us in &grid.target_delays_us {
                    keys.push(PointKey {
                        config: cfg.clone(),
                        transport,
                        queue,
                        depth,
                        delay_us,
                    });
                }
            }
        }
    }

    let (mut metrics, stats) = simsweep::run_points(&keys, opts, eval_point);
    let points: Vec<SweepPoint> = keys
        .drain(2..)
        .zip(metrics.drain(2..))
        .map(|(k, m)| SweepPoint {
            transport: k.transport,
            queue: k.queue,
            depth: k.depth,
            delay_us: k.delay_us,
            metrics: m,
        })
        .collect();
    let baseline_deep = metrics.pop().expect("deep baseline");
    let baseline_shallow = metrics.pop().expect("shallow baseline");

    (
        SweepResults {
            grid: grid.clone(),
            baseline_shallow,
            baseline_deep,
            points,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_has_full_grid() {
        let mut grid = SweepGrid::tiny();
        grid.target_delays_us = vec![500];
        grid.transports = vec![Transport::TcpEcn];
        grid.queues = vec![
            QueueKind::Red(ProtectionMode::Default),
            QueueKind::SimpleMarking,
        ];
        let res = sweep(&grid);
        assert_eq!(res.points.len(), 2 * 2); // 2 queues x 2 depths
        assert!(res.baseline_shallow.completed);
        assert!(res.baseline_deep.completed);
        assert!(res.points.iter().all(|p| p.metrics.completed));
        assert!(res
            .point(
                Transport::TcpEcn,
                QueueKind::SimpleMarking,
                BufferDepth::Deep,
                500
            )
            .is_some());
        assert_eq!(res.at_depth(BufferDepth::Shallow).count(), 2);
    }

    #[test]
    fn series_labels() {
        let p = SweepPoint {
            transport: Transport::Dctcp,
            queue: QueueKind::Red(ProtectionMode::AckSyn),
            depth: BufferDepth::Shallow,
            delay_us: 500,
            metrics: RunMetrics {
                runtime_s: 1.0,
                throughput_per_node_bps: 1.0,
                mean_latency_s: 1.0,
                p99_latency_s: 1.0,
                acks_early_dropped: 0,
                handshake_early_dropped: 0,
                data_marked: 0,
                full_drops: 0,
                timeouts: 0,
                fast_retransmits: 0,
                syn_retransmits: 0,
                cc_fallbacks: 0,
                completed: true,
            },
        };
        assert_eq!(p.series(), "dctcp red[ack+syn]");
    }
}
