//! Property-based tests of the core invariants, across crates.

use hadoop_ecn::prelude::*;
use netpacket::{PacketId, QueueDiscipline};
use proptest::prelude::*;

/// Arbitrary packet kinds weighted like shuffle traffic.
fn arb_packet() -> impl Strategy<Value = Packet> {
    (0u8..10, any::<u64>()).prop_map(|(kind, id)| {
        let (payload, flags, ecn) = match kind {
            0..=5 => (1460, TcpFlags::ACK, EcnCodepoint::Ect0), // ECT data
            6 => (1460, TcpFlags::ACK, EcnCodepoint::NotEct),   // plain-TCP data
            7 => (0, TcpFlags::ACK, EcnCodepoint::NotEct),      // pure ACK
            8 => (0, TcpFlags::ACK | TcpFlags::ECE, EcnCodepoint::NotEct), // ECE ACK
            _ => (0, TcpFlags::ecn_setup_syn(), EcnCodepoint::NotEct), // SYN
        };
        Packet {
            id: PacketId(id),
            flow: FlowId(id % 13),
            src: NodeId(0),
            dst: NodeId(1),
            seq: id,
            ack: 1,
            payload,
            flags,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    })
}

/// Ops: enqueue a packet or dequeue.
#[derive(Debug, Clone)]
enum Op {
    Enq(Packet),
    Deq,
}

fn arb_ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![3 => arb_packet().prop_map(Op::Enq), 1 => Just(Op::Deq)],
        1..n,
    )
}

fn qdiscs() -> Vec<Box<dyn QueueDiscipline + Send>> {
    vec![
        Box::new(DropTail::new(32)),
        Box::new(Red::new(
            RedConfig::from_target_delay(
                SimDuration::from_micros(200),
                1_000_000_000,
                1526,
                32,
                ProtectionMode::Default,
            ),
            7,
        )),
        Box::new(Red::new(
            RedConfig::from_target_delay(
                SimDuration::from_micros(200),
                1_000_000_000,
                1526,
                32,
                ProtectionMode::EceBit,
            ),
            7,
        )),
        Box::new(Red::new(
            RedConfig::from_target_delay(
                SimDuration::from_micros(200),
                1_000_000_000,
                1526,
                32,
                ProtectionMode::AckSyn,
            ),
            7,
        )),
        Box::new(SimpleMarking::new(SimpleMarkingConfig {
            capacity_packets: 32,
            threshold_packets: 8,
        })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every offered packet is enqueued or dropped; every
    /// enqueued packet is dequeued or resident; occupancy respects capacity.
    #[test]
    fn qdisc_conservation(ops in arb_ops(300)) {
        for mut q in qdiscs() {
            let mut offered = 0u64;
            let mut t = 0u64;
            for op in &ops {
                t += 100;
                match op {
                    Op::Enq(p) => {
                        offered += 1;
                        let _ = q.enqueue(p.clone(), SimTime::from_nanos(t));
                    }
                    Op::Deq => {
                        let _ = q.dequeue(SimTime::from_nanos(t));
                    }
                }
                prop_assert!(q.len_packets() <= q.capacity_packets(),
                    "{} exceeded capacity", q.name());
            }
            let s = q.stats();
            prop_assert_eq!(s.enqueued.total() + s.dropped_total(), offered, "{}", q.name());
            prop_assert_eq!(s.enqueued.total(), s.dequeued.total() + q.len_packets(), "{}", q.name());
            let resident_by_kind: u64 = q.snapshot_kinds().iter().sum();
            prop_assert_eq!(resident_by_kind, q.len_packets());
        }
    }

    /// The paper's protection hierarchy, as a property: over any traffic,
    /// ack+syn never early-drops ACK/SYN; marking never early-drops at all;
    /// nobody ever early-drops ECT data.
    #[test]
    fn protection_hierarchy(ops in arb_ops(300)) {
        for mut q in qdiscs() {
            let mut t = 0u64;
            for op in &ops {
                t += 100;
                match op {
                    // Restrict to ECN-negotiated traffic (no plain-TCP data):
                    // the property "data is marked, never early-dropped" is
                    // about ECT data specifically.
                    Op::Enq(p) if p.payload > 0 && !p.is_ect() => {}
                    Op::Enq(p) => { let _ = q.enqueue(p.clone(), SimTime::from_nanos(t)); }
                    Op::Deq => { let _ = q.dequeue(SimTime::from_nanos(t)); }
                }
            }
            let s = q.stats();
            prop_assert_eq!(s.dropped_early.get(PacketKind::Data), 0,
                "{}: ECT data must never be early-dropped", q.name());
            let name = q.name();
            if name.starts_with("RED[ack+syn]") {
                prop_assert_eq!(s.dropped_early.get(PacketKind::PureAck), 0);
                prop_assert_eq!(s.dropped_early.get(PacketKind::Syn), 0);
            }
            if name.starts_with("SimpleMarking") {
                prop_assert_eq!(s.dropped_early.total(), 0);
            }
            // Marks only ever land on ECT packets => never on pure ACK/SYN
            // (which are Non-ECT in this traffic model).
            prop_assert_eq!(s.marked.get(PacketKind::PureAck), 0);
            prop_assert_eq!(s.marked.get(PacketKind::Syn), 0);
        }
    }

    /// End-to-end transport invariant: whatever single-flow size we pick, the
    /// receiver ends up with exactly that many bytes, over a lossy RED path.
    #[test]
    fn transfer_is_exact(bytes in 1u64..400_000, seed in 0u64..50) {
        let net = Network::new(ClusterSpec::single_rack(
            2,
            LinkSpec::gbps(1, 5),
            QdiscSpec::Red(RedConfig::from_target_delay(
                SimDuration::from_micros(100),
                1_000_000_000,
                1526,
                16,
                ProtectionMode::Default,
            )),
            seed,
        ));
        let app = StaticFlows::all_at_zero(
            vec![(NodeId(0), NodeId(1), bytes)],
            TcpConfig::with_ecn(EcnMode::Ecn),
        );
        let mut sim = Simulation::new(net, app);
        let report = sim.run();
        prop_assert!(report.app_done);
        prop_assert_eq!(sim.net.total_bytes_received(), bytes);
    }

    /// The latency histogram's mean always lies within [min, max].
    #[test]
    fn histogram_mean_bounded(samples in prop::collection::vec(0u64..10_000_000_000, 1..200)) {
        let mut h = simmetrics::LatencyHistogram::new();
        for s in &samples {
            h.record(SimDuration::from_nanos(*s));
        }
        prop_assert!(h.mean() >= h.min());
        prop_assert!(h.mean() <= h.max());
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    /// Reassembly: any permutation of segments yields the full contiguous
    /// prefix, with nothing left buffered.
    #[test]
    fn reassembly_any_order(perm in Just((0u64..60).collect::<Vec<_>>()).prop_shuffle()) {
        let mut r = tcpstack::Reassembly::new(0);
        for k in &perm {
            r.on_segment(k * 100, (k + 1) * 100);
        }
        prop_assert_eq!(r.rcv_nxt(), 6_000);
        prop_assert_eq!(r.island_count(), 0);
        prop_assert_eq!(r.buffered_bytes(), 0);
    }
}
