#![warn(missing_docs)]

//! Datacenter traffic generators for the ECN/Hadoop reproduction.
//!
//! The paper's pathology — ECN-enabled AQMs early-dropping non-ECT packets
//! (pure ACKs, SYN, SYN-ACK) — only shows up under traffic that holds
//! switch queues at the marking threshold while short control packets cross
//! them. This crate packages the three canonical datacenter patterns that
//! do exactly that, behind one deterministic, seed-driven abstraction:
//!
//! * [`Incast`] — partition-aggregate fan-in: N responders answer one
//!   aggregator per round; late responders' SYNs meet the standing queue;
//! * [`Mixed`] — permutation elephants saturating every receiver port while
//!   Poisson mice (empirical web-search / data-mining sizes) cross them;
//! * [`Rpc`] — closed-loop request/response fan-out with per-request SLO
//!   accounting.
//!
//! Generators implement [`TrafficModel`] and never touch the network
//! directly: they ask a [`Launcher`] for flows and timers, which keeps them
//! unit-testable. [`WorkloadApp`] is the bridge that runs a model inside a
//! [`netsim::Simulation`], recording every flow into a
//! [`simmetrics::FctCollector`] (per-class FCT/slowdown percentiles) and
//! every flow group into a [`CoflowSet`] (collective completion times).

mod app;
mod coflow;
mod incast;
mod mixed;
mod model;
mod rpc;

pub use app::WorkloadApp;
pub use coflow::{CoflowSet, CoflowSummary};
pub use incast::{Incast, IncastConfig};
pub use mixed::{Mixed, MixedConfig, SizeDist};
pub use model::{class_of, FlowSpec, Launcher, TrafficModel, MOUSE_MAX_BYTES};
pub use rpc::{Rpc, RpcConfig, RpcStats, RpcSummary};
