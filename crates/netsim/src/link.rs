//! Link parameters.

use serde::{Deserialize, Serialize};
use simevent::SimDuration;

/// A directed link's physical parameters. A full-duplex cable is two of
/// these, one per direction, each with its own egress queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub delay: SimDuration,
}

impl LinkSpec {
    /// A link with the given gigabit rate and delay in microseconds.
    pub fn gbps(gbit: u64, delay_us: u64) -> LinkSpec {
        LinkSpec {
            rate_bps: gbit * 1_000_000_000,
            delay: SimDuration::from_micros(delay_us),
        }
    }

    /// Serialisation time for `bytes` on this link.
    pub fn tx_time(&self, bytes: u64) -> SimDuration {
        SimDuration::transmission(bytes, self.rate_bps)
    }

    /// Validate.
    pub fn validate(&self) {
        assert!(self.rate_bps > 0, "link rate must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_constructor() {
        let l = LinkSpec::gbps(1, 5);
        assert_eq!(l.rate_bps, 1_000_000_000);
        assert_eq!(l.delay, SimDuration::from_micros(5));
        l.validate();
    }

    #[test]
    fn tx_time_1500b_1gbps() {
        assert_eq!(
            LinkSpec::gbps(1, 0).tx_time(1500),
            SimDuration::from_micros(12)
        );
    }

    #[test]
    fn tx_time_10gbps() {
        assert_eq!(LinkSpec::gbps(10, 0).tx_time(1500).as_nanos(), 1200);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        LinkSpec {
            rate_bps: 0,
            delay: SimDuration::ZERO,
        }
        .validate();
    }
}
