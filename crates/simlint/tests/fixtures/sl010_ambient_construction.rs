//! SL010 fixture: wall-clock reads and RNG construction outside their
//! blessed homes.
//!
//! Scanned as `crates/experiments/src/probe.rs` (five SL010 sites) and as
//! `crates/simevent/src/rng.rs`, where the RNG constructions are allowed
//! and the wall-clock reads fall to SL001 instead (sim crate).

use std::time::Instant;

fn bad_timing() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

fn bad_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

// ---- clean from here down ----

fn fine(rng: &mut SimRng) -> u64 {
    // Forking the scenario-seeded stream is the blessed pattern...
    let mut fork = rng.fork();
    fork.next_u64()
}

fn fine_wrapper(seed: u64) -> SimRng {
    // ...and so is the SimRng wrapper itself.
    SimRng::seed_from_u64(seed)
}
