//! The benchmark regression gate behind the `bench_gate` bin.
//!
//! `bench_gate` runs a fixed "standard point set" (kernel microbenchmarks
//! plus the Fig. 2 shallow sweep at gate scale), emits `BENCH_5.json` in the
//! same schema as `BENCH_1.json`, and compares it against a committed
//! baseline (`BENCH_5_baseline.json`) with per-metric tolerances — exiting
//! nonzero on regression, so the repo's perf trajectory is *enforced*, not
//! just recorded.
//!
//! For `BENCH_5.json` the sweep section measures the simsweep orchestrator
//! itself: `reference_seconds` is the point set run serially (`jobs = 1`)
//! and `fast_seconds` the same set on one worker per core, with
//! `outputs_identical` asserting the two runs' metrics (and therefore any
//! JSON built from them) are equal — the determinism contract of the
//! parallel executor, measured on every gate run.
//!
//! Gate policy: wall-clock metrics may regress at most
//! [`Tolerance::wall_clock_frac`] (default 10%), throughput-style metrics
//! (events/sec, speedups) at most [`Tolerance::throughput_frac`] (default
//! 10%), and `outputs_identical` must hold outright.

use crate::scenario::{
    run_scenario_once_with, BufferDepth, Engine, QueueKind, RunMetrics, ScenarioConfig, Transport,
};
use crate::simsweep::{CacheMode, SweepOptions};
use crate::sweep::SweepGrid;
use ecn_core::ProtectionMode;
use serde::{Deserialize, Serialize};
use simevent::{CalendarQueue, EventQueue, QueueBackend, SimDuration, SimTime};
use std::time::Instant;

/// One kernel microbenchmark line (schema-compatible with `BENCH_1.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelWorkload {
    /// Events held in flight.
    pub pending: u64,
    /// Events popped during measurement.
    pub popped_events: u64,
    /// Reference binary-heap throughput.
    pub heap_events_per_sec: f64,
    /// Calendar-queue fast-path throughput.
    pub calendar_events_per_sec: f64,
    /// calendar / heap.
    pub speedup: f64,
}

/// The two kernel workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSection {
    /// Hold-and-churn schedule/pop workload.
    pub churn: KernelWorkload,
    /// Cancel-and-rearm timer workload.
    pub cancel_heavy: KernelWorkload,
}

/// The sweep wall-clock section (schema-compatible with `BENCH_1.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSection {
    /// Points in the set.
    pub points: u64,
    /// Wall-clock of the slow configuration (serial / reference engine).
    pub reference_seconds: f64,
    /// Wall-clock of the fast configuration (parallel / fast engine).
    pub fast_seconds: f64,
    /// reference / fast.
    pub speedup: f64,
    /// Both configurations produced identical metrics.
    pub outputs_identical: bool,
    /// Simulation events processed, slow configuration.
    pub reference_events: u64,
    /// Simulation events processed, fast configuration.
    pub fast_events: u64,
    /// Peak pending events, slow configuration.
    pub reference_peak_pending: u64,
    /// Peak pending events, fast configuration.
    pub fast_peak_pending: u64,
}

/// The whole report — the `BENCH_*.json` schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// What this report measures.
    pub description: String,
    /// Kernel microbenchmarks.
    pub kernel: KernelSection,
    /// Standard-point-set wall clock.
    pub sweep_fig2_shallow: SweepSection,
}

/// Per-metric regression tolerances, as fractions (0.10 = 10%).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Allowed wall-clock increase on lower-is-better metrics.
    pub wall_clock_frac: f64,
    /// Allowed loss on higher-is-better metrics (events/sec, speedups).
    pub throughput_frac: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            wall_clock_frac: 0.10,
            throughput_frac: 0.10,
        }
    }
}

/// One gated metric outside its tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Dotted metric path, e.g. `kernel.churn.calendar_events_per_sec`.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Measured value.
    pub current: f64,
    /// The bound the measured value crossed.
    pub limit: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.4} vs baseline {:.4} (limit {:.4})",
            self.metric, self.current, self.baseline, self.limit
        )
    }
}

/// Compare a measured report against the baseline. Returns every gated
/// metric outside its tolerance; empty means the gate passes.
pub fn compare(current: &BenchReport, baseline: &BenchReport, tol: &Tolerance) -> Vec<Violation> {
    let mut v = Vec::new();

    // Higher is better: must not fall more than throughput_frac below
    // the baseline.
    let mut higher = |metric: &str, cur: f64, base: f64| {
        let limit = base * (1.0 - tol.throughput_frac);
        // Non-finite on either side means a corrupt report — fail, don't pass.
        if !cur.is_finite() || !limit.is_finite() || cur < limit {
            v.push(Violation {
                metric: metric.to_string(),
                baseline: base,
                current: cur,
                limit,
            });
        }
    };
    higher(
        "kernel.churn.calendar_events_per_sec",
        current.kernel.churn.calendar_events_per_sec,
        baseline.kernel.churn.calendar_events_per_sec,
    );
    higher(
        "kernel.cancel_heavy.calendar_events_per_sec",
        current.kernel.cancel_heavy.calendar_events_per_sec,
        baseline.kernel.cancel_heavy.calendar_events_per_sec,
    );
    higher(
        "sweep_fig2_shallow.speedup",
        current.sweep_fig2_shallow.speedup,
        baseline.sweep_fig2_shallow.speedup,
    );

    // Lower is better: must not rise more than wall_clock_frac above the
    // baseline.
    let cur = current.sweep_fig2_shallow.fast_seconds;
    let base = baseline.sweep_fig2_shallow.fast_seconds;
    let limit = base * (1.0 + tol.wall_clock_frac);
    if !cur.is_finite() || !limit.is_finite() || cur > limit {
        v.push(Violation {
            metric: "sweep_fig2_shallow.fast_seconds".to_string(),
            baseline: base,
            current: cur,
            limit,
        });
    }

    // Hard invariant, no tolerance: parallel and serial outputs agree.
    if !current.sweep_fig2_shallow.outputs_identical {
        v.push(Violation {
            metric: "sweep_fig2_shallow.outputs_identical".to_string(),
            baseline: 1.0,
            current: 0.0,
            limit: 1.0,
        });
    }
    v
}

// ----- measurement -----------------------------------------------------------

/// Deterministic 64-bit LCG (MMIX constants) for microbench jitter.
struct Lcg(u64);

impl Lcg {
    fn next_below(&mut self, bound: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

fn churn<Q: QueueBackend<u64>>(mut q: Q, pending: usize, events: u64) -> f64 {
    let mut rng = Lcg(0x9E37_79B9_7F4A_7C15);
    for i in 0..pending {
        q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i as u64);
    }
    let start = Instant::now();
    for _ in 0..events {
        let (at, v) = q.pop().expect("queue held non-empty");
        q.schedule(
            at + SimDuration::from_nanos(rng.next_below(1_000_000) + 1),
            v,
        );
    }
    events as f64 / start.elapsed().as_secs_f64()
}

fn cancel_heavy<Q: QueueBackend<u64>>(mut q: Q, pending: usize, events: u64) -> f64 {
    let mut rng = Lcg(0x2545_F491_4F6C_DD1D);
    for i in 0..pending {
        q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i as u64);
    }
    let start = Instant::now();
    for _ in 0..events {
        let (at, v) = q.pop().expect("queue held non-empty");
        let h =
            q.schedule_cancellable(at + SimDuration::from_nanos(rng.next_below(500_000) + 1), v);
        q.cancel(h);
        q.schedule(
            at + SimDuration::from_nanos(rng.next_below(1_000_000) + 1),
            v,
        );
    }
    events as f64 / start.elapsed().as_secs_f64()
}

fn gate_calendar(pending: usize) -> CalendarQueue<u64> {
    let buckets = (pending / 2).next_power_of_two();
    let shift = (22u32.saturating_sub(buckets.trailing_zeros())).max(1);
    CalendarQueue::with_geometry(shift, buckets)
}

const GATE_KERNEL_SAMPLES: usize = 3;

fn kernel_workload(
    pending: usize,
    events: u64,
    heap_bench: fn(EventQueue<u64>, usize, u64) -> f64,
    cal_bench: fn(CalendarQueue<u64>, usize, u64) -> f64,
) -> KernelWorkload {
    let mut heap_runs = Vec::new();
    let mut cal_runs = Vec::new();
    for _ in 0..GATE_KERNEL_SAMPLES {
        heap_runs.push(heap_bench(EventQueue::new(), pending, events));
        cal_runs.push(cal_bench(gate_calendar(pending), pending, events));
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        v[v.len() / 2]
    };
    let heap = median(heap_runs);
    let calendar = median(cal_runs);
    KernelWorkload {
        pending: pending as u64,
        popped_events: events,
        heap_events_per_sec: heap,
        calendar_events_per_sec: calendar,
        speedup: calendar / heap,
    }
}

/// The gate's standard point set: the Fig. 2 shallow grid at tiny scale,
/// single seed per point so the set stays CI-cheap. 19 points (one DropTail
/// baseline plus 2 transports × 3 queues × 3 delays).
pub fn gate_grid(seed: u64) -> SweepGrid {
    let mut grid = SweepGrid::tiny();
    grid.config.seed = seed;
    grid.config.seed_count = 1;
    grid
}

fn gate_points(seed: u64) -> (ScenarioConfig, Vec<(Transport, QueueKind, u64)>) {
    let grid = gate_grid(seed);
    let mut points = vec![(Transport::Tcp, QueueKind::DropTail, 500)];
    for &transport in &grid.transports {
        for queue in [
            QueueKind::Red(ProtectionMode::Default),
            QueueKind::Red(ProtectionMode::AckSyn),
            QueueKind::SimpleMarking,
        ] {
            for &delay_us in &grid.target_delays_us {
                points.push((transport, queue, delay_us));
            }
        }
    }
    (grid.config, points)
}

/// Run the standard point set through the orchestrator with `jobs` workers
/// (cache disabled — the gate measures execution, never cache hits).
/// Returns (wall seconds, metrics, total events, peak pending).
fn run_gate_sweep(seed: u64, jobs: usize) -> (f64, Vec<RunMetrics>, u64, u64) {
    let (cfg, points) = gate_points(seed);
    let opts = SweepOptions {
        jobs,
        cache: CacheMode::Disabled,
    };
    let start = Instant::now();
    let (results, _) = crate::simsweep::run_points(&points, &opts, |&(transport, queue, delay)| {
        let (m, report) = run_scenario_once_with(
            &cfg,
            transport,
            queue,
            BufferDepth::Shallow,
            SimDuration::from_micros(delay),
            Engine::Fast,
        );
        (m, report.events, report.peak_pending as u64)
    });
    let wall = start.elapsed().as_secs_f64();
    let mut metrics = Vec::with_capacity(results.len());
    let mut events = 0u64;
    let mut peak = 0u64;
    for (m, ev, pk) in results {
        events += ev;
        peak = peak.max(pk);
        metrics.push(m);
    }
    (wall, metrics, events, peak)
}

/// Measure the full gate report: kernel microbenchmarks plus the standard
/// point set serial (`jobs = 1`) vs parallel (one worker per core).
pub fn measure(seed: u64) -> BenchReport {
    eprintln!("[bench_gate] kernel microbench (churn)...");
    let churn_w = kernel_workload(65_536, 300_000, churn, churn);
    eprintln!(
        "  heap {:.2}M ev/s, calendar {:.2}M ev/s, speedup {:.2}x",
        churn_w.heap_events_per_sec / 1e6,
        churn_w.calendar_events_per_sec / 1e6,
        churn_w.speedup,
    );
    eprintln!("[bench_gate] kernel microbench (cancel-heavy)...");
    let cancel_w = kernel_workload(65_536, 300_000, cancel_heavy, cancel_heavy);
    eprintln!(
        "  heap {:.2}M ev/s, calendar {:.2}M ev/s, speedup {:.2}x",
        cancel_w.heap_events_per_sec / 1e6,
        cancel_w.calendar_events_per_sec / 1e6,
        cancel_w.speedup,
    );

    eprintln!("[bench_gate] standard point set, serial (--jobs 1)...");
    let (serial_s, serial_metrics, serial_events, serial_peak) = run_gate_sweep(seed, 1);
    eprintln!("  {serial_s:.2}s, {serial_events} events");
    eprintln!("[bench_gate] standard point set, parallel (all cores)...");
    let (par_s, par_metrics, par_events, par_peak) = run_gate_sweep(seed, 0);
    eprintln!("  {par_s:.2}s, {par_events} events");
    let identical = serial_metrics == par_metrics;
    if !identical {
        eprintln!("[bench_gate] WARNING: serial and parallel outputs differ!");
    }

    BenchReport {
        description: "Sweep-orchestrator gate: calendar-queue kernel microbenchmarks plus the \
                      Fig. 2 shallow standard point set run serially (reference_* = --jobs 1) \
                      and on one worker per core (fast_*) through simsweep; outputs_identical \
                      asserts both runs produced identical metrics."
            .to_string(),
        kernel: KernelSection {
            churn: churn_w,
            cancel_heavy: cancel_w,
        },
        sweep_fig2_shallow: SweepSection {
            points: serial_metrics.len() as u64,
            reference_seconds: serial_s,
            fast_seconds: par_s,
            speedup: serial_s / par_s,
            outputs_identical: identical,
            reference_events: serial_events,
            fast_events: par_events,
            reference_peak_pending: serial_peak,
            fast_peak_pending: par_peak,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        BenchReport {
            description: "test".into(),
            kernel: KernelSection {
                churn: KernelWorkload {
                    pending: 1024,
                    popped_events: 1000,
                    heap_events_per_sec: 1.0e6,
                    calendar_events_per_sec: 3.0e6,
                    speedup: 3.0,
                },
                cancel_heavy: KernelWorkload {
                    pending: 1024,
                    popped_events: 1000,
                    heap_events_per_sec: 0.8e6,
                    calendar_events_per_sec: 1.6e6,
                    speedup: 2.0,
                },
            },
            sweep_fig2_shallow: SweepSection {
                points: 25,
                reference_seconds: 4.0,
                fast_seconds: 1.0,
                speedup: 4.0,
                outputs_identical: true,
                reference_events: 1_000_000,
                fast_events: 1_000_000,
                reference_peak_pending: 100,
                fast_peak_pending: 100,
            },
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report();
        assert!(compare(&r, &r, &Tolerance::default()).is_empty());
    }

    #[test]
    fn small_noise_within_tolerance_passes() {
        let base = report();
        let mut cur = report();
        cur.kernel.churn.calendar_events_per_sec *= 0.95; // -5% < 10%
        cur.sweep_fig2_shallow.fast_seconds *= 1.05; // +5% < 10%
        cur.sweep_fig2_shallow.speedup *= 0.95;
        assert!(compare(&cur, &base, &Tolerance::default()).is_empty());
    }

    #[test]
    fn inflated_baseline_fails_the_gate() {
        // The acceptance scenario: a baseline whose metrics claim 20% more
        // than we can measure must trip the gate.
        let cur = report();
        let mut base = report();
        base.kernel.churn.calendar_events_per_sec *= 1.2;
        base.kernel.cancel_heavy.calendar_events_per_sec *= 1.2;
        base.sweep_fig2_shallow.speedup *= 1.2;
        base.sweep_fig2_shallow.fast_seconds /= 1.2;
        let v = compare(&cur, &base, &Tolerance::default());
        let metrics: Vec<&str> = v.iter().map(|x| x.metric.as_str()).collect();
        assert!(metrics.contains(&"kernel.churn.calendar_events_per_sec"));
        assert!(metrics.contains(&"kernel.cancel_heavy.calendar_events_per_sec"));
        assert!(metrics.contains(&"sweep_fig2_shallow.speedup"));
        assert!(metrics.contains(&"sweep_fig2_shallow.fast_seconds"));
    }

    #[test]
    fn wall_clock_regression_fails() {
        let base = report();
        let mut cur = report();
        cur.sweep_fig2_shallow.fast_seconds = base.sweep_fig2_shallow.fast_seconds * 1.2;
        let v = compare(&cur, &base, &Tolerance::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].metric, "sweep_fig2_shallow.fast_seconds");
        assert!(v[0].to_string().contains("fast_seconds"));
    }

    #[test]
    fn divergent_outputs_fail_unconditionally() {
        let base = report();
        let mut cur = report();
        cur.sweep_fig2_shallow.outputs_identical = false;
        let v = compare(&cur, &base, &Tolerance::default());
        assert!(v
            .iter()
            .any(|x| x.metric == "sweep_fig2_shallow.outputs_identical"));
    }

    #[test]
    fn report_json_roundtrip() {
        let r = report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // Schema check: the BENCH_1.json top-level keys.
        assert!(json.contains("\"kernel\""));
        assert!(json.contains("\"sweep_fig2_shallow\""));
        assert!(json.contains("\"cancel_heavy\""));
    }

    #[test]
    fn gate_grid_is_single_seed() {
        let g = gate_grid(7);
        assert_eq!(g.config.seed, 7);
        assert_eq!(g.config.seed_count, 1);
        let (_, points) = gate_points(7);
        assert_eq!(points.len(), 1 + 2 * 3 * 3, "baseline + 2x3x3 grid");
    }
}
