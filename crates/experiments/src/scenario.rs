//! One experiment point: cluster + job + queue configuration → metrics.

use ecn_core::{
    CurvyRedConfig, DualQConfig, PieConfig, ProtectionMode, QdiscSpec, RedConfig,
    SimpleMarkingConfig,
};
use mrsim::{JobSpec, TerasortJob};
use netpacket::PacketKind;
use netsim::{ClusterSpec, LinkSpec, Network, Simulation};
use serde::{Deserialize, Serialize};
use simevent::{SimDuration, SimTime};
use tcpstack::{CcAlg, EcnMode, TcpConfig};

/// Which transport the cluster's flows run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Plain TCP (loss-signalled).
    Tcp,
    /// Classic TCP with ECN (RFC 3168).
    TcpEcn,
    /// DCTCP.
    Dctcp,
}

impl Transport {
    /// The tcpstack mode for this transport.
    pub fn ecn_mode(self) -> EcnMode {
        match self {
            Transport::Tcp => EcnMode::Off,
            Transport::TcpEcn => EcnMode::Ecn,
            Transport::Dctcp => EcnMode::Dctcp,
        }
    }

    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        self.ecn_mode().label()
    }

    /// The two ECN transports the paper's figures sweep.
    pub const ECN_TRANSPORTS: [Transport; 2] = [Transport::TcpEcn, Transport::Dctcp];
}

/// Which discipline runs on every switch egress port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueKind {
    /// FIFO tail-drop — the normalisation baseline.
    DropTail,
    /// RED with ECN and the given non-ECT protection mode.
    Red(ProtectionMode),
    /// RED configured to *mimic* a step marking scheme the way commodity
    /// switches actually run it (`min_th = max_th = K` per the DCTCP paper's
    /// recommendation, §II, but on the switch's non-bypassable EWMA-averaged
    /// queue) — still a classic RED: the lagging average smears the step
    /// into sparse marking runs, and non-ECT packets crossing the threshold
    /// are early-dropped.
    RedMimic(ProtectionMode),
    /// The paper's true simple marking scheme.
    SimpleMarking,
    /// CoDel with ECN and the given protection mode (extension: shows the
    /// pathology and its fix generalise beyond RED).
    CoDel(ProtectionMode),
    /// Curvy RED: instantaneous-queue power-law marking, drop curve =
    /// square of the mark curve (no EWMA, no min/max band to mistune).
    CurvyRed(ProtectionMode),
    /// PIE (RFC 8033): delay-based PI controller with burst allowance.
    Pie(ProtectionMode),
    /// L4S DualQ coupled AQM (RFC 9332): classic + low-latency queues,
    /// coupled marking. Pairs with the Prague controller (`--cc prague`).
    DualQ(ProtectionMode),
}

impl QueueKind {
    /// Figure-legend label.
    pub fn label(self) -> String {
        match self {
            QueueKind::DropTail => "droptail".into(),
            QueueKind::Red(m) => format!("red[{}]", m.label()),
            QueueKind::RedMimic(m) => format!("red-mimic[{}]", m.label()),
            QueueKind::SimpleMarking => "simple-marking".into(),
            QueueKind::CoDel(m) => format!("codel[{}]", m.label()),
            QueueKind::CurvyRed(m) => format!("curvy-red[{}]", m.label()),
            QueueKind::Pie(m) => format!("pie[{}]", m.label()),
            QueueKind::DualQ(m) => format!("dualq[{}]", m.label()),
        }
    }

    /// All seven core disciplines at a given protection mode — the
    /// tiny-buffer sweep's column set. `RedMimic` is RED re-parametrised,
    /// not a distinct discipline, so it is not repeated here; `DropTail`
    /// and `SimpleMarking` carry no mode (neither ever early-drops).
    pub fn all_with_mode(mode: ProtectionMode) -> [QueueKind; 7] {
        [
            QueueKind::DropTail,
            QueueKind::Red(mode),
            QueueKind::SimpleMarking,
            QueueKind::CoDel(mode),
            QueueKind::CurvyRed(mode),
            QueueKind::Pie(mode),
            QueueKind::DualQ(mode),
        ]
    }
}

/// The paper's shallow/deep buffer axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferDepth {
    /// Commodity-switch shallow buffers.
    Shallow,
    /// Deep-buffer switch.
    Deep,
}

impl BufferDepth {
    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            BufferDepth::Shallow => "shallow",
            BufferDepth::Deep => "deep",
        }
    }

    /// Both depths.
    pub const ALL: [BufferDepth; 2] = [BufferDepth::Shallow, BufferDepth::Deep];
}

/// Cluster and workload parameters shared by every point of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Racks in the cluster.
    pub racks: u32,
    /// Hosts per rack.
    pub hosts_per_rack: u32,
    /// Host ↔ ToR link.
    pub host_link: LinkSpec,
    /// ToR ↔ core link.
    pub uplink: LinkSpec,
    /// Switch buffer depth, shallow (packets).
    pub shallow_packets: u64,
    /// Switch buffer depth, deep (packets).
    pub deep_packets: u64,
    /// Terasort input per node, bytes.
    pub input_bytes_per_node: u64,
    /// Map waves.
    pub map_waves: u32,
    /// Mean wire packet size used to convert target delays to thresholds.
    pub mean_packet_bytes: u32,
    /// Max deterministic stagger of map-task completions / shuffle starts
    /// (models real Hadoop task skew; decorrelates incast bursts).
    pub shuffle_jitter: SimDuration,
    /// Congestion-control override (`--cc`). `None` keeps the transport's
    /// native pairing (DCTCP feedback → DCTCP controller, otherwise NewReno
    /// — exactly the pre-`simcc` behaviour). `Some(alg)` runs `alg` with the
    /// ECN mode it requires, keeping the transport's mode as the hint (see
    /// [`TcpConfig::with_cc`]). Part of the sweep cache key: adding the
    /// field re-keys every cached point.
    pub cc: Option<CcAlg>,
    /// Same-instant tie-break permutation seed. `None` (the default, and the
    /// production contract) pops same-timestamp events FIFO; `Some(seed)`
    /// runs the whole simulation under `TieBreak::Permuted(seed)` — the
    /// `simverify` hook that proves results are tie-break-order independent.
    /// Part of the sweep cache key like every other field.
    pub tie_seed: Option<u64>,
    /// Base RNG seed.
    pub seed: u64,
    /// Independent repetitions per point (different seeds); reported metrics
    /// are the mean. Damps the impact of individual RTO-tail events.
    pub seed_count: u32,
    /// Simulated-time wall per point.
    pub time_limit: SimTime,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            racks: 2,
            hosts_per_rack: 4,
            host_link: LinkSpec::gbps(1, 5),
            uplink: LinkSpec::gbps(10, 5),
            shallow_packets: 100, // ~150 kB/port: commodity switch
            deep_packets: 1000,   // ~1.5 MB/port: deep-buffer switch
            input_bytes_per_node: 64_000_000,
            map_waves: 4,
            mean_packet_bytes: 1526,
            shuffle_jitter: SimDuration::from_millis(10),
            cc: None,
            tie_seed: None,
            seed: 20170905, // CLUSTER 2017 conference date
            seed_count: 3,
            time_limit: SimTime::from_secs(600),
        }
    }
}

impl ScenarioConfig {
    /// A scaled-down config for fast unit tests and Criterion benches.
    pub fn tiny() -> Self {
        ScenarioConfig {
            racks: 1,
            hosts_per_rack: 4,
            input_bytes_per_node: 4_000_000,
            map_waves: 1,
            shuffle_jitter: SimDuration::from_millis(2),
            seed_count: 1,
            ..Default::default()
        }
    }

    /// Total hosts.
    pub fn hosts(&self) -> u32 {
        self.racks * self.hosts_per_rack
    }

    /// Buffer depth in packets for one side of the paper's axis.
    pub fn capacity(&self, depth: BufferDepth) -> u64 {
        match depth {
            BufferDepth::Shallow => self.shallow_packets,
            BufferDepth::Deep => self.deep_packets,
        }
    }

    /// Build the switch qdisc spec for a point.
    pub fn qdisc(
        &self,
        queue: QueueKind,
        depth: BufferDepth,
        target_delay: SimDuration,
    ) -> QdiscSpec {
        let cap = self.capacity(depth);
        match queue {
            QueueKind::DropTail => QdiscSpec::DropTail {
                capacity_packets: cap,
            },
            QueueKind::Red(mode) => QdiscSpec::Red(RedConfig::from_target_delay(
                target_delay,
                self.host_link.rate_bps,
                self.mean_packet_bytes,
                cap,
                mode,
            )),
            QueueKind::RedMimic(mode) => QdiscSpec::Red(RedConfig::dctcp_mimic_deployed(
                target_delay,
                self.host_link.rate_bps,
                self.mean_packet_bytes,
                cap,
                mode,
            )),
            QueueKind::SimpleMarking => {
                QdiscSpec::SimpleMarking(SimpleMarkingConfig::from_target_delay(
                    target_delay,
                    self.host_link.rate_bps,
                    self.mean_packet_bytes,
                    cap,
                ))
            }
            QueueKind::CoDel(mode) => QdiscSpec::CoDel(ecn_core::CoDelConfig {
                capacity_packets: cap,
                target: target_delay,
                // Data-centre tuning: the classic 100 ms interval is WAN
                // RTT scale and never arms on millisecond shuffle bursts;
                // use a few times the target, floored at 1 ms.
                interval: target_delay
                    .saturating_mul(4)
                    .max(SimDuration::from_millis(1)),
                ecn: true,
                protection: mode,
            }),
            QueueKind::CurvyRed(mode) => QdiscSpec::CurvyRed(CurvyRedConfig::from_target_delay(
                target_delay,
                self.host_link.rate_bps,
                self.mean_packet_bytes,
                cap,
                mode,
            )),
            QueueKind::Pie(mode) => {
                QdiscSpec::Pie(PieConfig::from_target_delay(target_delay, cap, mode))
            }
            QueueKind::DualQ(mode) => {
                QdiscSpec::DualQ(DualQConfig::from_target_delay(target_delay, cap, mode))
            }
        }
    }
}

/// Which simulation engine evaluates a point.
///
/// `Fast` is the optimised path (calendar-queue scheduler, slab lookups,
/// timer cancellation); `Reference` is the seed implementation (binary-heap
/// scheduler, map lookups, full-scan flushes), kept so the perf report can
/// measure before/after in one process. Both produce identical metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Optimised kernel (the default everywhere).
    Fast,
    /// Seed-faithful slow path, for benchmarking only.
    Reference,
}

/// Everything measured from one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Job runtime in seconds (paper Fig. 2; inverse of effective throughput).
    pub runtime_s: f64,
    /// Mean goodput per node during the shuffle, bits/s (paper Fig. 3).
    pub throughput_per_node_bps: f64,
    /// Mean per-packet end-to-end latency, seconds (paper Fig. 4).
    pub mean_latency_s: f64,
    /// 99th-percentile per-packet latency, seconds.
    pub p99_latency_s: f64,
    /// Pure ACKs early-dropped at switch queues (the paper's smoking gun).
    pub acks_early_dropped: u64,
    /// SYN/SYN-ACKs early-dropped.
    pub handshake_early_dropped: u64,
    /// Data packets CE-marked.
    pub data_marked: u64,
    /// All tail drops (buffer overflow).
    pub full_drops: u64,
    /// Sender retransmission timeouts.
    pub timeouts: u64,
    /// Sender fast retransmits.
    pub fast_retransmits: u64,
    /// SYN retransmissions.
    pub syn_retransmits: u64,
    /// Classic-ECN-AQM fallback episodes detected by the congestion
    /// controllers (Prague only; 0 for every other controller).
    pub cc_fallbacks: u64,
    /// Whether the job actually finished inside the time limit.
    pub completed: bool,
}

/// Run one experiment point: `seed_count` independent repetitions, averaged.
pub fn run_scenario(
    cfg: &ScenarioConfig,
    transport: Transport,
    queue: QueueKind,
    depth: BufferDepth,
    target_delay: SimDuration,
) -> RunMetrics {
    assert!(cfg.seed_count >= 1);
    let runs: Vec<RunMetrics> = (0..cfg.seed_count)
        .map(|i| {
            let mut c = cfg.clone();
            c.seed = cfg.seed.wrapping_add(i as u64 * 9973);
            run_scenario_once(&c, transport, queue, depth, target_delay)
        })
        .collect();
    average_metrics(&runs)
}

fn average_metrics(runs: &[RunMetrics]) -> RunMetrics {
    let n = runs.len() as f64;
    let fmean = |f: fn(&RunMetrics) -> f64| runs.iter().map(f).sum::<f64>() / n;
    let umean =
        |f: fn(&RunMetrics) -> u64| (runs.iter().map(f).sum::<u64>() as f64 / n).round() as u64;
    RunMetrics {
        runtime_s: fmean(|m| m.runtime_s),
        throughput_per_node_bps: fmean(|m| m.throughput_per_node_bps),
        mean_latency_s: fmean(|m| m.mean_latency_s),
        p99_latency_s: fmean(|m| m.p99_latency_s),
        acks_early_dropped: umean(|m| m.acks_early_dropped),
        handshake_early_dropped: umean(|m| m.handshake_early_dropped),
        data_marked: umean(|m| m.data_marked),
        full_drops: umean(|m| m.full_drops),
        timeouts: umean(|m| m.timeouts),
        fast_retransmits: umean(|m| m.fast_retransmits),
        syn_retransmits: umean(|m| m.syn_retransmits),
        // Max, not mean: this is a detection gate, not a load metric. "Did
        // the controller ever declare a classic AQM" must not round away a
        // single-repetition detection — and a false positive in *any*
        // repetition should fail the silence gate, not be averaged out.
        cc_fallbacks: runs.iter().map(|m| m.cc_fallbacks).max().unwrap_or(0),
        completed: runs.iter().all(|m| m.completed),
    }
}

/// One repetition of one experiment point.
pub fn run_scenario_once(
    cfg: &ScenarioConfig,
    transport: Transport,
    queue: QueueKind,
    depth: BufferDepth,
    target_delay: SimDuration,
) -> RunMetrics {
    run_scenario_once_with(cfg, transport, queue, depth, target_delay, Engine::Fast).0
}

/// One repetition on an explicit [`Engine`], also returning the simulation's
/// [`netsim::RunReport`] (event counts, peak pending events) for the perf
/// report.
pub fn run_scenario_once_with(
    cfg: &ScenarioConfig,
    transport: Transport,
    queue: QueueKind,
    depth: BufferDepth,
    target_delay: SimDuration,
    engine: Engine,
) -> (RunMetrics, netsim::RunReport) {
    run_scenario_once_traced(
        cfg,
        transport,
        queue,
        depth,
        target_delay,
        engine,
        simtrace::TraceHandle::null(),
    )
}

/// One repetition with a packet-lifecycle trace attached (`--trace`). With
/// the null handle this is exactly [`run_scenario_once_with`]; with an
/// enabled handle every switch port, host NIC and sender records into it.
pub fn run_scenario_once_traced(
    cfg: &ScenarioConfig,
    transport: Transport,
    queue: QueueKind,
    depth: BufferDepth,
    target_delay: SimDuration,
    engine: Engine,
    trace: simtrace::TraceHandle,
) -> (RunMetrics, netsim::RunReport) {
    let (m, report, _) =
        run_scenario_once_full(cfg, transport, queue, depth, target_delay, engine, trace);
    (m, report)
}

/// One repetition returning, in addition to the metrics and run report, the
/// packet-pool allocation counters — the perf gate's alloc accounting. In
/// reference mode the pool reports one heap allocation per insert (the seed
/// Box-per-packet model); pooled mode reports only slab spill.
pub fn run_scenario_once_full(
    cfg: &ScenarioConfig,
    transport: Transport,
    queue: QueueKind,
    depth: BufferDepth,
    target_delay: SimDuration,
    engine: Engine,
    trace: simtrace::TraceHandle,
) -> (RunMetrics, netsim::RunReport, netpacket::PoolStats) {
    let spec = ClusterSpec {
        racks: cfg.racks,
        hosts_per_rack: cfg.hosts_per_rack,
        host_link: cfg.host_link,
        uplink: cfg.uplink,
        switch_qdisc: cfg.qdisc(queue, depth, target_delay),
        host_buffer_packets: 4 * cfg.deep_packets,
        seed: cfg.seed,
    };
    let n = spec.total_hosts();
    // 128 kB receive windows (Hadoop-era Linux autotuning scale) bound the
    // slow-start overshoot of each shuffle flow, and SACK is off because the
    // paper's substrate (NS-2 FullTcp under MRPerf) predates it; flip
    // `sack: true` for the modern-stack ablation (`cargo bench ablations`).
    let base = match cfg.cc {
        // Controller override: run `alg` under the ECN mode it requires,
        // using the transport's mode as the hint (so `--cc cubic` with the
        // TcpEcn transport gets classic ECN, and with Tcp gets no ECN).
        Some(alg) => TcpConfig::with_cc(alg, transport.ecn_mode()),
        None => TcpConfig::with_ecn(transport.ecn_mode()),
    };
    let tcp = TcpConfig {
        recv_wnd: 128 << 10,
        sack: false,
        ..base
    };
    let job = JobSpec {
        input_bytes_per_node: cfg.input_bytes_per_node,
        map_waves: cfg.map_waves,
        map_rate_bps: 100_000_000,
        reduce_rate_bps: 200_000_000,
        tcp,
        parallel_copies: 5,
        shuffle_jitter: cfg.shuffle_jitter,
        seed: cfg.seed ^ 0x5EED,
    };
    let mut net = Network::new(spec);
    if trace.is_enabled() {
        net.set_trace(trace);
    }
    let app = TerasortJob::new(job, n);
    let mut sim = Simulation::new(net, app);
    sim.time_limit = cfg.time_limit;
    if let Some(tie_seed) = cfg.tie_seed {
        sim.tie_break = simevent::TieBreak::Permuted(tie_seed);
    }
    let report = match engine {
        Engine::Fast => sim.run(),
        Engine::Reference => {
            sim.net.set_reference_mode(true);
            sim.run_reference()
        }
    };

    let pool = sim.net.pool_stats();
    let res = sim.app.result();
    let runtime_s = res.runtime.as_secs_f64();
    // The paper's "average throughput per node": shuffle goodput over the
    // shuffle's own span (first flow start to last byte acknowledged), so
    // compute-phase gaps do not dilute the metric.
    let span = res.shuffle_done.since(res.first_flow_at);
    let throughput = if span > simevent::SimDuration::ZERO {
        res.shuffle_bytes as f64 * 8.0 / span.as_secs_f64() / n as f64
    } else {
        0.0
    };
    let port = sim.net.port_stats().total;
    let tx = sim.net.sender_stats_total();

    let metrics = RunMetrics {
        runtime_s,
        throughput_per_node_bps: throughput,
        mean_latency_s: sim.net.latency().mean().as_secs_f64(),
        p99_latency_s: sim.net.latency().quantile(0.99).as_secs_f64(),
        acks_early_dropped: port.dropped_early.get(PacketKind::PureAck),
        handshake_early_dropped: port.dropped_early.get(PacketKind::Syn)
            + port.dropped_early.get(PacketKind::SynAck),
        data_marked: port.marked.get(PacketKind::Data),
        full_drops: port.dropped_full.total(),
        timeouts: tx.timeouts,
        fast_retransmits: tx.fast_retransmits,
        syn_retransmits: tx.syn_retransmits,
        cc_fallbacks: tx.cc_fallbacks,
        completed: report.app_done,
    };
    (metrics, report, pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Transport::Tcp.label(), "tcp");
        assert_eq!(Transport::TcpEcn.label(), "tcp-ecn");
        assert_eq!(Transport::Dctcp.label(), "dctcp");
        assert_eq!(QueueKind::DropTail.label(), "droptail");
        assert_eq!(
            QueueKind::Red(ProtectionMode::AckSyn).label(),
            "red[ack+syn]"
        );
        assert_eq!(QueueKind::SimpleMarking.label(), "simple-marking");
        assert_eq!(
            QueueKind::CurvyRed(ProtectionMode::Default).label(),
            "curvy-red[default]"
        );
        assert_eq!(
            QueueKind::Pie(ProtectionMode::EceBit).label(),
            "pie[ece-bit]"
        );
        assert_eq!(
            QueueKind::DualQ(ProtectionMode::AckSyn).label(),
            "dualq[ack+syn]"
        );
        assert_eq!(BufferDepth::Shallow.label(), "shallow");
    }

    #[test]
    fn all_with_mode_covers_the_seven_disciplines() {
        let kinds = QueueKind::all_with_mode(ProtectionMode::AckSyn);
        let labels: Vec<String> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(kinds.len(), 7);
        for l in [
            "droptail",
            "red[ack+syn]",
            "simple-marking",
            "codel[ack+syn]",
            "curvy-red[ack+syn]",
            "pie[ack+syn]",
            "dualq[ack+syn]",
        ] {
            assert!(labels.contains(&l.to_string()), "missing {l}: {labels:?}");
        }
    }

    #[test]
    fn new_aqm_qdisc_building() {
        let cfg = ScenarioConfig::default();
        let t = SimDuration::from_micros(500);
        for (kind, want) in [
            (QueueKind::CurvyRed(ProtectionMode::AckSyn), "curvy-red"),
            (QueueKind::Pie(ProtectionMode::AckSyn), "pie"),
            (QueueKind::DualQ(ProtectionMode::AckSyn), "dualq"),
        ] {
            let spec = cfg.qdisc(kind, BufferDepth::Shallow, t);
            assert_eq!(spec.capacity_packets(), 100);
            assert!(
                spec.label().starts_with(want),
                "{kind:?} built {}",
                spec.label()
            );
        }
    }

    #[test]
    fn qdisc_building() {
        let cfg = ScenarioConfig::default();
        let d = cfg.qdisc(
            QueueKind::DropTail,
            BufferDepth::Deep,
            SimDuration::from_micros(1),
        );
        assert_eq!(d.capacity_packets(), 1000);
        let r = cfg.qdisc(
            QueueKind::Red(ProtectionMode::EceBit),
            BufferDepth::Shallow,
            SimDuration::from_micros(500),
        );
        assert_eq!(r.capacity_packets(), 100);
        match r {
            QdiscSpec::Red(rc) => {
                assert!(rc.min_th < rc.max_th, "RED band straddles the target");
                assert!(rc.ecn);
                assert_eq!(rc.protection, ProtectionMode::EceBit);
            }
            _ => panic!("expected RED"),
        }
    }

    #[test]
    fn tiny_scenario_droptail_runs() {
        let cfg = ScenarioConfig::tiny();
        let m = run_scenario(
            &cfg,
            Transport::Tcp,
            QueueKind::DropTail,
            BufferDepth::Shallow,
            SimDuration::from_micros(500),
        );
        assert!(m.completed, "tiny scenario must finish: {m:?}");
        assert!(m.runtime_s > 0.0);
        assert!(m.throughput_per_node_bps > 0.0);
        assert!(m.mean_latency_s > 0.0);
        assert_eq!(m.data_marked, 0, "droptail never marks");
    }

    #[test]
    fn fast_and_reference_engines_agree() {
        let cfg = ScenarioConfig::tiny();
        let run = |engine| {
            run_scenario_once_with(
                &cfg,
                Transport::TcpEcn,
                QueueKind::Red(ProtectionMode::Default),
                BufferDepth::Shallow,
                SimDuration::from_micros(500),
                engine,
            )
        };
        let (fast, fast_report) = run(Engine::Fast);
        let (reference, reference_report) = run(Engine::Reference);
        assert_eq!(fast, reference, "engines must produce identical metrics");
        // Cancellation removes spurious timer fires, so the fast engine
        // processes no more events than the reference one.
        assert!(fast_report.events <= reference_report.events);
    }

    #[test]
    fn tiny_scenario_is_deterministic() {
        let cfg = ScenarioConfig::tiny();
        let go = || {
            run_scenario(
                &cfg,
                Transport::Dctcp,
                QueueKind::Red(ProtectionMode::AckSyn),
                BufferDepth::Shallow,
                SimDuration::from_micros(500),
            )
        };
        assert_eq!(go(), go());
    }
}
