#![warn(missing_docs)]

//! Packet-level network substrate (the NS-2 replacement).
//!
//! `netsim` glues the other crates into a runnable cluster simulation:
//!
//! * [`LinkSpec`] / `Port` — full-duplex links modelled as two independent
//!   egress ports, each with a serialising transmitter and a pluggable
//!   queue discipline from `ecn-core`;
//! * [`ClusterSpec`] — the two-tier leaf/spine topology the paper's Hadoop
//!   cluster uses: racks of hosts under ToR switches, ToRs under a core
//!   switch, with independently configurable buffer depths and AQMs;
//! * [`Network`] — owns hosts (with their TCP endpoints), switches, routing
//!   and metrics, and handles the four event types of the simulation;
//! * [`Simulation`] / [`Application`] — the event loop plus the hook through
//!   which a workload (e.g. `mrsim`'s Terasort) starts flows and reacts to
//!   their completion.

mod apps;
mod link;
mod network;
mod sim;
mod topology;

pub use apps::{jain_fairness, LatencyProbes, PairApp};
pub use link::LinkSpec;
pub use network::{DevRef, Event, FlowRecord, Network, PortStatsReport};
pub use sim::{Application, RunReport, Simulation, StaticFlows};
pub use topology::ClusterSpec;

// The sweep orchestrator (experiments::simsweep) evaluates independent
// scenario points on a worker pool, which requires entire simulations —
// network, queues (boxed `dyn QueueDiscipline + Send`), TCP endpoints and
// the app — to be movable across threads. Assert it at the source so a
// future `Rc` or raw-pointer shortcut fails to compile here.
#[cfg(test)]
mod thread_safety {
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn simulation_types_are_send() {
        assert_send::<Network>();
        assert_send::<RunReport>();
        assert_send::<Simulation<StaticFlows>>();
    }
}
