// Fixture: SL005 — lossy casts of time/byte counters.

pub fn bad(t: SimDuration, total_bytes: u64) -> (u32, f32) {
    let ns = t.as_nanos() as u32; // SL005: 10 s of sim time overflows u32
    let b = total_bytes as f32; // SL005: f32 loses integer precision past 2^24
    (ns, b)
}

pub fn fine(t: SimDuration, idx: usize) -> (u64, u32) {
    let ns = t.as_nanos() as u64; // 64-bit stays lossless
    let i = idx as u32; // not a time/byte counter
    (ns, i)
}
