//! The sending endpoint: reliability, recovery and ECN mechanics, with the
//! window itself delegated to a pluggable `simcc` congestion controller.

use crate::agent::TcpAgent;
use crate::config::TcpConfig;
use crate::intervals::IntervalSet;
use crate::rtt::RttEstimator;
use netpacket::{EcnCodepoint, FlowId, NodeId, Packet, PacketId, TcpFlags};
use serde::{Deserialize, Serialize};
use simcc::{
    cwnd_change_tag, Cc, CcParams, CongestionController, REASON_ACK, REASON_APP_LIMITED,
    REASON_ECE, REASON_LOSS, REASON_RTO,
};
use simevent::SimTime;
use simtrace::{EventKind, TraceEvent, TraceHandle, NO_QUEUE};

/// Counters exposed for experiment reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SenderStats {
    /// Data segments sent (including retransmissions).
    pub data_segments_sent: u64,
    /// Retransmitted data segments (fast retransmit + RTO).
    pub retransmits: u64,
    /// Fast retransmits triggered by 3 duplicate ACKs.
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired with data outstanding.
    pub timeouts: u64,
    /// SYN retransmissions (the paper: dropped SYNs block connection setup).
    pub syn_retransmits: u64,
    /// ACKs carrying the ECE flag received.
    pub ece_acks: u64,
    /// Congestion-window reductions caused by ECN (ECE) rather than loss.
    pub ecn_reductions: u64,
    /// Classic-ECN-AQM fallback episodes detected by the controller (Prague
    /// only; always 0 for the other algorithms).
    pub cc_fallbacks: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Handshake done, moving data.
    Established,
    /// All data acknowledged.
    Complete,
}

/// The congestion-control fields every ACK touches, grouped so the per-ACK
/// hot path (`on_new_ack` → CE feedback → ECE reaction) reads and writes one
/// compact struct instead of fields scattered across the ~450-byte
/// [`Sender`]. The struct-of-arrays split at the host layer
/// (`netsim::Network`'s endpoint columns) keeps these together per endpoint;
/// this grouping keeps them together *within* the endpoint. The window
/// itself lives in the embedded [`Cc`] controller — a `Copy` enum, so the
/// whole struct is still inline, allocation-free state (Reno/DCTCP stay
/// within the pre-`simcc` ~64-byte budget; see `simcc`'s size assertions).
#[derive(Debug, Clone, Copy)]
struct CongState {
    /// Oldest unacknowledged sequence number.
    snd_una: u64,
    /// Consecutive duplicate-ACK count.
    dupacks: u32,
    /// Reduce-once-per-window guard: ignore ECE until snd_una passes this.
    cwr_end: u64,
    /// The pluggable congestion controller (owns cwnd/ssthresh/alpha).
    cc: Cc,
}

/// A one-directional TCP sender pushing `total_bytes` to a [`crate::Receiver`].
///
/// Sequence space: the SYN occupies seq 0, data occupies `[1, total_bytes+1)`.
/// The flow is complete when `snd_una == total_bytes + 1`.
#[derive(Debug)]
pub struct Sender {
    cfg: TcpConfig,
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    total: u64,
    state: State,

    /// Congestion-control hot state (see [`CongState`]).
    cong: CongState,
    /// Static parameters handed to every controller hook.
    ccp: CcParams,
    /// Why the window last moved (a `simcc::REASON_*` code), carried into the
    /// `CwndChange` trace event's `c` field.
    cwnd_reason: u64,
    snd_nxt: u64,
    in_recovery: bool,
    recover: u64,

    rtt: RttEstimator,
    rto_deadline: Option<SimTime>,
    /// One outstanding RTT sample: (ack level that completes it, send time).
    rtt_sample: Option<(u64, SimTime)>,

    /// ECN actually negotiated on the handshake.
    ecn_on: bool,
    /// Send CWR on outgoing data segments until the reduction window is
    /// acknowledged. Sticky (not one-shot) so a lost CWR-carrying segment
    /// cannot leave the receiver's ECE latch stuck — a stuck latch would
    /// halve cwnd every window for the rest of the flow.
    send_cwr: bool,

    /// Highest sequence number ever transmitted (for Karn's rule after a
    /// go-back-N timeout, where `snd_nxt` rewinds below it).
    max_sent: u64,

    /// SACK scoreboard: ranges above `snd_una` the receiver reported holding.
    sacked: IntervalSet,
    /// Retransmission cursor within the current recovery episode: holes below
    /// this have already been retransmitted once.
    retx_point: u64,

    outbox: Vec<Packet>,
    pkt_counter: u32,
    stats: SenderStats,
    started_at: SimTime,
    completed_at: Option<SimTime>,

    trace: TraceHandle,
    /// Last (cwnd, ssthresh) pair reported, so `CwndChange` fires once per
    /// entry point that actually moved the window.
    traced_window: (f64, f64),
}

impl Sender {
    /// Create the sender and immediately emit the SYN into the outbox.
    pub fn new(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        total_bytes: u64,
        cfg: TcpConfig,
        now: SimTime,
    ) -> Self {
        cfg.validate();
        let ccp = CcParams {
            mss: cfg.mss as f64,
            init_cwnd: (cfg.init_cwnd_segments as f64) * cfg.mss as f64,
            init_ssthresh: cfg.recv_wnd as f64,
            dctcp_g: cfg.dctcp_g,
        };
        let cc = Cc::new(cfg.cc, &ccp);
        let traced_window = (cc.cwnd(), cc.ssthresh());
        let rtt = RttEstimator::new(cfg.initial_rto, cfg.min_rto, cfg.max_rto);
        let mut s = Sender {
            cfg,
            flow,
            src,
            dst,
            total: total_bytes,
            state: State::SynSent,
            cong: CongState {
                snd_una: 0,
                dupacks: 0,
                cwr_end: 0,
                cc,
            },
            ccp,
            cwnd_reason: REASON_ACK,
            snd_nxt: 1, // SYN occupies seq 0
            in_recovery: false,
            recover: 0,
            rtt,
            rto_deadline: None,
            rtt_sample: None,
            ecn_on: false,
            send_cwr: false,
            max_sent: 1,
            sacked: IntervalSet::new(),
            retx_point: 1,
            outbox: Vec::new(),
            pkt_counter: 0,
            stats: SenderStats::default(),
            started_at: now,
            completed_at: None,
            trace: TraceHandle::null(),
            traced_window,
        };
        s.send_syn(now);
        s
    }

    /// Attach a trace handle; the sender then reports retransmissions, RTO
    /// firings, cwnd changes and state transitions for its flow. Tracing
    /// never changes protocol behaviour.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    fn state_code(s: State) -> u64 {
        match s {
            State::SynSent => 0,
            State::Established => 1,
            State::Complete => 2,
        }
    }

    /// A sender-scoped event: stamped with the flow, not tied to a queue.
    fn sender_ev(&self, kind: EventKind, now: SimTime) -> TraceEvent {
        let mut ev = TraceEvent::new(kind, now);
        ev.flow = self.flow.0;
        ev
    }

    /// Move to `to`, reporting the transition.
    fn set_state(&mut self, to: State, now: SimTime) {
        let from = self.state;
        self.state = to;
        if self.trace.is_enabled() && from != to {
            let mut ev = self.sender_ev(EventKind::StateTransition, now);
            ev.a = Self::state_code(from);
            ev.b = Self::state_code(to);
            self.trace.emit(ev);
        }
    }

    /// Report a `CwndChange` if cwnd/ssthresh moved since the last report.
    /// Called at the end of each public entry point, so one ACK or timeout
    /// produces at most one window event.
    fn trace_window_if_changed(&mut self, now: SimTime) {
        if !self.trace.is_enabled() {
            return;
        }
        let pair = (self.cong.cc.cwnd(), self.cong.cc.ssthresh());
        if self.traced_window != pair {
            self.traced_window = pair;
            let mut ev = self.sender_ev(EventKind::CwndChange, now);
            ev.a = pair.0 as u64;
            ev.b = pair.1 as u64;
            ev.c = cwnd_change_tag(self.cong.cc.alg(), self.cwnd_reason);
            self.trace.emit(ev);
        }
    }

    // ----- accessors ------------------------------------------------------

    /// Bytes acknowledged so far (excluding SYN).
    pub fn bytes_acked(&self) -> u64 {
        self.cong.snd_una.saturating_sub(1).min(self.total)
    }

    /// Total bytes this flow will transfer.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Congestion window in bytes.
    pub fn cwnd(&self) -> f64 {
        self.cong.cc.cwnd()
    }

    /// Slow-start threshold in bytes.
    pub fn ssthresh(&self) -> f64 {
        self.cong.cc.ssthresh()
    }

    /// DCTCP-family congestion-extent estimate (1.0 for other controllers).
    pub fn alpha(&self) -> f64 {
        self.cong.cc.alpha()
    }

    /// Which congestion-control algorithm this flow runs.
    pub fn cc_alg(&self) -> simcc::CcAlg {
        self.cong.cc.alg()
    }

    /// The controller's model-based pacing rate, if it computes one (BBR).
    pub fn pacing_rate(&self) -> Option<f64> {
        self.cong.cc.pacing_rate()
    }

    /// True while the controller is in a classic-ECN fallback episode
    /// (Prague only).
    pub fn in_cc_fallback(&self) -> bool {
        self.cong.cc.in_fallback()
    }

    /// True once the handshake completed and ECN was agreed by both ends.
    pub fn ecn_negotiated(&self) -> bool {
        self.ecn_on
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &SenderStats {
        &self.stats
    }

    /// When the flow was created (SYN first sent).
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// When the final byte was acknowledged, if the flow is complete.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }

    /// True while unacknowledged data (or SYN) is outstanding.
    pub fn has_outstanding(&self) -> bool {
        self.snd_nxt > self.cong.snd_una
    }

    /// Bytes currently marked received-out-of-order by the SACK scoreboard.
    pub fn sacked_bytes(&self) -> u64 {
        self.sacked.covered_len()
    }

    // ----- packet construction --------------------------------------------

    fn next_id(&mut self) -> PacketId {
        self.pkt_counter += 1;
        PacketId((self.flow.0 << 20) | self.pkt_counter as u64)
    }

    /// The ECT variant this flow stamps on ECN-capable packets. Scalable
    /// congestion control (TCP Prague) uses the L4S identifier ECT(1)
    /// (RFC 9331), which a DualQ coupled AQM classifies into its low-latency
    /// queue; every classic controller uses ECT(0).
    fn ect_codepoint(&self) -> EcnCodepoint {
        if self.cong.cc.alg() == simcc::CcAlg::Prague {
            EcnCodepoint::Ect1
        } else {
            EcnCodepoint::Ect0
        }
    }

    fn send_syn(&mut self, now: SimTime) {
        let flags = if self.cfg.ecn.uses_ecn() {
            TcpFlags::ecn_setup_syn()
        } else {
            TcpFlags::SYN
        };
        // Stock TCP: SYNs are never ECT (paper §II-B). With the ECN++
        // extension they are, so AQMs mark instead of dropping them.
        let ecn = if self.cfg.ect_control_packets && self.cfg.ecn.uses_ecn() {
            self.ect_codepoint()
        } else {
            EcnCodepoint::NotEct
        };
        let pkt = Packet {
            id: self.next_id(),
            flow: self.flow,
            src: self.src,
            dst: self.dst,
            seq: 0,
            ack: 0,
            payload: 0,
            flags,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: now,
        };
        self.outbox.push(pkt);
        self.rto_deadline = Some(now + self.rtt.rto());
    }

    fn send_handshake_ack(&mut self, now: SimTime) {
        let ecn = if self.cfg.ect_control_packets && self.ecn_on {
            self.ect_codepoint() // ECN++ extension
        } else {
            EcnCodepoint::NotEct // pure ACKs are never ECT — the crux
        };
        let pkt = Packet {
            id: self.next_id(),
            flow: self.flow,
            src: self.src,
            dst: self.dst,
            seq: self.snd_nxt,
            ack: 1, // receiver's SYN occupies its seq 0
            payload: 0,
            flags: TcpFlags::ACK,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: now,
        };
        self.outbox.push(pkt);
    }

    fn emit_data(&mut self, seq: u64, len: u32, now: SimTime, is_retransmit: bool) {
        let mut flags = TcpFlags::ACK;
        if self.send_cwr && self.ecn_on {
            flags.insert(TcpFlags::CWR);
        }
        let ecn = if self.ecn_on {
            self.ect_codepoint()
        } else {
            EcnCodepoint::NotEct
        };
        let pkt = Packet {
            id: self.next_id(),
            flow: self.flow,
            src: self.src,
            dst: self.dst,
            seq,
            ack: 1,
            payload: len,
            flags,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: now,
        };
        if is_retransmit && self.trace.is_enabled() {
            let mut ev = netpacket::packet_event(EventKind::Retransmit, now, NO_QUEUE, &pkt);
            ev.a = seq;
            ev.b = len as u64;
            self.trace.emit(ev);
        }
        self.outbox.push(pkt);
        self.stats.data_segments_sent += 1;
        self.cong
            .cc
            .on_sent(&self.ccp, len as u64, now.as_nanos(), is_retransmit);
        if is_retransmit {
            self.stats.retransmits += 1;
            // Karn: never sample RTT from a retransmitted range.
            self.rtt_sample = None;
        } else if self.rtt_sample.is_none() {
            self.rtt_sample = Some((seq + len as u64, now));
        }
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rtt.rto());
        }
    }

    // ----- congestion control ---------------------------------------------

    fn flight(&self) -> u64 {
        self.snd_nxt - self.cong.snd_una
    }

    fn usable_window(&self) -> f64 {
        self.cong.cc.cwnd().min(self.cfg.recv_wnd as f64)
    }

    /// React to an ECE-carrying ACK, at most once per window. The sender owns
    /// the guards (negotiation, recovery, the CWR window); the controller
    /// owns the reduction itself and may decline it (BBR ignores ECE), in
    /// which case no CWR window starts and no reduction is counted.
    fn maybe_ecn_react(&mut self, ack: u64) {
        if !self.ecn_on || self.in_recovery {
            return;
        }
        if ack <= self.cong.cwr_end {
            return; // already reacted this window
        }
        if !self.cong.cc.on_ece(&self.ccp) {
            return;
        }
        self.cwnd_reason = REASON_ECE;
        self.cong.cwr_end = self.snd_nxt;
        self.send_cwr = true;
        self.stats.ecn_reductions += 1;
    }

    fn on_new_ack(&mut self, ack: u64, ece: bool, now: SimTime) {
        self.cwnd_reason = REASON_ACK;
        // Forward progress: the path delivered new data, so the exponential
        // RTO backoff no longer reflects its state. Karn's rule alone cannot
        // clear it — after a go-back-N burst every in-flight segment is a
        // retransmission and no sample is ever taken, which left the backoff
        // (and thus multi-second RTOs) stuck for the rest of the episode.
        self.rtt.reset_backoff();
        // The ECN reduction window has passed: stop advertising CWR.
        if self.send_cwr && ack > self.cong.cwr_end {
            self.send_cwr = false;
        }
        // After a go-back-N rewind a cumulative ACK can exceed snd_nxt (it
        // covers data sent before the timeout): pull snd_nxt forward so the
        // covered range is never retransmitted and flight() stays well-formed.
        self.snd_nxt = self.snd_nxt.max(ack);
        let newly = ack - self.cong.snd_una;
        // Per-ACK CE accounting (DCTCP's alpha window, Prague's round
        // classifier); a no-op for the loss-based controllers.
        self.cong
            .cc
            .on_ce_feedback(&self.ccp, newly, ece, ack, self.snd_nxt);
        if ece {
            self.maybe_ecn_react(ack);
        }
        // Complete an outstanding RTT sample.
        if let Some((need, sent)) = self.rtt_sample {
            if ack >= need {
                let dt = now.since(sent);
                self.rtt.sample(dt);
                self.cong
                    .cc
                    .on_rtt_sample(&self.ccp, dt.as_nanos(), now.as_nanos(), ece);
                self.rtt_sample = None;
            }
        }
        self.sacked.prune_below(ack);
        if self.in_recovery {
            if ack >= self.recover {
                // Full ACK: leave fast recovery.
                self.in_recovery = false;
                self.cong.cc.on_recovery_exit(&self.ccp);
                self.cwnd_reason = REASON_LOSS;
                self.cong.dupacks = 0;
                self.cong.snd_una = ack;
            } else {
                // Partial ACK: retransmit the next hole (SACK skips ranges
                // the receiver already holds), deflate (NewReno).
                self.cong.snd_una = ack;
                self.retx_point = self.retx_point.max(ack);
                self.cong.cc.on_partial_ack(&self.ccp, newly);
                self.cwnd_reason = REASON_LOSS;
                let _ = self.retransmit_next_hole(now);
            }
        } else {
            self.cong.dupacks = 0;
            self.cong.snd_una = ack;
            // Window growth. A controller that *shrinks* here did so on its
            // own model (BBR Drain/ProbeRTT), not on a congestion signal.
            let pre = self.cong.cc.cwnd();
            self.cong.cc.on_ack(&self.ccp, newly, now.as_nanos());
            if self.cong.cc.cwnd() < pre && self.cwnd_reason == REASON_ACK {
                self.cwnd_reason = REASON_APP_LIMITED;
            }
        }
        self.stats.cc_fallbacks = self.cong.cc.fallback_count();
        // Restart or disarm the retransmission timer.
        if self.has_outstanding() {
            self.rto_deadline = Some(now + self.rtt.rto());
        } else {
            self.rto_deadline = None;
        }
        // Completion check: all data bytes acknowledged.
        if self.cong.snd_una > self.total {
            self.set_state(State::Complete, now);
            self.rto_deadline = None;
            if self.completed_at.is_none() {
                self.completed_at = Some(now);
            }
        }
    }

    fn on_dup_ack(&mut self, ece: bool, now: SimTime) {
        if !self.has_outstanding() {
            return;
        }
        self.cwnd_reason = REASON_ACK;
        if ece {
            self.maybe_ecn_react(self.cong.snd_una);
        }
        if self.in_recovery {
            // Inflate: each dup signals a departed segment.
            self.cong.cc.on_recovery_dupack(&self.ccp);
            self.cwnd_reason = REASON_LOSS;
            if self.cfg.sack && !self.sacked.is_empty() && self.retransmit_next_hole(now) {
                // SACK fast recovery: the freed slot was spent repairing a
                // hole, so take the inflation back — exactly one packet
                // enters the network per dupack, as in classic recovery.
                self.cong.cc.undo_recovery_dupack(&self.ccp);
            }
            return;
        }
        self.cong.dupacks += 1;
        if self.cong.dupacks < 3 {
            // Limited transmit (RFC 3042): send one previously unsent segment
            // per early dupack so the ACK clock keeps running and fast
            // retransmit can trigger even with small windows.
            self.limited_transmit(now);
            return;
        }
        if self.cong.dupacks == 3 {
            if self.cfg.sack
                && self.stats.fast_retransmits > 0
                && self.cong.snd_una <= self.recover
                && self.sacked.is_empty()
            {
                // RFC 6582-style "avoid multiple fast retransmits": with an
                // empty scoreboard, dupacks at or below the last recovery
                // point are echoes of our own retransmissions, not new loss.
                // (A non-empty scoreboard is positive evidence of fresh loss,
                // and the SACK-less path keeps classic NewReno behaviour.)
                return;
            }
            // Fast retransmit + fast recovery (NewReno; SACK-aware hole
            // selection when the scoreboard has data).
            self.cong.cc.on_loss(&self.ccp, self.flight());
            self.cwnd_reason = REASON_LOSS;
            self.in_recovery = true;
            self.recover = self.snd_nxt;
            self.retx_point = self.cong.snd_una;
            self.stats.fast_retransmits += 1;
            let _ = self.retransmit_next_hole(now);
        }
    }

    /// RFC 3042 limited transmit: one new segment, bypassing cwnd (but not
    /// the receiver window).
    fn limited_transmit(&mut self, now: SimTime) {
        if self.state != State::Established || self.snd_nxt > self.total {
            return;
        }
        if self.flight() + self.cfg.mss as u64 > self.cfg.recv_wnd {
            return;
        }
        let remaining = self.total + 1 - self.snd_nxt;
        let seg = (self.cfg.mss as u64).min(remaining) as u32;
        let seq = self.snd_nxt;
        self.snd_nxt += seg as u64;
        let is_retransmit = seq < self.max_sent;
        self.max_sent = self.max_sent.max(self.snd_nxt);
        self.emit_data(seq, seg, now, is_retransmit);
    }

    /// Retransmit the first not-yet-repaired hole in this recovery episode.
    /// Without SACK the only known hole starts at `snd_una` (classic
    /// NewReno); with SACK the scoreboard locates later holes and bounds the
    /// retransmission so it never resends data the receiver holds.
    /// Returns true when a retransmission was emitted.
    fn retransmit_next_hole(&mut self, now: SimTime) -> bool {
        let seq = if self.cfg.sack {
            self.sacked
                .first_uncovered(self.retx_point.max(self.cong.snd_una).max(1))
        } else {
            self.cong.snd_una.max(1)
        };
        if seq > self.total || seq >= self.recover.max(self.cong.snd_una + 1) {
            return false;
        }
        if self.cfg.sack && !self.sacked.is_empty() {
            // RFC 6675 loss inference (simplified): only data BELOW the
            // highest SACKed byte can be declared lost; everything above it
            // is merely in flight and must not be retransmitted.
            let highest = self.sacked.max_covered().unwrap_or(0);
            if seq >= highest && seq != self.cong.snd_una {
                return false;
            }
        }
        let mut len = (self.cfg.mss as u64).min(self.total + 1 - seq);
        if self.cfg.sack {
            if let Some(island) = self.sacked.next_covered_after(seq) {
                len = len.min(island - seq);
            }
        }
        self.retx_point = seq + len;
        self.emit_data(seq, len as u32, now, true);
        self.rto_deadline = Some(now + self.rtt.rto());
        true
    }

    /// Send as much new data as the window allows.
    fn try_send(&mut self, now: SimTime) {
        if self.state != State::Established {
            return;
        }
        loop {
            if self.snd_nxt > self.total {
                break; // everything transmitted at least once
            }
            let remaining = self.total + 1 - self.snd_nxt;
            let seg = (self.cfg.mss as u64).min(remaining) as u32;
            let win = self.usable_window();
            let fits = (self.flight() + seg as u64) as f64 <= win;
            // Progress guarantee: with an empty pipe always allow one segment,
            // otherwise a sub-MSS cwnd would deadlock the flow.
            if !fits && (self.flight() != 0) {
                break;
            }
            let seq = self.snd_nxt;
            self.snd_nxt += seg as u64;
            // After a go-back-N timeout snd_nxt rewinds, so bytes below
            // max_sent are retransmissions (no RTT samples — Karn's rule).
            let is_retransmit = seq < self.max_sent;
            self.max_sent = self.max_sent.max(self.snd_nxt);
            self.emit_data(seq, seg, now, is_retransmit);
            if !fits {
                break;
            }
        }
    }

    fn handle_timeout(&mut self, now: SimTime) {
        match self.state {
            State::SynSent => {
                // Dropped SYN: the paper's "new connections prevented from
                // being established". Exponential backoff on the initial RTO.
                self.stats.syn_retransmits += 1;
                self.rtt.back_off();
                let flags = if self.cfg.ecn.uses_ecn() {
                    TcpFlags::ecn_setup_syn()
                } else {
                    TcpFlags::SYN
                };
                let id = self.next_id();
                let pkt = Packet {
                    id,
                    flow: self.flow,
                    src: self.src,
                    dst: self.dst,
                    seq: 0,
                    ack: 0,
                    payload: 0,
                    flags,
                    ecn: EcnCodepoint::NotEct,
                    sack: netpacket::SackBlocks::EMPTY,
                    sent_at: now,
                };
                if self.trace.is_enabled() {
                    let mut ev = self.sender_ev(EventKind::RtoFired, now);
                    ev.a = self.cong.snd_una;
                    ev.b = self.snd_nxt;
                    self.trace.emit(ev);
                    self.trace.emit(netpacket::packet_event(
                        EventKind::Retransmit,
                        now,
                        NO_QUEUE,
                        &pkt,
                    ));
                }
                self.outbox.push(pkt);
                self.rto_deadline = Some(now + self.rtt.rto());
            }
            State::Established => {
                if !self.has_outstanding() {
                    self.rto_deadline = None;
                    return;
                }
                // Whole-window loss or tail loss: collapse to 1 MSS and
                // go-back-N (the receiver discards duplicates). This is the
                // "devastating" event the paper describes for dropped ACK
                // windows.
                self.stats.timeouts += 1;
                if self.trace.is_enabled() {
                    let mut ev = self.sender_ev(EventKind::RtoFired, now);
                    ev.a = self.cong.snd_una;
                    ev.b = self.snd_nxt;
                    self.trace.emit(ev);
                }
                self.cong.cc.on_rto(&self.ccp, self.flight());
                self.cwnd_reason = REASON_RTO;
                self.in_recovery = false;
                self.cong.dupacks = 0;
                self.retx_point = self.cong.snd_una;
                self.snd_nxt = self.cong.snd_una.max(1);
                self.rtt.back_off();
                self.rtt_sample = None;
                self.rto_deadline = Some(now + self.rtt.rto());
                self.try_send(now);
            }
            State::Complete => {
                self.rto_deadline = None;
            }
        }
    }
}

impl TcpAgent for Sender {
    fn flow(&self) -> FlowId {
        self.flow
    }

    fn on_segment(&mut self, pkt: &Packet, now: SimTime) {
        match self.state {
            State::SynSent => {
                if pkt.is_syn_ack() && pkt.ack >= 1 {
                    // ECN is on only if we asked AND the peer echoed ECE.
                    self.ecn_on = self.cfg.ecn.uses_ecn() && pkt.flags.contains(TcpFlags::ECE);
                    self.cong.snd_una = 1;
                    self.set_state(State::Established, now);
                    self.rto_deadline = None;
                    // The handshake completed: SYN-retransmission backoff must
                    // not inflate the very first data RTO (SYNs are never
                    // sampled, so nothing else would ever clear it).
                    self.rtt.reset_backoff();
                    self.send_handshake_ack(now);
                    if self.total == 0 {
                        self.set_state(State::Complete, now);
                        self.completed_at = Some(now);
                    } else {
                        self.try_send(now);
                    }
                }
            }
            State::Established => {
                if pkt.is_syn_ack() {
                    // Our handshake ACK was lost; re-ack.
                    self.send_handshake_ack(now);
                    return;
                }
                if !pkt.flags.contains(TcpFlags::ACK) {
                    return;
                }
                if self.cfg.sack {
                    for (bs, be) in pkt.sack.iter() {
                        // Clamp to what we actually sent; ignore stale blocks.
                        let bs = bs.max(self.cong.snd_una);
                        let be = be.min(self.max_sent);
                        self.sacked.insert(bs, be);
                    }
                }
                let ece = pkt.flags.contains(TcpFlags::ECE);
                if ece {
                    self.stats.ece_acks += 1;
                }
                if pkt.ack > self.max_sent {
                    return; // acks data we never sent; ignore
                }
                if pkt.ack > self.cong.snd_una {
                    self.on_new_ack(pkt.ack, ece, now);
                    self.try_send(now);
                } else if pkt.ack == self.cong.snd_una {
                    self.on_dup_ack(ece, now);
                    self.try_send(now);
                }
            }
            State::Complete => {}
        }
        self.trace_window_if_changed(now);
    }

    fn on_timer(&mut self, now: SimTime) {
        if let Some(d) = self.rto_deadline {
            if now >= d {
                self.handle_timeout(now);
                self.trace_window_if_changed(now);
            }
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    fn take_outbox(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.outbox)
    }

    fn drain_outbox_into(&mut self, out: &mut Vec<Packet>) {
        out.append(&mut self.outbox);
    }

    fn is_complete(&self) -> bool {
        self.state == State::Complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcnMode;
    use simevent::SimDuration;

    const MSS: u64 = 1460;

    fn mk(total: u64, ecn: EcnMode) -> Sender {
        Sender::new(
            FlowId(1),
            NodeId(0),
            NodeId(1),
            total,
            TcpConfig::with_ecn(ecn),
            SimTime::ZERO,
        )
    }

    fn syn_ack(ecn: bool) -> Packet {
        Packet {
            id: PacketId(900),
            flow: FlowId(1),
            src: NodeId(1),
            dst: NodeId(0),
            seq: 0,
            ack: 1,
            payload: 0,
            flags: if ecn {
                TcpFlags::ecn_setup_syn_ack()
            } else {
                TcpFlags::SYN | TcpFlags::ACK
            },
            ecn: EcnCodepoint::NotEct,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    fn ack(ackno: u64, flags: TcpFlags) -> Packet {
        Packet {
            id: PacketId(901),
            flow: FlowId(1),
            src: NodeId(1),
            dst: NodeId(0),
            seq: 1,
            ack: ackno,
            payload: 0,
            flags,
            ecn: EcnCodepoint::NotEct,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    /// Establish the connection and drain the handshake packets.
    fn established(total: u64, ecn: EcnMode) -> Sender {
        let mut s = mk(total, ecn);
        let syn = s.take_outbox();
        assert_eq!(syn.len(), 1);
        s.on_segment(&syn_ack(ecn.uses_ecn()), SimTime::from_micros(100));
        s
    }

    #[test]
    fn first_packet_is_syn_with_mode_flags() {
        let mut plain = mk(1000, EcnMode::Off);
        let p = plain.take_outbox().remove(0);
        assert!(p.is_syn());
        assert!(!p.flags.contains(TcpFlags::ECE));
        assert_eq!(p.ecn, EcnCodepoint::NotEct);

        let mut e = mk(1000, EcnMode::Ecn);
        let p = e.take_outbox().remove(0);
        assert!(p.flags.contains(TcpFlags::ECE) && p.flags.contains(TcpFlags::CWR));
        assert_eq!(p.ecn, EcnCodepoint::NotEct, "SYN is never ECT");
    }

    #[test]
    fn syn_ack_establishes_and_sends_initial_window() {
        let mut s = established(100_000, EcnMode::Ecn);
        assert!(s.ecn_negotiated());
        let out = s.take_outbox();
        // Handshake ACK + 2 segments (init cwnd = 2 MSS).
        assert_eq!(out.len(), 3);
        assert!(out[0].is_pure_ack());
        assert_eq!(out[1].payload as u64, MSS);
        assert_eq!(out[1].seq, 1);
        assert_eq!(out[1].ecn, EcnCodepoint::Ect0);
        assert_eq!(out[2].seq, 1 + MSS);
    }

    #[test]
    fn prague_sender_uses_ect1_identifier() {
        // RFC 9331: an L4S sender sets ECT(1) on everything it would
        // otherwise send as ECT(0), so DualQ classifies its packets into
        // the low-latency queue. Classic senders must stay on ECT(0).
        let mut s = Sender::new(
            FlowId(1),
            NodeId(0),
            NodeId(1),
            100_000,
            TcpConfig::with_cc(simcc::CcAlg::Prague, EcnMode::Dctcp),
            SimTime::ZERO,
        );
        let _ = s.take_outbox();
        s.on_segment(&syn_ack(true), SimTime::from_micros(100));
        let out = s.take_outbox();
        assert!(out
            .iter()
            .filter(|p| p.payload > 0)
            .all(|p| p.ecn == EcnCodepoint::Ect1));

        let mut classic = established(100_000, EcnMode::Dctcp);
        let out = classic.take_outbox();
        assert!(out
            .iter()
            .filter(|p| p.payload > 0)
            .all(|p| p.ecn == EcnCodepoint::Ect0));
    }

    #[test]
    fn non_ecn_syn_ack_disables_ecn() {
        let mut s = mk(10_000, EcnMode::Ecn);
        let _ = s.take_outbox();
        s.on_segment(&syn_ack(false), SimTime::from_micros(100));
        assert!(!s.ecn_negotiated());
        let out = s.take_outbox();
        assert!(out
            .iter()
            .filter(|p| p.payload > 0)
            .all(|p| p.ecn == EcnCodepoint::NotEct));
    }

    #[test]
    fn slow_start_grows_one_mss_per_ack() {
        // Appropriate byte counting with L = 1 (RFC 3465): each ACK grows
        // cwnd by min(newly_acked, MSS), so a cumulative ACK covering two
        // segments still adds one MSS.
        let mut s = established(1_000_000, EcnMode::Off);
        let w0 = s.cwnd();
        let _ = s.take_outbox();
        s.on_segment(&ack(1 + 2 * MSS, TcpFlags::ACK), SimTime::from_micros(200));
        assert!(
            (s.cwnd() - (w0 + MSS as f64)).abs() < 1.0,
            "cwnd {}",
            s.cwnd()
        );
        // Per-segment ACKs add one MSS each.
        let _ = s.take_outbox();
        s.on_segment(&ack(1 + 3 * MSS, TcpFlags::ACK), SimTime::from_micros(300));
        assert!(
            (s.cwnd() - (w0 + 2.0 * MSS as f64)).abs() < 1.0,
            "cwnd {}",
            s.cwnd()
        );
    }

    #[test]
    fn three_dupacks_fast_retransmit() {
        let mut s = established(1_000_000, EcnMode::Off);
        let _ = s.take_outbox();
        // Grow the window a bit so there is flight.
        s.on_segment(&ack(1 + 2 * MSS, TcpFlags::ACK), SimTime::from_micros(200));
        let _ = s.take_outbox();
        for i in 0..3 {
            s.on_segment(
                &ack(1 + 2 * MSS, TcpFlags::ACK),
                SimTime::from_micros(300 + i),
            );
        }
        assert_eq!(s.stats().fast_retransmits, 1);
        let out = s.take_outbox();
        // Limited transmit sent 2 new segments on dupacks 1-2, then the
        // retransmission of the lost head on dupack 3.
        let head_retx = out
            .iter()
            .filter(|p| p.seq == 1 + 2 * MSS && p.payload > 0)
            .count();
        assert!(head_retx >= 1, "head must be retransmitted: {out:?}");
    }

    #[test]
    fn limited_transmit_on_first_two_dupacks() {
        let mut s = established(1_000_000, EcnMode::Off);
        let _ = s.take_outbox();
        s.on_segment(&ack(1 + 2 * MSS, TcpFlags::ACK), SimTime::from_micros(200));
        let sent_before = s.stats().data_segments_sent;
        let _ = s.take_outbox();
        s.on_segment(&ack(1 + 2 * MSS, TcpFlags::ACK), SimTime::from_micros(300));
        s.on_segment(&ack(1 + 2 * MSS, TcpFlags::ACK), SimTime::from_micros(301));
        assert_eq!(
            s.stats().data_segments_sent,
            sent_before + 2,
            "one new segment per dupack"
        );
        assert_eq!(s.stats().fast_retransmits, 0);
    }

    #[test]
    fn ece_reduces_once_per_window() {
        let mut s = established(1_000_000, EcnMode::Ecn);
        let _ = s.take_outbox();
        // Grow cwnd: ack 2 segments.
        s.on_segment(&ack(1 + 2 * MSS, TcpFlags::ACK), SimTime::from_micros(200));
        let _ = s.take_outbox();
        let w = s.cwnd();
        // Two ECE acks in the same window: only one reduction.
        s.on_segment(
            &ack(1 + 3 * MSS, TcpFlags::ACK | TcpFlags::ECE),
            SimTime::from_micros(300),
        );
        let w_after_first = s.cwnd();
        assert!(w_after_first < w, "ECE must reduce cwnd");
        assert_eq!(s.stats().ecn_reductions, 1);
        s.on_segment(
            &ack(1 + 4 * MSS, TcpFlags::ACK | TcpFlags::ECE),
            SimTime::from_micros(301),
        );
        assert_eq!(s.stats().ecn_reductions, 1, "once per window");
        assert_eq!(s.stats().retransmits, 0, "ECN response never retransmits");
    }

    #[test]
    fn cwr_flag_set_until_window_acked() {
        let mut s = established(1_000_000, EcnMode::Ecn);
        let _ = s.take_outbox();
        s.on_segment(&ack(1 + 2 * MSS, TcpFlags::ACK), SimTime::from_micros(200));
        let _ = s.take_outbox();
        s.on_segment(
            &ack(1 + 3 * MSS, TcpFlags::ACK | TcpFlags::ECE),
            SimTime::from_micros(300),
        );
        let out = s.take_outbox();
        assert!(
            out.iter()
                .filter(|p| p.payload > 0)
                .all(|p| p.flags.contains(TcpFlags::CWR)),
            "all data in the reduction window carries CWR: {out:?}"
        );
    }

    #[test]
    fn dctcp_alpha_updates_per_window() {
        let mut s = established(10_000_000, EcnMode::Dctcp);
        let _ = s.take_outbox();
        let a0 = s.alpha();
        assert_eq!(a0, 1.0, "conservative init");
        // A full window acked with no ECE: alpha decays by factor (1-g).
        s.on_segment(&ack(1 + 2 * MSS, TcpFlags::ACK), SimTime::from_micros(200));
        let g = 1.0 / 16.0;
        assert!(
            (s.alpha() - (1.0 - g)).abs() < 1e-9,
            "alpha = {}",
            s.alpha()
        );
    }

    #[test]
    fn timeout_collapses_to_one_mss_and_goes_back_n() {
        let mut s = established(1_000_000, EcnMode::Off);
        let _ = s.take_outbox();
        s.on_segment(&ack(1 + 2 * MSS, TcpFlags::ACK), SimTime::from_micros(200));
        let _ = s.take_outbox();
        let deadline = s.next_deadline().expect("RTO armed with data in flight");
        s.on_timer(deadline);
        assert_eq!(s.stats().timeouts, 1);
        assert!((s.cwnd() - MSS as f64).abs() < 1.0, "cwnd = {}", s.cwnd());
        let out = s.take_outbox();
        assert_eq!(out.len(), 1, "go-back-N restarts with one segment");
        assert_eq!(out[0].seq, 1 + 2 * MSS, "restart at snd_una");
    }

    #[test]
    fn spurious_timer_is_noop() {
        let mut s = established(1_000_000, EcnMode::Off);
        let _ = s.take_outbox();
        s.on_timer(SimTime::from_micros(150)); // long before the deadline
        assert_eq!(s.stats().timeouts, 0);
        assert!(s.take_outbox().is_empty());
    }

    #[test]
    fn completion_records_time() {
        let mut s = established(MSS, EcnMode::Off);
        let _ = s.take_outbox();
        assert!(!s.is_complete());
        s.on_segment(&ack(1 + MSS, TcpFlags::ACK), SimTime::from_micros(500));
        assert!(s.is_complete());
        assert_eq!(s.completed_at(), Some(SimTime::from_micros(500)));
        assert_eq!(s.bytes_acked(), MSS);
        assert!(s.next_deadline().is_none(), "no timers after completion");
    }

    #[test]
    fn acks_beyond_max_sent_ignored() {
        let mut s = established(1_000_000, EcnMode::Off);
        let _ = s.take_outbox();
        let una_before = s.bytes_acked();
        s.on_segment(&ack(500_000, TcpFlags::ACK), SimTime::from_micros(200));
        assert_eq!(
            s.bytes_acked(),
            una_before,
            "ack for unsent data must be ignored"
        );
    }

    #[test]
    fn handshake_completion_clears_syn_backoff() {
        // Two dropped SYNs back the RTO off to 4x. Once the SYN-ACK lands the
        // backoff must not leak into the first data RTO: SYNs are excluded
        // from sampling, so without an explicit reset nothing clears it and
        // the flow starts life with a multi-second timer.
        let mut s = mk(1_000_000, EcnMode::Off);
        let _ = s.take_outbox();
        let d1 = s.next_deadline().expect("SYN timer armed");
        s.on_timer(d1);
        let d2 = s.next_deadline().expect("re-armed after first SYN loss");
        s.on_timer(d2);
        assert_eq!(s.stats().syn_retransmits, 2);
        assert_eq!(s.rtt.backoff_level(), 2);
        let est_at = d2 + SimDuration::from_millis(1);
        s.on_segment(&syn_ack(false), est_at);
        assert_eq!(s.rtt.backoff_level(), 0, "handshake resets backoff");
        // The data RTO armed at establishment uses the plain initial RTO
        // (1 s), not the 4x backed-off one.
        assert_eq!(
            s.next_deadline(),
            Some(est_at + SimDuration::from_secs(1)),
            "first data RTO must not inherit SYN backoff"
        );
    }

    #[test]
    fn forward_progress_ack_clears_rto_backoff() {
        // After a go-back-N burst every in-flight segment is a retransmission,
        // so Karn's rule suppresses all samples and `RttEstimator::sample`
        // never runs to clear the backoff. A cumulative ACK that advances
        // snd_una is direct evidence the path forwards again and must reset
        // it (Linux clears icsk_backoff on exactly this signal).
        let mut s = established(1_000_000, EcnMode::Off);
        let _ = s.take_outbox();
        s.on_segment(&ack(1 + 2 * MSS, TcpFlags::ACK), SimTime::from_micros(200));
        let _ = s.take_outbox();
        let d1 = s.next_deadline().expect("RTO armed with data in flight");
        s.on_timer(d1);
        let d2 = s.next_deadline().expect("re-armed after first timeout");
        s.on_timer(d2);
        assert_eq!(s.stats().timeouts, 2);
        assert_eq!(s.rtt.backoff_level(), 2);
        // The retransmissions are never sampled (Karn), yet this ACK advances
        // snd_una: backoff must clear even with no sample taken.
        s.on_segment(
            &ack(1 + 3 * MSS, TcpFlags::ACK),
            d2 + SimDuration::from_millis(1),
        );
        assert_eq!(s.rtt.backoff_level(), 0, "forward progress resets backoff");
    }

    #[test]
    fn duplicate_syn_ack_reacks() {
        let mut s = established(10_000, EcnMode::Off);
        let _ = s.take_outbox();
        s.on_segment(&syn_ack(false), SimTime::from_micros(500));
        let out = s.take_outbox();
        assert!(
            out.iter().any(|p| p.is_pure_ack()),
            "must re-ack a duplicate SYN-ACK"
        );
    }
}
