//! Slab-backed packet arena: the hot path's answer to per-packet `Box`es.
//!
//! Every packet travelling the simulated network lives in a [`PacketPool`]
//! slot and is referred to by a 8-byte generation-checked [`PacketRef`].
//! Scheduler events then carry the handle instead of the ~120-byte
//! [`Packet`] struct, so calendar-bucket sifts memcpy 16-byte events, and
//! slot storage is recycled: once the pool has grown to the simulation's
//! live high-water mark, inserting and removing packets performs **zero**
//! heap allocation.
//!
//! # Reference mode
//!
//! [`PacketPool::set_reference_mode`] switches the slot storage to one
//! `Box<Packet>` per insert — the seed's allocation model, where every
//! packet hop paid a malloc/free pair. Handles, lookup semantics and
//! simulation results are bit-identical in both modes; only the allocator
//! traffic differs, which is exactly what the perf report's `alloc/sec`
//! metric and the debug-build allocation counter measure.
//!
//! # Generation checks
//!
//! Each slot carries a generation stamped into the handles it issues; the
//! generation advances when the slot is vacated. A stale handle (use after
//! [`take`](PacketPool::take), double-take, or a handle from a different
//! pool epoch) panics instead of silently aliasing a recycled packet.

use crate::Packet;
use serde::{Deserialize, Serialize};

/// Generation-checked handle to a packet resident in a [`PacketPool`].
///
/// `Copy` and 8 bytes, so scheduler events and port queues move this instead
/// of the packet itself. A handle is valid until the packet is removed with
/// [`PacketPool::take`]; using it afterwards panics (generation mismatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketRef {
    idx: u32,
    gen: u32,
}

/// Slot storage: inline in pooled mode, boxed in reference mode.
#[derive(Debug)]
enum Storage {
    /// Vacant slot (on the free list).
    Empty,
    /// Pooled mode: the packet lives inline in the slab.
    Inline(Packet),
    /// Reference mode: one heap allocation per resident packet (seed model).
    Boxed(Box<Packet>),
}

#[derive(Debug)]
struct Slot {
    /// Advances every time the slot is vacated; handles embed the generation
    /// current at insert time.
    gen: u32,
    storage: Storage,
}

/// Cumulative allocation statistics, for the perf report's `alloc/sec`
/// metric and the debug-build allocation-counter test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Packets ever inserted.
    pub inserts: u64,
    /// Inserts that performed a heap allocation: slab growth in pooled mode,
    /// every insert in reference mode.
    pub heap_allocs: u64,
    /// High-water mark of simultaneously live packets.
    pub high_water: u32,
}

/// A slab of reusable packet slots with a free list.
///
/// See the [module docs](self) for the design. Not thread-safe by design —
/// each simulated network owns exactly one pool, and the sweep orchestrator
/// parallelises across networks, not within one.
#[derive(Debug, Default)]
pub struct PacketPool {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: u32,
    reference_mode: bool,
    stats: PoolStats,
}

impl PacketPool {
    /// An empty pool in pooled (zero-steady-state-alloc) mode.
    pub fn new() -> Self {
        PacketPool::default()
    }

    /// An empty pool with room for `cap` live packets before the slab grows.
    pub fn with_capacity(cap: usize) -> Self {
        PacketPool {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            ..PacketPool::default()
        }
    }

    /// Switch the storage model (see the [module docs](self)). Only valid
    /// while the pool is empty: flipping mid-flight would mix slot layouts.
    pub fn set_reference_mode(&mut self, on: bool) {
        assert_eq!(
            self.live, 0,
            "cannot switch pool mode with {} packets live",
            self.live
        );
        self.reference_mode = on;
    }

    /// True when inserts allocate per packet (seed model).
    pub fn reference_mode(&self) -> bool {
        self.reference_mode
    }

    /// Move `packet` into the pool, returning its handle.
    pub fn insert(&mut self, packet: Packet) -> PacketRef {
        self.stats.inserts += 1;
        let storage = if self.reference_mode {
            self.stats.heap_allocs += 1;
            Storage::Boxed(Box::new(packet))
        } else {
            Storage::Inline(packet)
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(matches!(slot.storage, Storage::Empty));
                slot.storage = storage;
                idx
            }
            None => {
                // Slab growth: the only pooled-mode allocation, and it stops
                // once the slab reaches the live high-water mark.
                if !self.reference_mode {
                    self.stats.heap_allocs += 1;
                }
                let idx = u32::try_from(self.slots.len()).expect("pool slab exceeds u32 slots");
                self.slots.push(Slot { gen: 0, storage });
                idx
            }
        };
        self.live += 1;
        self.stats.high_water = self.stats.high_water.max(self.live);
        PacketRef {
            idx,
            gen: self.slots[idx as usize].gen,
        }
    }

    #[inline]
    fn slot(&self, r: PacketRef) -> &Slot {
        let slot = &self.slots[r.idx as usize];
        assert_eq!(
            slot.gen, r.gen,
            "stale PacketRef: slot {} was recycled (gen {} != handle gen {})",
            r.idx, slot.gen, r.gen
        );
        slot
    }

    /// Read the packet behind a live handle.
    #[inline]
    pub fn get(&self, r: PacketRef) -> &Packet {
        match &self.slot(r).storage {
            Storage::Inline(p) => p,
            Storage::Boxed(p) => p,
            Storage::Empty => unreachable!("generation check admits no empty slot"),
        }
    }

    /// Mutate the packet behind a live handle (CE marking, ECE echo).
    #[inline]
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet {
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(
            slot.gen, r.gen,
            "stale PacketRef: slot {} was recycled (gen {} != handle gen {})",
            r.idx, slot.gen, r.gen
        );
        match &mut slot.storage {
            Storage::Inline(p) => p,
            Storage::Boxed(p) => p,
            Storage::Empty => unreachable!("generation check admits no empty slot"),
        }
    }

    /// Remove the packet behind `r`, vacating and recycling its slot. The
    /// handle (and any copy of it) is dead afterwards.
    pub fn take(&mut self, r: PacketRef) -> Packet {
        // Inline generation check (not via `slot()`) so the borrow is mutable.
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(
            slot.gen, r.gen,
            "stale PacketRef: slot {} was recycled (gen {} != handle gen {})",
            r.idx, slot.gen, r.gen
        );
        let packet = match std::mem::replace(&mut slot.storage, Storage::Empty) {
            Storage::Inline(p) => p,
            Storage::Boxed(p) => *p,
            Storage::Empty => unreachable!("generation check admits no empty slot"),
        };
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        self.live -= 1;
        packet
    }

    /// Number of live packets.
    pub fn live(&self) -> u32 {
        self.live
    }

    /// True when no packets are resident.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slab capacity in slots (live + vacant).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Cumulative allocation statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Release slab capacity beyond the current live population. Vacant
    /// tail slots are dropped (their handles are already dead); interior
    /// vacancies stay on the free list.
    pub fn shrink_to_fit(&mut self) {
        while let Some(slot) = self.slots.last() {
            if matches!(slot.storage, Storage::Empty) {
                let idx = (self.slots.len() - 1) as u32;
                // O(free) per pop is fine: shrink runs between bursts.
                self.free.retain(|&f| f != idx);
                self.slots.pop();
            } else {
                break;
            }
        }
        self.slots.shrink_to_fit();
        self.free.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EcnCodepoint, FlowId, NodeId, PacketId, SackBlocks, TcpFlags};
    use simevent::SimTime;

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload: 1460,
            flags: TcpFlags::ACK,
            ecn: EcnCodepoint::Ect0,
            sack: SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn insert_get_take_roundtrip() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(7));
        assert_eq!(pool.get(r).id, PacketId(7));
        assert_eq!(pool.live(), 1);
        let p = pool.take(r);
        assert_eq!(p.id, PacketId(7));
        assert!(pool.is_empty());
    }

    #[test]
    fn slots_are_recycled_without_slab_growth() {
        let mut pool = PacketPool::new();
        // Warm up to a high-water mark of 4 live packets.
        let refs: Vec<PacketRef> = (0..4).map(|i| pool.insert(pkt(i))).collect();
        let grown = pool.slots();
        for r in refs {
            pool.take(r);
        }
        // 10k churn cycles at lower occupancy: the slab must not grow.
        for round in 0..10_000u64 {
            let a = pool.insert(pkt(round));
            let b = pool.insert(pkt(round + 1));
            pool.take(a);
            pool.take(b);
        }
        assert_eq!(pool.slots(), grown, "steady state must reuse slots");
        assert_eq!(pool.stats().high_water, 4);
        // Pooled-mode heap allocs == slab growth events only.
        assert_eq!(pool.stats().heap_allocs, grown as u64);
    }

    #[test]
    fn reference_mode_allocates_per_insert() {
        let mut pool = PacketPool::new();
        pool.set_reference_mode(true);
        for i in 0..100 {
            let r = pool.insert(pkt(i));
            assert_eq!(pool.get(r).id, PacketId(i));
            pool.take(r);
        }
        assert_eq!(
            pool.stats().heap_allocs,
            100,
            "reference mode boxes every packet"
        );
    }

    #[test]
    fn mutation_is_visible_through_the_handle() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(1));
        pool.get_mut(r).ecn = EcnCodepoint::Ce;
        assert_eq!(pool.get(r).ecn, EcnCodepoint::Ce);
        assert_eq!(pool.take(r).ecn, EcnCodepoint::Ce);
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_handle_is_rejected() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(1));
        pool.take(r);
        pool.insert(pkt(2)); // recycles the slot with a new generation
        let _ = pool.get(r);
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn double_take_is_rejected() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(1));
        pool.take(r);
        let _ = pool.take(r);
    }

    #[test]
    #[should_panic(expected = "cannot switch pool mode")]
    fn mode_switch_requires_empty_pool() {
        let mut pool = PacketPool::new();
        let _r = pool.insert(pkt(1));
        pool.set_reference_mode(true);
    }

    #[test]
    fn shrink_drops_vacant_tail_slots() {
        let mut pool = PacketPool::new();
        let refs: Vec<PacketRef> = (0..64).map(|i| pool.insert(pkt(i))).collect();
        let keeper = refs[0];
        for r in &refs[1..] {
            pool.take(*r);
        }
        assert_eq!(pool.slots(), 64);
        pool.shrink_to_fit();
        assert_eq!(pool.slots(), 1, "vacant tail reclaimed");
        assert_eq!(pool.get(keeper).id, PacketId(0), "live slot survives");
        // The pool keeps working after a shrink.
        let r2 = pool.insert(pkt(99));
        assert_eq!(pool.get(r2).id, PacketId(99));
    }

    #[test]
    fn modes_agree_on_contents() {
        let drive = |reference: bool| -> Vec<u64> {
            let mut pool = PacketPool::new();
            pool.set_reference_mode(reference);
            let refs: Vec<PacketRef> = (0..32).map(|i| pool.insert(pkt(i))).collect();
            refs.iter().rev().map(|&r| pool.take(r).id.0).collect()
        };
        assert_eq!(drive(false), drive(true));
    }
}
