//! Integration tests driving a Sender/Receiver pair over a synthetic wire.
//!
//! The wire is a miniature event loop with a per-direction propagation delay
//! and a caller-supplied `filter` that can drop or CE-mark packets in flight,
//! standing in for a switch queue. This isolates transport-correctness tests
//! from the full network simulator.

use netpacket::{EcnCodepoint, FlowId, NodeId, Packet, TcpFlags};
use simevent::{EventQueue, SimDuration, SimTime};
use tcpstack::{EcnMode, Receiver, Sender, TcpAgent, TcpConfig};

/// What the wire does to each packet.
enum Verdict {
    Deliver,
    Drop,
    MarkAndDeliver,
}

struct Wire<F: FnMut(&Packet, u64) -> Verdict> {
    sender: Sender,
    receiver: Receiver,
    delay: SimDuration,
    filter: F,
    /// Packets seen by the wire, in order (post-filter survivors only).
    delivered_log: Vec<Packet>,
    dropped: u64,
}

enum Ev {
    Deliver(Packet),
    Poll,
}

impl<F: FnMut(&Packet, u64) -> Verdict> Wire<F> {
    fn new(total_bytes: u64, scfg: TcpConfig, rcfg: TcpConfig, filter: F) -> Self {
        let flow = FlowId(1);
        let a = NodeId(0);
        let b = NodeId(1);
        Wire {
            sender: Sender::new(flow, a, b, total_bytes, scfg, SimTime::ZERO),
            receiver: Receiver::new(flow, b, a, rcfg),
            delay: SimDuration::from_micros(50),
            filter,
            delivered_log: Vec::new(),
            dropped: 0,
        }
    }

    /// Run until the sender completes or simulated time runs out.
    /// Returns the completion time if the transfer finished.
    fn run(&mut self, limit: SimTime) -> Option<SimTime> {
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.schedule(SimTime::ZERO, Ev::Poll);
        let mut seqno = 0u64;
        while let Some(t) = q.peek_time() {
            if t > limit {
                break;
            }
            // Fold in timer deadlines: poll events at agent deadlines.
            let (now, ev) = q.pop().unwrap();
            match ev {
                Ev::Deliver(pkt) => {
                    if pkt.dst == NodeId(1) {
                        self.receiver.on_segment(&pkt, now);
                    } else {
                        self.sender.on_segment(&pkt, now);
                    }
                }
                Ev::Poll => {
                    self.sender.on_timer(now);
                    self.receiver.on_timer(now);
                }
            }
            // Drain both outboxes through the filter.
            for pkt in self
                .sender
                .take_outbox()
                .into_iter()
                .chain(self.receiver.take_outbox())
            {
                seqno += 1;
                match (self.filter)(&pkt, seqno) {
                    Verdict::Drop => self.dropped += 1,
                    Verdict::Deliver => {
                        self.delivered_log.push(pkt.clone());
                        q.schedule(now + self.delay, Ev::Deliver(pkt));
                    }
                    Verdict::MarkAndDeliver => {
                        let mut p = pkt;
                        if p.ecn.is_ect() {
                            p.ecn = p.ecn.marked();
                        }
                        self.delivered_log.push(p.clone());
                        q.schedule(now + self.delay, Ev::Deliver(p));
                    }
                }
            }
            if self.sender.is_complete() {
                return self.sender.completed_at();
            }
            // Keep timers alive: schedule a poll at the earliest agent deadline.
            let next = [self.sender.next_deadline(), self.receiver.next_deadline()]
                .into_iter()
                .flatten()
                .min();
            if let Some(d) = next {
                let d = d.max(now);
                if q.peek_time().is_none_or(|qt| d < qt) {
                    q.schedule(d, Ev::Poll);
                }
            }
        }
        if self.sender.is_complete() {
            self.sender.completed_at()
        } else {
            None
        }
    }
}

const LIMIT: SimTime = SimTime::from_secs(120);

#[test]
fn clean_transfer_completes() {
    let mut w = Wire::new(
        100_000,
        TcpConfig::default(),
        TcpConfig::default(),
        |_, _| Verdict::Deliver,
    );
    let done = w.run(LIMIT).expect("transfer must complete");
    assert!(done > SimTime::ZERO);
    assert_eq!(w.sender.bytes_acked(), 100_000);
    assert_eq!(w.receiver.bytes_received(), 100_000);
    assert_eq!(w.sender.stats().retransmits, 0);
    assert_eq!(w.sender.stats().timeouts, 0);
}

#[test]
fn zero_byte_flow_completes_after_handshake() {
    let mut w = Wire::new(0, TcpConfig::default(), TcpConfig::default(), |_, _| {
        Verdict::Deliver
    });
    let done = w.run(LIMIT).expect("zero-byte flow completes");
    // One RTT: SYN out (50us) + SYN-ACK back (50us).
    assert_eq!(done, SimTime::from_micros(100));
}

#[test]
fn handshake_packets_are_non_ect() {
    let cfg = TcpConfig::with_ecn(EcnMode::Ecn);
    let mut w = Wire::new(50_000, cfg.clone(), cfg, |_, _| Verdict::Deliver);
    w.run(LIMIT).expect("completes");
    for p in &w.delivered_log {
        if p.is_syn() || p.is_syn_ack() || p.is_pure_ack() {
            assert_eq!(
                p.ecn,
                EcnCodepoint::NotEct,
                "control packets must be Non-ECT: {p:?}"
            );
        }
    }
}

#[test]
fn ecn_negotiation_makes_data_ect() {
    let cfg = TcpConfig::with_ecn(EcnMode::Ecn);
    let mut w = Wire::new(50_000, cfg.clone(), cfg, |_, _| Verdict::Deliver);
    w.run(LIMIT).expect("completes");
    assert!(w.sender.ecn_negotiated());
    assert!(w.receiver.ecn_negotiated());
    let data: Vec<_> = w.delivered_log.iter().filter(|p| p.payload > 0).collect();
    assert!(!data.is_empty());
    assert!(
        data.iter().all(|p| p.ecn == EcnCodepoint::Ect0),
        "all data must be ECT(0)"
    );
}

#[test]
fn ecn_negotiation_fails_when_receiver_lacks_it() {
    let mut w = Wire::new(
        50_000,
        TcpConfig::with_ecn(EcnMode::Ecn),
        TcpConfig::default(), // receiver has ECN off
        |_, _| Verdict::Deliver,
    );
    w.run(LIMIT).expect("completes");
    assert!(!w.sender.ecn_negotiated());
    assert!(w
        .delivered_log
        .iter()
        .filter(|p| p.payload > 0)
        .all(|p| p.ecn == EcnCodepoint::NotEct));
}

#[test]
fn lost_syn_is_retransmitted_with_backoff() {
    // Drop the very first packet (the SYN).
    let mut w = Wire::new(
        10_000,
        TcpConfig::default(),
        TcpConfig::default(),
        |_, n| {
            if n == 1 {
                Verdict::Drop
            } else {
                Verdict::Deliver
            }
        },
    );
    let done = w.run(LIMIT).expect("completes despite SYN loss");
    assert_eq!(w.sender.stats().syn_retransmits, 1);
    // The retransmission waits the full initial RTO (1 s) — the paper's point
    // about connection-establishment stalls.
    assert!(done >= SimTime::from_secs(1), "completion at {done}");
    assert_eq!(w.receiver.bytes_received(), 10_000);
}

#[test]
fn lost_syn_ack_recovers_via_receiver_retransmission() {
    let mut dropped = false;
    let mut w = Wire::new(
        10_000,
        TcpConfig::default(),
        TcpConfig::default(),
        move |p, _| {
            // Drop only the first SYN-ACK.
            if p.is_syn_ack() && !dropped {
                dropped = true;
                return Verdict::Drop;
            }
            Verdict::Deliver
        },
    );
    let done = w.run(LIMIT).expect("completes despite SYN-ACK loss");
    assert!(done >= SimTime::from_secs(1));
    assert!(w.receiver.stats().syn_acks_sent >= 2);
    assert_eq!(w.sender.bytes_acked(), 10_000);
}

#[test]
fn single_data_loss_triggers_fast_retransmit() {
    // Drop exactly one mid-stream data segment; window is large enough that
    // 3 dupacks arrive.
    let mut dropped = false;
    let mut w = Wire::new(
        400_000,
        TcpConfig {
            init_cwnd_segments: 10,
            ..TcpConfig::default()
        },
        TcpConfig::default(),
        move |p, _| {
            if p.payload > 0 && p.seq > 50_000 && !dropped {
                dropped = true;
                return Verdict::Drop;
            }
            Verdict::Deliver
        },
    );
    let done = w.run(LIMIT).expect("completes");
    assert_eq!(w.sender.stats().fast_retransmits, 1);
    assert_eq!(
        w.sender.stats().timeouts,
        0,
        "fast retransmit should avoid the RTO"
    );
    assert_eq!(w.receiver.bytes_received(), 400_000);
    // No 200ms stall: finished quickly.
    assert!(done < SimTime::from_millis(200), "done at {done}");
}

#[test]
fn whole_window_loss_forces_timeout() {
    // Drop ALL packets in a time band — models the paper's "whole TCP sliding
    // window is lost" catastrophe.
    let mut w = Wire::new(
        200_000,
        TcpConfig::default(),
        TcpConfig::default(),
        |p, _| {
            let t = p.sent_at;
            if t > SimTime::from_micros(300) && t < SimTime::from_millis(5) {
                Verdict::Drop
            } else {
                Verdict::Deliver
            }
        },
    );
    let done = w.run(LIMIT).expect("completes after RTO");
    assert!(w.sender.stats().timeouts >= 1, "whole-window loss must RTO");
    // The flow stalls for at least min_rto (200 ms).
    assert!(done >= SimTime::from_millis(200), "done at {done}");
    assert_eq!(w.receiver.bytes_received(), 200_000);
}

#[test]
fn ack_losses_are_tolerated_by_cumulative_acks() {
    // Drop 60% of pure ACKs (deterministically): cumulative ACKs cover.
    let mut w = Wire::new(
        300_000,
        TcpConfig::default(),
        TcpConfig::default(),
        |p, n| {
            if p.is_pure_ack() && n % 5 < 3 {
                Verdict::Drop
            } else {
                Verdict::Deliver
            }
        },
    );
    let done = w.run(LIMIT).expect("completes despite heavy ACK loss");
    assert_eq!(w.receiver.bytes_received(), 300_000);
    let _ = done;
}

#[test]
fn ce_marks_produce_ece_echo_and_single_reduction_per_window() {
    // Mark every data packet in a narrow band; classic ECN sender must reduce
    // cwnd (via ECE) but never retransmit.
    let cfg = TcpConfig::with_ecn(EcnMode::Ecn);
    let mut w = Wire::new(500_000, cfg.clone(), cfg, |p, _| {
        if p.payload > 0 && p.seq > 100_000 && p.seq < 150_000 {
            Verdict::MarkAndDeliver
        } else {
            Verdict::Deliver
        }
    });
    w.run(LIMIT).expect("completes");
    assert!(w.sender.stats().ece_acks > 0, "receiver must echo ECE");
    assert!(w.sender.stats().ecn_reductions >= 1);
    assert_eq!(w.sender.stats().retransmits, 0, "ECN avoids retransmission");
    assert_eq!(w.receiver.bytes_received(), 500_000);
    // CWR must appear on some data packet to stop the echo.
    assert!(w
        .delivered_log
        .iter()
        .any(|p| p.flags.contains(TcpFlags::CWR)));
    // Reductions are bounded: far fewer than the number of marked segments.
    let marked = w
        .delivered_log
        .iter()
        .filter(|p| p.ecn == EcnCodepoint::Ce)
        .count() as u64;
    assert!(w.sender.stats().ecn_reductions < marked.max(2));
}

#[test]
fn classic_ecn_latch_clears_after_cwr() {
    let cfg = TcpConfig::with_ecn(EcnMode::Ecn);
    // Mark exactly one data segment.
    let mut marked = false;
    let mut w = Wire::new(300_000, cfg.clone(), cfg, move |p, _| {
        if p.payload > 0 && p.seq > 20_000 && !marked {
            marked = true;
            return Verdict::MarkAndDeliver;
        }
        Verdict::Deliver
    });
    w.run(LIMIT).expect("completes");
    // ECE acks happen, but the latch must clear: not all later acks carry ECE.
    let acks: Vec<_> = w.delivered_log.iter().filter(|p| p.is_pure_ack()).collect();
    let ece_acks = acks
        .iter()
        .filter(|p| p.flags.contains(TcpFlags::ECE))
        .count();
    assert!(ece_acks >= 1);
    assert!(
        ece_acks < acks.len() / 2,
        "latch must clear after CWR: {ece_acks}/{}",
        acks.len()
    );
}

#[test]
fn dctcp_alpha_tracks_mark_fraction() {
    let cfg = TcpConfig::with_ecn(EcnMode::Dctcp);
    // Mark roughly 30% of data segments, deterministically.
    let mut w = Wire::new(3_000_000, cfg.clone(), cfg, |p, n| {
        if p.payload > 0 && n % 10 < 3 {
            Verdict::MarkAndDeliver
        } else {
            Verdict::Deliver
        }
    });
    w.run(LIMIT).expect("completes");
    let alpha = w.sender.alpha();
    assert!(
        alpha > 0.05 && alpha < 0.8,
        "alpha should reflect ~30% marking, got {alpha}"
    );
    assert!(w.sender.stats().ecn_reductions > 0);
    assert_eq!(w.sender.stats().retransmits, 0);
}

#[test]
fn dctcp_no_marks_alpha_decays_toward_zero() {
    // Alpha starts at 1 (conservative init) and decays by (1-g) per window;
    // over a 16 MB transfer (~25 windows) it must fall well below 0.3 and
    // must never trigger a reduction.
    let cfg = TcpConfig::with_ecn(EcnMode::Dctcp);
    let mut w = Wire::new(16_000_000, cfg.clone(), cfg, |_, _| Verdict::Deliver);
    w.run(LIMIT).expect("completes");
    assert!(
        w.sender.alpha() < 0.3,
        "alpha must decay without marks, got {}",
        w.sender.alpha()
    );
    assert_eq!(w.sender.stats().ecn_reductions, 0);
}

#[test]
fn delayed_ack_halves_ack_volume() {
    let run = |m: u32| {
        let cfg = TcpConfig {
            delayed_ack: m,
            ..TcpConfig::default()
        };
        let mut w = Wire::new(500_000, TcpConfig::default(), cfg, |_, _| Verdict::Deliver);
        w.run(LIMIT).expect("completes");
        w.receiver.stats().acks_sent
    };
    let every = run(1);
    let delayed = run(2);
    assert!(
        delayed * 3 < every * 2,
        "delayed acks should cut ACK volume substantially: {every} vs {delayed}"
    );
}

#[test]
fn cwnd_grows_during_slow_start() {
    let mut w = Wire::new(
        1_000_000,
        TcpConfig::default(),
        TcpConfig::default(),
        |_, _| Verdict::Deliver,
    );
    let before = w.sender.cwnd();
    w.run(LIMIT).expect("completes");
    assert!(
        w.sender.cwnd() > before * 4.0,
        "cwnd must grow: {} -> {}",
        before,
        w.sender.cwnd()
    );
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut w = Wire::new(
            250_000,
            TcpConfig::default(),
            TcpConfig::default(),
            |p, n| {
                if p.payload > 0 && n % 37 == 0 {
                    Verdict::Drop
                } else {
                    Verdict::Deliver
                }
            },
        );
        let done = w.run(LIMIT);
        (done, w.delivered_log.len(), w.sender.stats().retransmits)
    };
    assert_eq!(run(), run());
}

#[test]
fn heavy_random_loss_still_completes() {
    // Deterministic pseudo-random 10% loss on everything (except we never let
    // it run forever: RTO backoff handles repeated losses).
    let mut state = 0xDEADBEEFu64;
    let mut w = Wire::new(
        100_000,
        TcpConfig::default(),
        TcpConfig::default(),
        move |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 33) % 10 == 0 {
                Verdict::Drop
            } else {
                Verdict::Deliver
            }
        },
    );
    w.run(LIMIT).expect("must complete under 10% loss");
    assert_eq!(w.receiver.bytes_received(), 100_000);
    assert!(w.sender.stats().retransmits > 0);
}

#[test]
fn ecn_plus_plus_makes_control_packets_ect() {
    let cfg = TcpConfig {
        ect_control_packets: true,
        ..TcpConfig::with_ecn(EcnMode::Ecn)
    };
    let mut w = Wire::new(100_000, cfg.clone(), cfg, |_, _| Verdict::Deliver);
    w.run(LIMIT).expect("completes");
    // SYN is ECT from the very first packet (sender opts in before
    // negotiation completes — the ECN++ stance).
    let syn = w.delivered_log.iter().find(|p| p.is_syn()).unwrap();
    assert_eq!(syn.ecn, EcnCodepoint::Ect0);
    let syn_ack = w.delivered_log.iter().find(|p| p.is_syn_ack()).unwrap();
    assert_eq!(syn_ack.ecn, EcnCodepoint::Ect0);
    let acks: Vec<_> = w.delivered_log.iter().filter(|p| p.is_pure_ack()).collect();
    assert!(!acks.is_empty());
    assert!(
        acks.iter().all(|p| p.ecn == EcnCodepoint::Ect0),
        "ECN++ ACKs are ECT"
    );
}

#[test]
fn ecn_plus_plus_absorbs_marks_on_acks() {
    // CE-mark every ACK in flight: the transfer must proceed unharmed (marks
    // on control packets are absorbed, not echoed).
    let cfg = TcpConfig {
        ect_control_packets: true,
        ..TcpConfig::with_ecn(EcnMode::Ecn)
    };
    let mut w = Wire::new(200_000, cfg.clone(), cfg, |p, _| {
        if p.is_pure_ack() {
            Verdict::MarkAndDeliver
        } else {
            Verdict::Deliver
        }
    });
    w.run(LIMIT).expect("completes");
    assert_eq!(w.receiver.bytes_received(), 200_000);
    assert_eq!(
        w.sender.stats().ecn_reductions,
        0,
        "ACK marks must not trigger reductions"
    );
}

#[test]
fn ecn_plus_plus_off_by_default() {
    let cfg = TcpConfig::with_ecn(EcnMode::Ecn);
    assert!(!cfg.ect_control_packets);
}

#[test]
fn sack_single_loss_single_retransmission() {
    // With SACK, one lost segment costs exactly one retransmission.
    let mut dropped = false;
    let mut w = Wire::new(
        400_000,
        TcpConfig {
            init_cwnd_segments: 10,
            ..TcpConfig::default()
        },
        TcpConfig::default(),
        move |p, _| {
            if p.payload > 0 && p.seq > 50_000 && !dropped {
                dropped = true;
                return Verdict::Drop;
            }
            Verdict::Deliver
        },
    );
    w.run(LIMIT).expect("completes");
    assert_eq!(w.sender.stats().fast_retransmits, 1);
    assert_eq!(
        w.sender.stats().retransmits,
        1,
        "SACK repairs exactly the hole"
    );
    assert_eq!(w.sender.stats().timeouts, 0);
    assert_eq!(w.receiver.bytes_received(), 400_000);
}

#[test]
fn sack_multi_loss_recovers_without_timeout() {
    // Drop three scattered segments of one window: SACK locates all three
    // holes inside a single recovery episode; NewReno without SACK would need
    // one RTT per hole (or an RTO).
    let mut kill = vec![60_000u64, 90_000, 120_000];
    let mut w = Wire::new(
        600_000,
        TcpConfig {
            init_cwnd_segments: 20,
            ..TcpConfig::default()
        },
        TcpConfig::default(),
        move |p, _| {
            if p.payload > 0 {
                if let Some(i) = kill
                    .iter()
                    .position(|&k| p.seq <= k && k < p.seq + p.payload as u64)
                {
                    kill.remove(i);
                    return Verdict::Drop;
                }
            }
            Verdict::Deliver
        },
    );
    let done = w.run(LIMIT).expect("completes");
    assert_eq!(w.sender.stats().timeouts, 0, "SACK must avoid the RTO");
    assert!(
        w.sender.stats().retransmits <= 6,
        "no spurious retransmission storm: {:?}",
        w.sender.stats()
    );
    assert_eq!(w.receiver.bytes_received(), 600_000);
    assert!(done < SimTime::from_millis(200), "no RTO stall: {done}");
}

#[test]
fn sack_acks_carry_islands() {
    let mut dropped = false;
    let mut w = Wire::new(
        200_000,
        TcpConfig {
            init_cwnd_segments: 10,
            ..TcpConfig::default()
        },
        TcpConfig::default(),
        move |p, _| {
            if p.payload > 0 && p.seq > 30_000 && !dropped {
                dropped = true;
                return Verdict::Drop;
            }
            Verdict::Deliver
        },
    );
    w.run(LIMIT).expect("completes");
    assert!(
        w.delivered_log
            .iter()
            .any(|p| p.is_pure_ack() && !p.sack.is_empty()),
        "dup acks must carry SACK blocks"
    );
}

#[test]
fn sack_disabled_reverts_to_newreno() {
    let run = |sack: bool| {
        let mut kill = vec![60_000u64, 90_000, 120_000];
        let cfg = TcpConfig {
            sack,
            init_cwnd_segments: 20,
            ..TcpConfig::default()
        };
        let mut w = Wire::new(
            600_000,
            cfg,
            TcpConfig {
                sack,
                ..TcpConfig::default()
            },
            move |p, _| {
                if p.payload > 0 {
                    if let Some(i) = kill
                        .iter()
                        .position(|&k| p.seq <= k && k < p.seq + p.payload as u64)
                    {
                        kill.remove(i);
                        return Verdict::Drop;
                    }
                }
                Verdict::Deliver
            },
        );
        let done = w.run(LIMIT).expect("completes");
        (done, w.sender.stats().retransmits)
    };
    let (t_sack, _retx_sack) = run(true);
    let (t_newreno, _retx_newreno) = run(false);
    assert!(
        t_sack <= t_newreno,
        "SACK must not be slower than NewReno: {t_sack} vs {t_newreno}"
    );
    // No-SACK acks must carry no blocks.
    let cfg = TcpConfig {
        sack: false,
        ..TcpConfig::default()
    };
    let mut w = Wire::new(50_000, cfg.clone(), cfg, |_, _| Verdict::Deliver);
    w.run(LIMIT).expect("completes");
    assert!(w.delivered_log.iter().all(|p| p.sack.is_empty()));
}

#[test]
fn sack_go_back_n_never_resends_more_than_newreno() {
    // Head-of-window loss that degenerates into an RTO: after the timeout,
    // the SACK sender's go-back-N skips data the receiver already holds,
    // so it retransmits strictly less than the no-SACK sender in the same
    // scenario.
    let run = |sack: bool| {
        let scfg = TcpConfig {
            sack,
            init_cwnd_segments: 30,
            ..TcpConfig::default()
        };
        let rcfg = TcpConfig {
            sack,
            ..TcpConfig::default()
        };
        let mut w = Wire::new(400_000, scfg, rcfg, |p, _| {
            // Kill the first 5 data segments and the early dup acks so fast
            // retransmit cannot finish the repair and an RTO is forced.
            if p.payload > 0 && p.seq < 8_000 && p.sent_at < SimTime::from_millis(1) {
                return Verdict::Drop;
            }
            if p.is_pure_ack() && p.sent_at < SimTime::from_millis(2) && p.ack < 8_000 {
                return Verdict::Drop;
            }
            Verdict::Deliver
        });
        w.run(LIMIT).expect("completes");
        assert_eq!(w.receiver.bytes_received(), 400_000);
        (w.sender.stats().timeouts, w.sender.stats().retransmits)
    };
    let (to_sack, retx_sack) = run(true);
    let (_, retx_newreno) = run(false);
    assert!(to_sack >= 1, "scenario must force an RTO");
    // When the hole is contiguous at the head, the cumulative ACK leaps the
    // island for both variants; SACK must simply never retransmit MORE.
    assert!(
        retx_sack <= retx_newreno,
        "SACK must not retransmit more after the RTO: {retx_sack} vs {retx_newreno}"
    );
}

#[test]
fn sack_blocks_respect_capacity() {
    use netpacket::SackBlocks;
    let mut b = SackBlocks::EMPTY;
    assert!(b.is_empty());
    b.push(10, 20);
    b.push(30, 40);
    b.push(50, 60);
    b.push(70, 80); // beyond capacity: ignored
    b.push(5, 5); // empty: ignored
    assert_eq!(b.len(), 3);
    let v: Vec<_> = b.iter().collect();
    assert_eq!(v, vec![(10, 20), (30, 40), (50, 60)]);
}
