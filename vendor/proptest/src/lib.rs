//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: `Strategy` with `prop_map` /
//! `prop_shuffle`, `Just`, `any::<T>()`, integer-range strategies, weighted
//! `prop_oneof!`, `prop::collection::vec`, and the `proptest!` /
//! `prop_assert*` macros. Sampling is driven by a per-test deterministic RNG
//! (seeded from the test name), so failures reproduce across runs. There is
//! **no shrinking**: a failing case reports its inputs via the assertion
//! message instead of minimising them. Case count defaults to 64 and can be
//! overridden with the `PROPTEST_CASES` environment variable or
//! `ProptestConfig::with_cases`.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Object-safe: `prop_oneof!` stores arms as `Box<dyn Strategy<Value = T>>`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Uniformly permute a generated `Vec` (Fisher–Yates).
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle(self)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_shuffle`].
    pub struct Shuffle<S>(S);

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.0.sample(rng);
            for i in (1..v.len()).rev() {
                let j = rng.rng.gen_range(0..=i);
                v.swap(i, j);
            }
            v
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Box a strategy for storage in heterogeneous collections (`prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Weighted choice between strategies with a common value type.
    pub struct OneOf<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u32,
    }

    impl<T> OneOf<T> {
        /// Build from `(weight, strategy)` arms; weights must sum > 0.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            OneOf { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights covered above")
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.rng.gen()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.rng.gen()
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng.gen()
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.rng.gen_range(0u8..=u8::MAX)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` ("any value of this type").
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec` — a vector of `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Deterministic per-test RNG (xoshiro256++ via the vendored `rand`).
    pub struct TestRng {
        pub(crate) rng: SmallRng,
    }

    impl TestRng {
        /// Seed from a test name so each test has a stable, distinct stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable 64-bit seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                rng: SmallRng::seed_from_u64(h),
            }
        }
    }

    /// Per-block configuration; only `cases` is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Effective case count after the `PROPTEST_CASES` env override.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps debug-mode `cargo test`
            // fast on the single-core CI box while still exploring broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Everything the `use proptest::prelude::*;` idiom expects.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Weighted choice: `prop_oneof![3 => strat_a, 1 => strat_b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Property assertion: fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Property equality assertion: fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        if l != r {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}` ({} vs {})",
                l, r, stringify!($a), stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if l != r {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// The `proptest! { ... }` block: optional `#![proptest_config(..)]` followed
/// by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let cases = $crate::test_runner::ProptestConfig::resolved_cases(&config);
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                // Render inputs up front: the body may consume them by value.
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                // `mut` because the body may (or may not) mutate captures.
                #[allow(unused_mut)]
                let mut run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(msg) = run() {
                    panic!(
                        "proptest `{}` case {}/{} failed: {}\n  inputs: {}\n  (vendored proptest: no shrinking)",
                        stringify!($name),
                        case + 1,
                        cases,
                        msg,
                        __inputs,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0u8..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn map_and_oneof(v in prop::collection::vec(
            prop_oneof![2 => (0u64..5).prop_map(|n| n * 2), 1 => Just(99u64)],
            1..20,
        )) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in &v {
                prop_assert!(*x == 99 || (*x % 2 == 0 && *x < 10), "bad element {}", x);
            }
        }

        #[test]
        fn shuffle_is_permutation(perm in Just((0u64..30).collect::<Vec<_>>()).prop_shuffle()) {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0u64..30).collect::<Vec<_>>());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
