//! The lint rules: SL001–SL006.
//!
//! Each rule is a pure function over a file's token stream plus its
//! workspace-relative path. The rules encode the simulator's **determinism
//! contract** (see DESIGN.md): simulation results must be a function of the
//! scenario and the seed, and of nothing else.

use crate::lexer::{Token, TokenKind};

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable diagnostic code (`SL001` ... `SL006`).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Set when a `simlint.toml` waiver covers this finding.
    pub waived: bool,
}

/// Crate directories whose code *is* the simulation: wall-clock time and
/// ambient entropy are banned here outright. `experiments` is deliberately
/// absent — measuring real elapsed time in the harness is legitimate.
const SIM_CRATES: &[&str] = &[
    "simevent",
    "simtrace",
    "simcc",
    "netpacket",
    "tcpstack",
    "core",
    "netsim",
    "mrsim",
    "workload",
    "simmetrics",
];

/// Crates where default-hasher collections are banned (simulation state and
/// anything that feeds report output, whose iteration order must be stable).
const HASH_ORDER_CRATES: &[&str] = &[
    "simevent",
    "simtrace",
    "simcc",
    "netpacket",
    "tcpstack",
    "core",
    "netsim",
    "mrsim",
    "workload",
    "simmetrics",
    "experiments",
];

/// Narrow numeric types for SL005: casting a time/byte counter into one of
/// these silently truncates at datacenter scale (a 10 s run is 1e10 ns —
/// already past `u32`).
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// The crate directory name from a workspace-relative path
/// (`crates/netsim/src/...` → `netsim`).
fn crate_dir(path: &str) -> Option<&str> {
    let mut parts = path.split('/');
    if parts.next()? != "crates" {
        return None;
    }
    parts.next()
}

/// True when the path is test, bench, example, or fixture code — exempt from
/// SL004 (panicking on violated expectations is exactly what tests do).
fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|p| matches!(p, "tests" | "benches" | "examples" | "fixtures"))
}

/// Mark every token inside a `#[cfg(test)]`-gated item or a `#[test]`
/// function body. Works on brace balance: after the attribute, everything up
/// to the close of the next `{` block is test code.
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"));
        let is_test_attr = tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("test"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct(']'));
        if is_cfg_test || is_test_attr {
            // Mark from the attribute to the end of the next balanced block.
            // A `#[cfg(test)]` on a braceless item (e.g. `use`) ends at `;`
            // before any `{` — handle that too.
            let start = i;
            let mut j = i;
            let mut depth = 0usize;
            let mut entered = false;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    depth += 1;
                    entered = true;
                } else if tokens[j].is_punct('}') {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        break;
                    }
                } else if tokens[j].is_punct(';') && !entered {
                    break;
                }
                j += 1;
            }
            let end = j.min(tokens.len().saturating_sub(1));
            for m in &mut mask[start..=end] {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// True when token `i` sits inside a `use` declaration. Sound because a
/// `use` declaration always terminates with `;` and `use` cannot appear
/// mid-expression: a `use` ident with no `;` after it before token `i`
/// means `i` is still inside that declaration (group imports included).
fn in_use_statement(tokens: &[Token], i: usize) -> bool {
    for t in tokens[..i].iter().rev() {
        if t.is_punct(';') {
            return false;
        }
        if t.is_ident("use") {
            return true;
        }
    }
    false
}

/// Count top-level commas inside the generic argument list opening at
/// `tokens[open]` (which must be `<`). Returns `None` when the list never
/// closes (macro soup) — callers treat that as "cannot prove a custom
/// hasher", i.e. flag it.
fn generic_arity(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut paren = 0usize;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        // `->` and `=>`: the `>` is not a generics close.
        if (t.is_punct('-') || t.is_punct('='))
            && tokens.get(j + 1).is_some_and(|n| n.is_punct('>'))
        {
            j += 2;
            continue;
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return Some(commas);
            }
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren = paren.saturating_sub(1);
        } else if t.is_punct(',') && depth == 1 && paren == 0 {
            commas += 1;
        } else if t.is_punct(';') && depth == 1 {
            // `[T; N]` inside generics — commas there are still top level
            // for our purpose; nothing to do.
        }
        j += 1;
    }
    None
}

/// Lookback window for SL005: does any of the `n` tokens before `i` name a
/// time or byte quantity?
fn lookback_names_counter(tokens: &[Token], i: usize, n: usize) -> Option<String> {
    let lo = i.saturating_sub(n);
    for t in tokens[lo..i].iter().rev() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let s = t.text.as_str();
        let timeish = s.contains("nanos")
            || s.contains("micros")
            || s.contains("millis")
            || s.ends_with("_ns")
            || s.ends_with("_us")
            || s.ends_with("_ms");
        let byteish = s.contains("bytes") || s == "bps";
        if timeish || byteish {
            return Some(t.text.clone());
        }
    }
    None
}

/// Idents SL006 treats as naming a full packet value. Deliberately exact:
/// `host_buffer_packets`, `PacketRef`, and friends are counters or 8-byte
/// handles, not payloads.
const PACKETISH: &[&str] = &["Packet", "packet", "pkt"];

/// Scan the balanced-paren argument list opening at `tokens[open]` (which
/// must be `(`) for an ident naming a packet payload. A struct-field label
/// (`packet: r`) is skipped — it labels a field holding a cheap handle, not
/// a by-value payload — while a `Packet::...` path still counts (that is an
/// inline construction). Returns the matching ident, or `None` when the
/// argument is clean or the list never closes.
fn packetish_payload(tokens: &[Token], open: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return None;
            }
        } else if t.kind == TokenKind::Ident && PACKETISH.contains(&t.text.as_str()) {
            let is_field_label = tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && !tokens.get(j + 2).is_some_and(|n| n.is_punct(':'));
            if !is_field_label {
                return Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Run every rule over one file. `path` must be workspace-relative with
/// forward slashes.
pub fn check_file(path: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    let krate = crate_dir(path);
    let in_sim = krate.is_some_and(|c| SIM_CRATES.contains(&c));
    let in_hash_scope = krate.is_some_and(|c| HASH_ORDER_CRATES.contains(&c));
    let test_path = is_test_path(path);
    let test_mask = test_region_mask(tokens);

    let mut push = |line: u32, code: &'static str, message: String| {
        out.push(Finding {
            file: path.to_string(),
            line,
            code,
            message,
            waived: false,
        });
    };

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            // SL001: wall-clock time sources in simulation crates.
            "Instant" | "SystemTime" if in_sim => {
                push(
                    t.line,
                    "SL001",
                    format!(
                        "`{}` in simulation crate `{}`: simulated time must come \
                         from SimTime, never the wall clock",
                        t.text,
                        krate.unwrap_or("?")
                    ),
                );
            }
            // SL002: default-hasher collections where iteration order leaks
            // into simulation state or reports.
            "HashMap" | "HashSet" if in_hash_scope => {
                if in_use_statement(tokens, i) {
                    continue; // imports are fine; usage sites are checked
                }
                let required = if t.text == "HashMap" { 2 } else { 1 };
                let custom_hasher = tokens
                    .get(i + 1)
                    .filter(|n| n.is_punct('<'))
                    .and_then(|_| generic_arity(tokens, i + 1))
                    .is_some_and(|commas| commas >= required);
                if !custom_hasher {
                    push(
                        t.line,
                        "SL002",
                        format!(
                            "`{}` with the default (randomized) hasher: iteration \
                             order is nondeterministic; use BTreeMap/BTreeSet or a \
                             fixed BuildHasher",
                            t.text
                        ),
                    );
                }
            }
            // SL003: ambient entropy anywhere in the workspace.
            "thread_rng" | "from_entropy" => {
                push(
                    t.line,
                    "SL003",
                    format!(
                        "`{}`: all randomness must flow from an explicitly seeded \
                         SimRng so runs are reproducible",
                        t.text
                    ),
                );
            }
            // SL004: unwrap/expect in non-test library code.
            "unwrap" | "expect" if !test_path && !test_mask[i] => {
                let is_method_call = i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_method_call {
                    push(
                        t.line,
                        "SL004",
                        format!(
                            "`.{}()` in library code: return a Result or document \
                             the invariant with a simlint.toml waiver",
                            t.text
                        ),
                    );
                }
            }
            // SL005: lossy `as` casts of time/byte counters. Test code is
            // exempt: its values are small constants by construction.
            "as" if !test_path && !test_mask[i] => {
                let Some(next) = tokens.get(i + 1) else {
                    continue;
                };
                if next.kind == TokenKind::Ident && NARROW_TYPES.contains(&next.text.as_str()) {
                    if let Some(counter) = lookback_names_counter(tokens, i, 6) {
                        push(
                            t.line,
                            "SL005",
                            format!(
                                "`{}` cast to `{}` can truncate: time/byte counters \
                                 must stay in 64-bit (or use try_into with a checked \
                                 contract)",
                                counter, next.text
                            ),
                        );
                    }
                }
            }
            // SL006: per-packet heap traffic outside the pool API. Packet
            // storage on the hot path belongs in `PacketPool`; a `Box::new`
            // or growable-buffer push of a packet payload is a per-packet
            // allocation the arena was built to eliminate.
            "Box" if in_sim && !test_path && !test_mask[i] => {
                let is_box_new = tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|n| n.is_ident("new"))
                    && tokens.get(i + 4).is_some_and(|n| n.is_punct('('));
                if is_box_new {
                    if let Some(what) = packetish_payload(tokens, i + 4) {
                        push(
                            t.line,
                            "SL006",
                            format!(
                                "`Box::new({what})` heap-allocates per packet: route \
                                 packet storage through PacketPool (the pool's \
                                 reference mode is the only sanctioned per-packet Box)"
                            ),
                        );
                    }
                }
            }
            "push" | "push_back" if in_sim && !test_path && !test_mask[i] => {
                let is_method_call = i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_method_call {
                    if let Some(what) = packetish_payload(tokens, i + 1) {
                        push(
                            t.line,
                            "SL006",
                            format!(
                                "`.{}({what})` moves a packet-sized payload into a \
                                 growable buffer: pass PacketRef handles from the \
                                 pool, or waive with the buffer's amortization \
                                 contract in simlint.toml",
                                t.text
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn codes(path: &str, src: &str) -> Vec<&'static str> {
        check_file(path, &lex(src))
            .into_iter()
            .map(|f| f.code)
            .collect()
    }

    #[test]
    fn sl001_flags_instant_in_sim_crate_only() {
        let src = "use std::time::Instant;";
        assert_eq!(codes("crates/netsim/src/x.rs", src), vec!["SL001"]);
        assert!(codes("crates/experiments/src/x.rs", src).is_empty());
    }

    #[test]
    fn sl002_default_hasher_flagged_custom_ok() {
        assert_eq!(
            codes(
                "crates/core/src/x.rs",
                "let m: HashMap<u64, u64> = HashMap::new();"
            ),
            vec!["SL002", "SL002"]
        );
        let custom = "type S = HashSet<u64, BuildHasherDefault<SeqHasher>>;";
        assert!(codes("crates/simevent/src/x.rs", custom).is_empty());
        let custom_map = "type M = HashMap<u64, u64, BuildHasherDefault<SeqHasher>>;";
        assert!(codes("crates/core/src/x.rs", custom_map).is_empty());
    }

    #[test]
    fn sl002_use_line_exempt() {
        assert!(codes("crates/core/src/x.rs", "use std::collections::HashSet;").is_empty());
        assert!(codes("crates/core/src/x.rs", "pub use std::collections::HashMap;").is_empty());
    }

    #[test]
    fn sl003_everywhere() {
        assert_eq!(
            codes("crates/experiments/src/x.rs", "let mut r = thread_rng();"),
            vec!["SL003"]
        );
        assert_eq!(
            codes("crates/core/src/x.rs", "let r = SmallRng::from_entropy();"),
            vec!["SL003"]
        );
    }

    #[test]
    fn sl004_library_only() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(codes("crates/core/src/x.rs", src), vec!["SL004"]);
        assert!(codes("crates/core/tests/x.rs", src).is_empty());
        assert!(codes("crates/core/benches/x.rs", src).is_empty());
    }

    #[test]
    fn sl004_cfg_test_region_exempt() {
        let src = "fn lib(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { Some(1).unwrap(); }\n}";
        assert!(codes("crates/core/src/x.rs", src).is_empty());
        let mixed = "fn lib(x: Option<u8>) { x.expect(\"set\"); }\n\
                     #[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }";
        assert_eq!(codes("crates/core/src/x.rs", mixed), vec!["SL004"]);
    }

    #[test]
    fn sl004_ignores_unwrap_or_and_field_names() {
        assert!(codes(
            "crates/core/src/x.rs",
            "x.unwrap_or(1); x.unwrap_or_default();"
        )
        .is_empty());
        assert!(codes("crates/core/src/x.rs", "struct S { expect: u8 }").is_empty());
    }

    #[test]
    fn sl005_narrow_counter_cast() {
        assert_eq!(
            codes("crates/core/src/x.rs", "let x = t.as_nanos() as u32;"),
            vec!["SL005"]
        );
        assert_eq!(
            codes("crates/netsim/src/x.rs", "let b = total_bytes as f32;"),
            vec!["SL005"]
        );
        // 64-bit targets are fine; unrelated identifiers are fine.
        assert!(codes("crates/core/src/x.rs", "let x = t.as_nanos() as u64;").is_empty());
        assert!(codes("crates/core/src/x.rs", "let i = idx as u32;").is_empty());
    }

    #[test]
    fn sl006_flags_boxed_and_pushed_packets() {
        assert_eq!(
            codes("crates/netpacket/src/x.rs", "let b = Box::new(packet);"),
            vec!["SL006"]
        );
        assert_eq!(
            codes("crates/tcpstack/src/x.rs", "self.outbox.push(pkt);"),
            vec!["SL006"]
        );
        assert_eq!(
            codes(
                "crates/core/src/x.rs",
                "self.queue.push_back((packet, now));"
            ),
            vec!["SL006"]
        );
        // Inline construction counts: `Packet::...` is not a field label.
        assert_eq!(
            codes("crates/tcpstack/src/x.rs", "out.push(Packet::tcp(1, 2));"),
            vec!["SL006"]
        );
    }

    #[test]
    fn sl006_skips_handles_labels_and_non_sim_code() {
        // Struct-field labels carry an 8-byte PacketRef, not a payload.
        assert!(codes(
            "crates/netsim/src/x.rs",
            "pending.push((done, Event::Arrive { dev, packet: r }));"
        )
        .is_empty());
        // Counters that merely contain "packet" are not payloads.
        assert!(codes(
            "crates/netsim/src/x.rs",
            "let q = Box::new(DropTail::new(spec.host_buffer_packets));"
        )
        .is_empty());
        // Non-packetish pushes and non-sim crates are out of scope.
        assert!(codes("crates/core/src/x.rs", "out.push(p);").is_empty());
        assert!(codes("crates/experiments/src/x.rs", "v.push(packet);").is_empty());
        // Test code is exempt.
        assert!(codes("crates/core/tests/x.rs", "v.push(packet);").is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// Instant HashMap thread_rng .unwrap()\nlet s = \"SystemTime\";";
        assert!(codes("crates/netsim/src/x.rs", src).is_empty());
    }
}
