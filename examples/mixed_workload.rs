//! The paper's motivating scenario (§I): latency-sensitive services sharing
//! the cluster with a Hadoop shuffle. We run a bulk all-to-all shuffle plus a
//! trickle of small request/response-sized flows and report what the small
//! flows experience under DropTail vs the simple marking scheme, on deep
//! buffers (where Bufferbloat is worst).
//!
//! Run with: `cargo run --release --example mixed_workload`

use hadoop_ecn::prelude::*;

/// 20 small (20 kB) "service" flows, staggered through the shuffle.
fn service_flows(cfg: &TcpConfig) -> Vec<(SimTime, NodeId, NodeId, u64, TcpConfig)> {
    (0..20u64)
        .map(|i| {
            let src = NodeId((i % 4) as u32);
            let dst = NodeId(((i + 1) % 4) as u32);
            (
                SimTime::from_millis(5 + i * 10),
                src,
                dst,
                20_000,
                cfg.clone(),
            )
        })
        .collect()
}

/// Bulk all-to-all 2 MB flows among all 4 hosts (the shuffle stand-in).
fn bulk_flows(cfg: &TcpConfig) -> Vec<(SimTime, NodeId, NodeId, u64, TcpConfig)> {
    let mut v = Vec::new();
    for s in 0..4u32 {
        for d in 0..4u32 {
            if s != d {
                v.push((SimTime::ZERO, NodeId(s), NodeId(d), 2_000_000, cfg.clone()));
            }
        }
    }
    v
}

fn run(label: &str, qdisc: QdiscSpec, ecn: EcnMode) {
    let spec = ClusterSpec::single_rack(4, LinkSpec::gbps(1, 5), qdisc, 31);
    let cfg = TcpConfig {
        recv_wnd: 256 << 10,
        ..TcpConfig::with_ecn(ecn)
    };
    let mut flows = bulk_flows(&cfg);
    let n_bulk = flows.len();
    flows.extend(service_flows(&cfg));
    let net = Network::new(spec);
    let app = StaticFlows::new(flows);
    let mut sim = Simulation::new(net, app);
    let report = sim.run();
    assert!(report.app_done, "{label}: flows did not finish");

    // Small-flow completion times: the "service latency" the paper's intro
    // cares about (IoT/SQL-on-Hadoop co-location).
    let mut small_fct: Vec<f64> = sim
        .net
        .flows()
        .filter(|r| r.bytes == 20_000)
        .map(|r| r.completed.unwrap().since(r.started).as_secs_f64() * 1e3)
        .collect();
    small_fct.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = small_fct.iter().sum::<f64>() / small_fct.len() as f64;
    let worst = small_fct.last().copied().unwrap_or(0.0);

    let bulk_done = sim
        .net
        .flows()
        .filter(|r| r.bytes == 2_000_000)
        .filter_map(|r| r.completed)
        .max()
        .unwrap();

    println!(
        "{label:<28} service FCT mean {mean:7.2} ms  worst {worst:7.2} ms   packet latency mean {}   bulk done {}",
        sim.net.latency().mean(),
        bulk_done,
    );
    let _ = n_bulk;
}

fn main() {
    println!("4 hosts, 1 Gbps, DEEP buffers (1000 pkts/port) — Bufferbloat territory:\n");
    run(
        "droptail deep",
        QdiscSpec::DropTail {
            capacity_packets: 1000,
        },
        EcnMode::Off,
    );
    run(
        "simple marking + DCTCP",
        QdiscSpec::SimpleMarking(SimpleMarkingConfig {
            capacity_packets: 1000,
            threshold_packets: 42, // ~500 us at 1 Gbps
        }),
        EcnMode::Dctcp,
    );
    println!(
        "\nThe marking scheme keeps queues near its threshold instead of the full\n\
         kilopacket buffer, so co-located small flows see millisecond-class\n\
         completion times while the shuffle still gets full throughput."
    );
}
