//! End-to-end tests of the sweep orchestrator: parallel determinism, the
//! content-addressed point cache, the CLI flags on the real binaries, and
//! the bench-gate regression exit codes.

use ecn_core::ProtectionMode;
use experiments::gate::{
    BenchReport, CcSection, CcWorkload, EndToEndSection, KernelSection, KernelWorkload,
    LinkSection, PoolSection, SweepSection,
};
use experiments::scenario::{QueueKind, Transport};
use experiments::{sweep_with, CacheMode, SweepGrid, SweepOptions};
use std::path::{Path, PathBuf};
use std::process::Command;

/// A fresh scratch directory under the target-adjacent temp root. Unique per
/// test (pid + name) so parallel tests never collide; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("ecn-orchestrator-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A grid small enough for debug-build CI but still multi-point: one
/// transport, two queues, one delay → 2 baselines + 4 points.
fn micro_grid(seed: u64) -> SweepGrid {
    let mut grid = SweepGrid::tiny();
    grid.config.seed = seed;
    grid.config.input_bytes_per_node = 1_000_000;
    grid.transports = vec![Transport::Dctcp];
    grid.queues = vec![
        QueueKind::Red(ProtectionMode::Default),
        QueueKind::SimpleMarking,
    ];
    grid.target_delays_us = vec![500];
    grid
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let grid = micro_grid(11);
    let serial = SweepOptions {
        jobs: 1,
        cache: CacheMode::Disabled,
    };
    let parallel = SweepOptions {
        jobs: 4,
        cache: CacheMode::Disabled,
    };
    let (res1, stats1) = sweep_with(&grid, &serial);
    let (res4, stats4) = sweep_with(&grid, &parallel);
    assert_eq!(stats1.executed, stats4.executed);
    assert_eq!(
        serde_json::to_string(&res1),
        serde_json::to_string(&res4),
        "4-worker sweep must merge to byte-identical JSON"
    );
}

#[test]
fn warm_cache_reruns_execute_nothing_and_match() {
    let scratch = Scratch::new("warm-cache");
    let grid = micro_grid(12);
    let opts = SweepOptions {
        jobs: 2,
        cache: CacheMode::Dir(scratch.path().join("cache")),
    };
    let (cold, cold_stats) = sweep_with(&grid, &opts);
    assert_eq!(cold_stats.cached, 0, "first run: nothing cached yet");
    assert!(cold_stats.executed > 0);

    let (warm, warm_stats) = sweep_with(&grid, &opts);
    assert_eq!(warm_stats.executed, 0, "warm rerun must execute no points");
    assert_eq!(warm_stats.cached, cold_stats.executed);
    assert_eq!(
        serde_json::to_string(&cold),
        serde_json::to_string(&warm),
        "cache round-trip must be byte-identical"
    );

    // A different seed shares nothing with the warm cache.
    let other = micro_grid(13);
    let (_, other_stats) = sweep_with(&other, &opts);
    assert_eq!(other_stats.cached, 0, "seed is part of every point key");
}

#[test]
fn disabled_cache_always_executes() {
    let grid = micro_grid(14);
    let opts = SweepOptions {
        jobs: 2,
        cache: CacheMode::Disabled,
    };
    let (_, first) = sweep_with(&grid, &opts);
    let (_, second) = sweep_with(&grid, &opts);
    assert_eq!(first.cached, 0);
    assert_eq!(second.cached, 0);
    assert_eq!(first.executed, second.executed);
}

fn fig2(dir: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_fig2_runtime"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("fig2_runtime runs")
}

#[test]
fn fig2_bin_jobs_flag_is_deterministic_and_cache_replays() {
    let scratch = Scratch::new("fig2-bin");
    let dir = scratch.path();
    let common = ["--tiny", "--seed", "21"];

    // Serial vs parallel, both forced to execute: the sweep JSON on disk
    // must be byte-identical.
    let out1 = fig2(dir, &[&common[..], &["--jobs", "1", "--no-cache"]].concat());
    assert!(out1.status.success(), "{out1:?}");
    let sweep_path = dir.join("results/sweep_tiny.json");
    let serial_json = std::fs::read(&sweep_path).unwrap();

    std::fs::remove_file(&sweep_path).unwrap();
    let out4 = fig2(dir, &[&common[..], &["--jobs", "4", "--no-cache"]].concat());
    assert!(out4.status.success(), "{out4:?}");
    let parallel_json = std::fs::read(&sweep_path).unwrap();
    assert_eq!(
        serial_json, parallel_json,
        "--jobs 4 must write the same sweep JSON as --jobs 1"
    );

    // Populate the point cache, then force a fresh aggregate: every point
    // must replay from cache and the output must still be identical.
    std::fs::remove_file(&sweep_path).unwrap();
    let warm = fig2(dir, &[&common[..], &["--jobs", "2"]].concat());
    assert!(warm.status.success(), "{warm:?}");
    assert!(
        dir.join("results/.cache").is_dir(),
        "default cache location"
    );

    let replay = fig2(dir, &[&common[..], &["--fresh", "--jobs", "2"]].concat());
    assert!(replay.status.success(), "{replay:?}");
    let stderr = String::from_utf8_lossy(&replay.stderr);
    assert!(
        stderr.contains("0 points executed"),
        "fresh aggregate over a warm point cache must execute nothing: {stderr}"
    );
    let replayed_json = std::fs::read(&sweep_path).unwrap();
    assert_eq!(
        serial_json, replayed_json,
        "cache-served sweep must be byte-identical to the executed one"
    );
}

#[test]
fn fig2_bin_trace_executes_despite_warm_cache() {
    let scratch = Scratch::new("fig2-trace");
    let dir = scratch.path();
    // A traced run must actually simulate (the cache can't produce packet
    // events), even right after the same seed's sweep was fully cached.
    let warm = fig2(dir, &["--tiny", "--seed", "22", "--jobs", "2"]);
    assert!(warm.status.success(), "{warm:?}");
    let traced = fig2(dir, &["--tiny", "--seed", "22", "--trace", "point.jsonl"]);
    assert!(traced.status.success(), "{traced:?}");
    let trace = std::fs::read_to_string(dir.join("point.jsonl")).unwrap();
    assert!(
        trace.lines().count() > 100,
        "traced point must record packet events, got {} lines",
        trace.lines().count()
    );
}

fn canned_report() -> BenchReport {
    let wl = |heap: f64, fast: f64| KernelWorkload {
        pending: 65_536,
        popped_events: 300_000,
        heap_events_per_sec: heap,
        fast_events_per_sec: fast,
        speedup: fast / heap,
    };
    BenchReport {
        description: "test report".into(),
        kernel: KernelSection {
            churn: wl(4.0e6, 9.0e6),
            cancel_heavy: wl(3.0e6, 8.0e6),
        },
        end_to_end: EndToEndSection {
            hosts: 32,
            fast_seconds: 0.5,
            reference_seconds: 1.5,
            engine_speedup: 3.0,
            fast_events: 1_800_000,
            reference_events: 1_800_000,
            fast_events_per_sec: 3.6e6,
            reference_events_per_sec: 1.2e6,
        },
        pool: PoolSection {
            packets: 1_400_000,
            pooled_heap_allocs: 160,
            reference_heap_allocs: 1_400_000,
            pooled_allocs_per_packet: 160.0 / 1_400_000.0,
            pooled_inserts_per_sec: 3.5e6,
            reference_inserts_per_sec: 1.1e6,
            high_water: 160,
        },
        link: LinkSection {
            packets: 1_400_000,
            fast_events: 1_800_000,
            fast_events_per_packet: 1.25,
            reference_events: 1_800_000,
            reference_events_per_packet: 1.25,
        },
        cc: CcSection {
            ops: 1_000_000,
            controllers: ["reno", "dctcp", "cubic", "bbr", "prague"]
                .iter()
                .map(|name| CcWorkload {
                    controller: (*name).into(),
                    ops_per_sec: 5.0e7,
                    vs_reno: 1.0,
                })
                .collect(),
        },
        sweep_fig2_shallow: SweepSection {
            points: 19,
            reference_seconds: 2.0,
            fast_seconds: 1.0,
            parallel_seconds: 0.5,
            engine_speedup: 2.0,
            parallel_speedup: 2.0,
            fast_events_per_sec: 1.0e6,
            reference_events_per_sec: 0.5e6,
            outputs_identical: true,
            reference_events: 1_000_000,
            fast_events: 1_000_000,
            reference_peak_pending: 500,
            fast_peak_pending: 500,
        },
    }
}

fn write_report(path: &Path, report: &BenchReport) {
    experiments::report::write_json(report, path).unwrap();
}

fn bench_gate(dir: &Path, current: &Path, baseline: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .arg("--compare-only")
        .arg(current)
        .arg("--baseline")
        .arg(baseline)
        .current_dir(dir)
        .output()
        .expect("bench_gate runs")
}

#[test]
fn bench_gate_passes_against_equal_baseline() {
    let scratch = Scratch::new("gate-pass");
    let dir = scratch.path();
    let current = dir.join("current.json");
    let baseline = dir.join("baseline.json");
    write_report(&current, &canned_report());
    write_report(&baseline, &canned_report());
    let out = bench_gate(dir, &current, &baseline);
    assert!(
        out.status.success(),
        "identical reports must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn bench_gate_fails_against_inflated_baseline() {
    // The acceptance scenario: a baseline whose metrics are 20% better than
    // the current run must trip the 10% tolerances and exit nonzero.
    let scratch = Scratch::new("gate-fail");
    let dir = scratch.path();
    let current = dir.join("current.json");
    let baseline_path = dir.join("baseline.json");
    write_report(&current, &canned_report());

    let mut inflated = canned_report();
    inflated.kernel.churn.speedup *= 1.2;
    inflated.kernel.cancel_heavy.speedup *= 1.2;
    inflated.sweep_fig2_shallow.fast_seconds /= 1.4;
    inflated.end_to_end.engine_speedup *= 1.5;
    write_report(&baseline_path, &inflated);

    let out = bench_gate(dir, &current, &baseline_path);
    assert_eq!(
        out.status.code(),
        Some(1),
        "20%-inflated baseline must fail the gate: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
}
