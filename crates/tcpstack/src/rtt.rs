//! RFC 6298 retransmission-timeout estimation.

use simevent::SimDuration;

/// SRTT/RTTVAR estimator per RFC 6298, with Karn's rule applied by the caller
/// (only samples from non-retransmitted segments are fed in).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    initial_rto: SimDuration,
    /// Exponential backoff multiplier applied after each timeout.
    backoff: u32,
}

impl RttEstimator {
    /// A fresh estimator with no samples.
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rto,
            max_rto,
            initial_rto,
            backoff: 0,
        }
    }

    /// Feed a round-trip sample from a non-retransmitted segment.
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R'|
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar.mul_f64(0.75) + err.mul_f64(0.25);
                // SRTT <- 7/8 SRTT + 1/8 R'
                self.srtt = Some(srtt.mul_f64(7.0 / 8.0) + rtt.mul_f64(1.0 / 8.0));
            }
        }
        // A valid sample resets the backoff (Karn).
        self.backoff = 0;
    }

    /// The current RTO including backoff, clamped to `[min_rto, max_rto]`.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.initial_rto,
            Some(srtt) => {
                let var4 = self.rttvar.saturating_mul(4);
                // Clock granularity G is 1 ns here; rttvar dominates.
                srtt + var4
            }
        };
        let base = base.max(self.min_rto);
        let backed = base.saturating_mul(1u64 << self.backoff.min(16));
        backed.min(self.max_rto)
    }

    /// Double the RTO after a retransmission timeout.
    pub fn back_off(&mut self) {
        self.backoff = self.backoff.saturating_add(1);
    }

    /// Clear the exponential backoff without feeding a sample.
    ///
    /// Karn's rule forbids sampling retransmitted ranges, so after a
    /// go-back-N burst every segment in flight is a retransmission and
    /// [`RttEstimator::sample`] may not run for several windows — yet a
    /// cumulative ACK that advances `snd_una` proves the path is forwarding
    /// again. Linux resets `icsk_backoff` on exactly that evidence (and on
    /// handshake completion after SYN retransmissions); callers apply the
    /// same rule here.
    pub fn reset_backoff(&mut self) {
        self.backoff = 0;
    }

    /// Current backoff exponent (0 = none).
    pub fn backoff_level(&self) -> u32 {
        self.backoff
    }

    /// Smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn initial_rto_before_samples() {
        assert_eq!(est().rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn first_sample_initialises() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = srtt + 4*rttvar = 100 + 4*50 = 300ms, above the 200ms floor.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn min_rto_floor_applies() {
        let mut e = est();
        // Tiny, stable RTT: RTO must clamp at min_rto.
        for _ in 0..50 {
            e.sample(SimDuration::from_micros(100));
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn srtt_converges_to_stable_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(10));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_secs_f64() - 0.010).abs() < 1e-4, "srtt = {srtt}");
    }

    #[test]
    fn variance_grows_with_jitter() {
        let mut stable = est();
        let mut jittery = est();
        for i in 0..100 {
            stable.sample(SimDuration::from_millis(50));
            jittery.sample(SimDuration::from_millis(if i % 2 == 0 { 10 } else { 90 }));
        }
        assert!(jittery.rto() > stable.rto());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100)); // rto = 300ms
        let base = e.rto();
        e.back_off();
        assert_eq!(e.rto(), base.saturating_mul(2));
        e.back_off();
        assert_eq!(e.rto(), base.saturating_mul(4));
        for _ in 0..30 {
            e.back_off();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60), "capped at max_rto");
    }

    #[test]
    fn reset_backoff_clears_without_sample() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        let base = e.rto();
        e.back_off();
        e.back_off();
        assert_eq!(e.backoff_level(), 2);
        e.reset_backoff();
        assert_eq!(e.backoff_level(), 0);
        // No sample was fed, so the smoothed estimate is untouched: the RTO
        // returns to its pre-backoff value exactly.
        assert_eq!(e.rto(), base);
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn sample_resets_backoff() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        e.back_off();
        e.back_off();
        assert_eq!(e.backoff_level(), 2);
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.backoff_level(), 0);
        // Second identical sample: RTTVAR decays to 3/4 * 50ms = 37.5ms,
        // so RTO = 100ms + 4 * 37.5ms = 250ms.
        assert_eq!(e.rto(), SimDuration::from_millis(250));
    }
}
