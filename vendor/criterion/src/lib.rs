//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness surface this
//! workspace's benches use, with two modes:
//!
//! * default (`cargo bench`): adaptive wall-clock timing — each benchmark is
//!   calibrated to ~0.5 s of measurement and reports mean time per iteration
//!   (plus elements/sec when a [`Throughput`] is set);
//! * `--test` smoke mode (what CI runs): every benchmark body executes exactly
//!   once so regressions in the bench code itself are caught cheaply.
//!
//! No statistics, plots, or saved baselines — this exists so benches compile,
//! run, and print comparable numbers without crates.io access.

use std::time::{Duration, Instant};

/// Opaque value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration used to derive rate output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Harness entry point; one per bench binary.
pub struct Criterion {
    smoke: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Criterion {
    /// Build from CLI args: `--test` enables smoke mode, a bare positional
    /// argument filters benchmark names by substring, everything else
    /// (`--bench`, criterion flags) is ignored.
    pub fn from_args() -> Self {
        let mut smoke = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                smoke = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion {
            smoke,
            filter,
            default_sample_size: 20,
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(&name.into(), None, sample_size, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: F,
    ) {
        if !self.selected(name) {
            return;
        }
        let mut b = Bencher {
            smoke: self.smoke,
            sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if self.smoke {
            println!("{name}: smoke ok");
            return;
        }
        if b.iters == 0 {
            println!("{name}: no iterations recorded");
            return;
        }
        let per_iter = b.total.as_secs_f64() / b.iters as f64;
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / per_iter),
            Throughput::Bytes(n) => format!("  {:.3e} B/s", n as f64 / per_iter),
        });
        println!(
            "{name}: {} per iter ({} iters){}",
            fmt_duration(per_iter),
            b.iters,
            rate.unwrap_or_default()
        );
    }

    /// Print the run footer (no-op; kept for API parity).
    pub fn final_summary(&mut self) {}
}

fn fmt_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Group with shared throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declare work per iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark within the group (name is `group/name`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        let throughput = self.throughput;
        let sample_size = self.sample_size.unwrap_or(self.c.default_sample_size);
        self.c.run_one(&full, throughput, sample_size, f);
        self
    }

    /// End the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark; drives the timed routine.
pub struct Bencher {
    smoke: bool,
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`. Smoke mode runs it once; bench mode calibrates the
    /// iteration count so total measurement lasts roughly half a second.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            self.iters = 1;
            return;
        }
        // Calibrate: time one iteration, then size batches to the target.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(500);
        let remaining_iters = (target.as_secs_f64() / first.as_secs_f64())
            .min((self.sample_size.max(1) * 50) as f64) as u64;
        let mut total = first;
        let mut iters = 1u64;
        for _ in 0..remaining_iters {
            let t = Instant::now();
            black_box(f());
            total += t.elapsed();
            iters += 1;
            if total >= target {
                break;
            }
        }
        self.total = total;
        self.iters = iters;
    }
}

/// Bundle benchmark functions into a group callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bench_run() {
        let mut c = Criterion {
            smoke: true,
            filter: None,
            default_sample_size: 10,
        };
        let mut ran = 0u32;
        c.bench_function("plain", |b| b.iter(|| ran += 1));
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(4));
            g.sample_size(10);
            g.bench_function("inner", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 2, "smoke mode runs each body exactly once");
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut c = Criterion {
            smoke: true,
            filter: Some("yes".into()),
            default_sample_size: 10,
        };
        let mut ran = 0u32;
        c.bench_function("yes_me", |b| b.iter(|| ran += 1));
        c.bench_function("not_this", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }
}
